// Trains one model configuration end-to-end (no tuning) and prints the
// per-epoch learning curve plus the simulated full-scale cost of each epoch.
// Useful to inspect the proxy-training dynamics every tuning experiment
// builds on.
//
// Usage: train_single [workload] [model_hparam] [epochs] [data_fraction]
//   workload: IC | SR | NLP | OD (default IC)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "budget/budget.hpp"
#include "data/synthetic.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

using namespace edgetune;

namespace {

WorkloadKind parse_workload(const char* text) {
  if (std::strcmp(text, "SR") == 0) return WorkloadKind::kSpeech;
  if (std::strcmp(text, "NLP") == 0) return WorkloadKind::kNlp;
  if (std::strcmp(text, "OD") == 0) return WorkloadKind::kDetection;
  return WorkloadKind::kImageClassification;
}

double default_hparam(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return 18;
    case WorkloadKind::kSpeech:
      return 64;
    case WorkloadKind::kNlp:
      return 2;
    case WorkloadKind::kDetection:
      return 0.3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const WorkloadKind workload =
      argc > 1 ? parse_workload(argv[1]) : WorkloadKind::kImageClassification;
  const double hparam =
      argc > 2 ? std::atof(argv[2]) : default_hparam(workload);
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 10;
  const double fraction = argc > 4 ? std::atof(argv[4]) : 1.0;

  Rng rng(42);
  Result<BuiltModel> built = build_workload_model(workload, hparam, rng);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().to_string().c_str());
    return 1;
  }
  BuiltModel model = std::move(built).value();

  auto dataset = make_workload_data(workload, 1600, 42);
  Rng split_rng(43);
  auto [train, val] = DatasetView::all(*dataset).split(0.8, split_rng);
  DatasetView budget_train = train.fraction(fraction);

  SgdOptimizer optimizer(model.net->params(),
                         {.learning_rate = 0.05, .momentum = 0.9});
  BatchIterator iter(budget_train, 16, rng);

  CostModel server(device_titan_server());
  TrainConfig train_config{.batch_size = 128, .num_gpus = 1};
  const auto full_samples = static_cast<std::int64_t>(
      fraction *
      static_cast<double>(workload_info(workload).train_samples));
  auto epoch_cost = server.train_epoch_cost(model.arch, train_config,
                                            full_samples);

  std::printf("model %s | %lld proxy train samples (%.0f%%), %lld val\n",
              model.name.c_str(),
              static_cast<long long>(budget_train.size()), fraction * 100,
              static_cast<long long>(val.size()));
  std::printf("full-scale: %.2f GFLOP/sample, %.2f M params\n",
              model.arch.flops_per_sample / 1e9, model.arch.params / 1e6);

  for (int epoch = 1; epoch <= epochs; ++epoch) {
    iter.begin_epoch();
    double loss_sum = 0;
    int steps = 0;
    for (Batch b = iter.next(); b.size() > 0; b = iter.next()) {
      Tensor logits = model.net->forward(b.inputs, true);
      LossResult loss = softmax_cross_entropy(logits, b.labels);
      model.net->backward(loss.grad);
      optimizer.step();
      loss_sum += loss.loss;
      ++steps;
    }
    double correct = 0;
    std::int64_t total = 0;
    for (std::int64_t pos = 0; pos < val.size(); pos += 64) {
      Batch b = val.batch(pos, 64);
      if (b.size() == 0) break;
      Tensor logits = model.net->forward(b.inputs, false);
      correct += accuracy(logits, b.labels) * static_cast<double>(b.size());
      total += b.size();
    }
    std::printf(
        "epoch %2d | train loss %.3f | val acc %5.1f%% | sim %6.1f s, %7.0f J\n",
        epoch, loss_sum / steps, 100.0 * correct / static_cast<double>(total),
        epoch_cost.ok() ? epoch_cost.value().latency_s * epoch : 0.0,
        epoch_cost.ok() ? epoch_cost.value().energy_j * epoch : 0.0);
  }
  return 0;
}
