// End-to-end product walkthrough: tune once, deploy everywhere.
//   1. Run an inference-aware tuning job for the speech workload.
//   2. Get deployment recommendations for ALL THREE edge devices (§1: "the
//      tuned model might be deployed across different edge devices").
//   3. Inspect the Pareto front of the trial log (accuracy vs cost).
//   4. Finalize: retrain the winner at full budget and checkpoint it.
#include <cstdio>

#include "common/strings.hpp"
#include "models/models.hpp"
#include "nn/serialize.hpp"
#include "tuning/finalize.hpp"
#include "tuning/pareto.hpp"

using namespace edgetune;

int main() {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kSpeech;
  options.hyperband = {1, 8, 2, 2};
  options.runner.proxy_samples = 500;
  options.inference.algorithm = "grid";
  options.edge_device = device_rpi3b();
  options.extra_edge_devices = {device_armv7(), device_i7_7567u()};
  options.seed = 23;

  std::printf("== tuning SR (M5 / SynthAudio) ==\n");
  Result<TuningReport> result = EdgeTune(options).run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }
  const TuningReport& report = result.value();
  std::printf("winner: %s (best acc %.1f%%)\n",
              config_to_string(report.best_config).c_str(),
              100 * report.best_accuracy);

  std::printf("\n== deployment recommendations ==\n");
  auto print_rec = [](const std::string& device,
                      const InferenceRecommendation& rec) {
    std::printf("%-7s %-46s %8.1f samples/s  %.4f J/sample\n", device.c_str(),
                config_to_string(rec.config).c_str(), rec.throughput_sps,
                rec.energy_per_sample_j);
  };
  print_rec(options.edge_device.name, report.inference);
  for (const auto& [device, rec] : report.per_device) print_rec(device, rec);

  std::printf("\n== Pareto front (accuracy vs training cost) ==\n");
  for (const TrialLog& t : pareto_front(report.trials)) {
    std::printf("trial %2d: acc %5.1f%%  %6.1f s  %8.0f J  %s\n", t.id,
                100 * t.accuracy, t.duration_s, t.energy_j,
                config_to_string(t.config).c_str());
  }

  std::printf("\n== finalize: retrain winner & checkpoint ==\n");
  FinalizeOptions finalize;
  finalize.epochs = 8;
  finalize.checkpoint_path = "/tmp/edgetune_winner.etw";
  Result<FinalizedModel> final_model =
      finalize_best_model(options, report, finalize);
  if (!final_model.ok()) {
    std::fprintf(stderr, "%s\n", final_model.status().to_string().c_str());
    return 1;
  }
  std::printf("final accuracy  : %.1f %%\n",
              100 * final_model.value().accuracy);
  std::printf("final train cost: %.1f min (sim), %.1f kJ\n",
              final_model.value().train_time_s / 60.0,
              final_model.value().train_energy_j / 1000.0);
  std::printf("checkpoint      : %s\n",
              final_model.value().checkpoint_path.c_str());

  // Prove the checkpoint loads back into a fresh model of the same config.
  Rng rng(999);
  Result<BuiltModel> fresh = build_workload_model(
      options.workload, report.best_config.at("model_hparam"), rng);
  if (fresh.ok()) {
    Status loaded = load_weights(*fresh.value().net,
                                 final_model.value().checkpoint_path);
    std::printf("reload check    : %s\n", loaded.to_string().c_str());
  }
  return 0;
}
