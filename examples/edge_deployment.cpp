// Edge-deployment scenario walkthrough (the paper's Fig 8 use cases):
//   1. Tune the inference configuration of a trained ResNet for a Raspberry
//      Pi class device with the Inference Tuning Server.
//   2. Drive the two multi-sample deployment scenarios — a fixed-frequency
//      server and a Poisson multi-stream — through the queueing simulator,
//      comparing the naive single-sample deployment against the recommended
//      batched one.
#include <cstdio>

#include "common/strings.hpp"
#include "models/models.hpp"
#include "sim/batching_sim.hpp"
#include "tuning/inference_server.hpp"

using namespace edgetune;

int main() {
  // The trained model to deploy: ResNet-34 for the image workload.
  Rng rng(11);
  Result<BuiltModel> built = build_resnet({.depth = 34}, rng);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().to_string().c_str());
    return 1;
  }
  const ArchSpec arch = built.value().arch;

  // 1. Inference tuning on the emulated edge device.
  InferenceServerOptions options;
  options.algorithm = "grid";
  options.objective = MetricOfInterest::kRuntime;
  InferenceTuningServer server(device_rpi3b(), options);
  Result<InferenceRecommendation> tuned = server.tune(arch);
  if (!tuned.ok()) {
    std::fprintf(stderr, "%s\n", tuned.status().to_string().c_str());
    return 1;
  }
  std::printf("== inference recommendation for %s on rpi3b ==\n",
              arch.id.c_str());
  std::printf("config     : %s\n",
              config_to_string(tuned.value().config).c_str());
  std::printf("throughput : %.1f imgs/s (vs %.1f single-sample/1-core)\n",
              tuned.value().throughput_sps,
              server.evaluate(arch, {.batch_size = 1, .cores = 1})
                  .value()
                  .throughput_sps);

  const auto tuned_batch = static_cast<std::int64_t>(
      tuned.value().config.at("inf_batch"));
  const int tuned_cores = static_cast<int>(tuned.value().config.at("cores"));
  const InferenceLatencyFn tuned_latency = [&](std::int64_t batch) {
    return server
        .evaluate(arch, {.batch_size = batch,
                         .cores = tuned_cores,
                         .freq_ghz = tuned.value().config.at("freq_ghz")})
        .value()
        .latency_s;
  };
  const InferenceLatencyFn naive_latency = [&](std::int64_t batch) {
    return server.evaluate(arch, {.batch_size = batch, .cores = 1})
        .value()
        .latency_s;
  };

  // 2a. Server scenario: queries of 32 samples arriving every 4 s.
  std::printf("\n== server scenario: 32-sample queries every 4 s ==\n");
  for (const char* label : {"naive (split=1, 1 core)", "tuned"}) {
    ServerScenarioConfig config;
    config.samples_per_query = 32;
    config.query_period_s = 4.0;
    config.horizon_s = 240;
    const bool tuned_run = label[0] == 't';
    config.split_batch = tuned_run ? tuned_batch : 1;
    Result<QueueingStats> stats = simulate_server_scenario(
        config, tuned_run ? tuned_latency : naive_latency);
    if (!stats.ok()) return 1;
    std::printf("%-24s mean response %.2f s, p95 %.2f s, util %.0f%%\n",
                label, stats.value().mean_response_s,
                stats.value().p95_response_s,
                100 * stats.value().utilization);
  }

  // 2b. Multi-stream scenario: Poisson singles at 6 samples/s.
  std::printf("\n== multi-stream scenario: Poisson arrivals at 6/s ==\n");
  for (const char* label : {"naive (no batching, 1 core)", "tuned"}) {
    MultiStreamScenarioConfig config;
    config.arrival_rate_per_s = 6.0;
    config.horizon_s = 240;
    config.max_wait_s = 0.5;
    const bool tuned_run = label[0] == 't';
    config.max_batch = tuned_run ? tuned_batch : 1;
    Result<QueueingStats> stats = simulate_multistream_scenario(
        config, tuned_run ? tuned_latency : naive_latency);
    if (!stats.ok()) return 1;
    std::printf("%-28s mean response %.2f s, mean batch %.1f, util %.0f%%\n",
                label, stats.value().mean_response_s,
                stats.value().mean_batch_size,
                100 * stats.value().utilization);
  }
  return 0;
}
