// Compares the four tuning strategies on one workload: EdgeTune (onefold,
// inference-aware), the Tune baseline (accuracy-only), HyperPower
// (power-capped BO), and hierarchical two-tier tuning (§4.1).
//
// Usage: compare_systems [IC|SR|NLP|OD]   (default SR)
#include <cstdio>
#include <cstring>

#include "common/strings.hpp"
#include "tuning/baselines.hpp"

using namespace edgetune;

namespace {

void print_report(const TuningReport& report) {
  std::printf("%-13s| %8.2f | %9.1f | %7.1f%% | %9.1f | %11.4f | %s\n",
              report.system.c_str(), report.tuning_runtime_s / 60.0,
              report.tuning_energy_j / 1000.0, 100 * report.best_accuracy,
              report.inference.throughput_sps,
              report.inference.energy_per_sample_j,
              config_to_string(report.best_config).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadKind workload = WorkloadKind::kSpeech;
  if (argc > 1) {
    if (std::strcmp(argv[1], "IC") == 0) {
      workload = WorkloadKind::kImageClassification;
    } else if (std::strcmp(argv[1], "NLP") == 0) {
      workload = WorkloadKind::kNlp;
    } else if (std::strcmp(argv[1], "OD") == 0) {
      workload = WorkloadKind::kDetection;
    }
  }

  EdgeTuneOptions options;
  options.workload = workload;
  options.hyperband = {1, 8, 2, 2};
  options.runner.proxy_samples = 500;
  options.inference.algorithm = "grid";
  options.seed = 13;

  std::printf("workload: %s\n\n", workload_kind_name(workload));
  std::printf(
      "system       | tune [m] | tune [kJ] | best acc | inf [sps] | inf "
      "[J/sample] | best config\n");
  std::printf(
      "-------------+----------+-----------+----------+-----------+---------"
      "-----+------------\n");

  Result<TuningReport> edgetune = EdgeTune(options).run();
  if (!edgetune.ok()) {
    std::fprintf(stderr, "edgetune: %s\n",
                 edgetune.status().to_string().c_str());
    return 1;
  }
  print_report(edgetune.value());

  Result<TuningReport> tune = run_tune_baseline(options);
  if (!tune.ok()) return 1;
  print_report(tune.value());

  Result<TuningReport> hyperpower = run_hyperpower_baseline(options, 800.0);
  if (!hyperpower.ok()) return 1;
  print_report(hyperpower.value());

  Result<TuningReport> hierarchical = run_hierarchical(options);
  if (!hierarchical.ok()) return 1;
  print_report(hierarchical.value());

  std::printf(
      "\nNote: Tune and HyperPower emit no inference recommendation; their\n"
      "inference columns use the default single-sample deployment (Tune) or\n"
      "their model evaluated at a default config (HyperPower row shows the\n"
      "deployment EdgeTune would hand back for their winning model).\n");
  return 0;
}
