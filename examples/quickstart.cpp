// Quickstart: run a complete EdgeTune job on the image-classification
// workload and print the paper-style outputs — the winning model
// configuration, the inference deployment recommendation, and the tuning
// cost. Start here to see the whole public API in ~50 lines.
#include <cstdio>

#include "common/strings.hpp"
#include "tuning/model_server.hpp"

using namespace edgetune;

int main() {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kImageClassification;
  options.search_algorithm = "bohb";       // the paper's default (§4.2)
  options.budget_policy = "multi-budget";  // the paper's contribution (§4.3)
  options.tuning_metric = MetricOfInterest::kRuntime;
  options.inference.objective = MetricOfInterest::kEnergy;
  options.edge_device = device_rpi3b();
  // Keep the demo small: one aggressive bracket, modest proxy dataset.
  options.hyperband = {1, 8, 2, 2};
  options.runner.proxy_samples = 800;
  options.seed = 7;

  EdgeTune tuner(options);
  Result<TuningReport> result = tuner.run();
  if (!result.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const TuningReport& report = result.value();

  std::printf("== EdgeTune quickstart: workload IC (ResNet / SynthImages) ==\n");
  std::printf("trials run           : %zu\n", report.trials.size());
  std::printf("best model config    : %s\n",
              config_to_string(report.best_config).c_str());
  std::printf("best accuracy seen   : %.1f %%\n", report.best_accuracy * 100);
  std::printf("tuning runtime (sim) : %.1f min\n",
              report.tuning_runtime_s / 60.0);
  std::printf("tuning energy (sim)  : %.1f kJ\n",
              report.tuning_energy_j / 1000.0);
  std::printf("\n-- inference recommendation for %s --\n",
              tuner.options().edge_device.name.c_str());
  std::printf("deploy config        : %s\n",
              config_to_string(report.inference.config).c_str());
  std::printf("throughput           : %.1f samples/s\n",
              report.inference.throughput_sps);
  std::printf("energy per sample    : %.3f J\n",
              report.inference.energy_per_sample_j);
  std::printf("inference cache      : %zu hits / %zu misses\n",
              report.cache_hits, report.cache_misses);
  return 0;
}
