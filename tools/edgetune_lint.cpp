// edgetune_lint: repo-invariant static checker (no libclang — a tokenizing
// line scanner). Enforces the determinism and concurrency rules no
// off-the-shelf tool knows about:
//
//   rng-determinism      bans std::rand / srand / random_device /
//                        std RNG engines outside src/common/rng.* — every
//                        stochastic component must route through the
//                        bit-stable edgetune::Rng (CONTRIBUTING).
//   thread-outside-pool  bans std::thread construction outside ThreadPool:
//                        raw threads bypass wait_idle()/shutdown() and the
//                        trial-worker accounting.
//   fp-contract-allowlist every source under src/tensor/ compiled with a
//                        non-default -ffp-contract must be in the allowlist
//                        below (and allowlisted files must actually carry
//                        the flag) — protects the PR-2 bitwise GEMM
//                        contract from silent flag drift.
//   guarded-by           a mutex member/global must have at least one
//                        EDGETUNE_GUARDED_BY(<name>) user in the same file,
//                        so new shared state lands annotated and clang's
//                        -Wthread-safety keeps proving the lock discipline.
//   iostream-in-lib      bans #include <iostream> in src/ library code;
//                        libraries report through Status/log, and iostream
//                        drags in static init order + global locale state.
//   real-sleep-in-lib    bans sleep_for / sleep_until / usleep in src/
//                        outside common/thread_pool.*: library waiting is
//                        SIMULATED time (DESIGN §5.4) — retry backoff and
//                        stalls are charged to the simulated clock, and a
//                        real sleep would silently break parallel == serial
//                        determinism and slow the tests.
//
// A finding on a line carrying `// NOLINT(rule-id)` (or bare `// NOLINT`)
// is suppressed; the comment should say why. Exit code: 0 clean, 1 findings,
// 2 usage/IO error.
//
// Usage: edgetune_lint <file-or-dir>...   (directories scan recursively)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Small string helpers (the scanner works on raw lines).

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// Normalized, '/'-separated path for suffix/segment matching.
std::string norm_path(const fs::path& p) {
  std::string out = p.lexically_normal().generic_string();
  return out;
}

bool path_has_segment(const std::string& path, const std::string& segment) {
  return path == segment || contains(path, "/" + segment + "/") ||
         ends_with(path, "/" + segment) ||
         path.rfind(segment + "/", 0) == 0;
}

/// Splits a line into C-identifier tokens (letters, digits, '_').
std::vector<std::string> identifiers(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      cur.push_back(c);
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

/// True when `line` ends in a `// NOLINT` / `// NOLINT(rule, ...)` comment
/// naming `rule` (or naming no rule at all).
bool nolint_suppressed(const std::string& line, const std::string& rule) {
  const std::size_t pos = line.find("NOLINT");
  if (pos == std::string::npos) return false;
  const std::size_t open = line.find('(', pos);
  if (open == std::string::npos) return true;  // bare NOLINT: all rules
  const std::size_t close = line.find(')', open);
  if (close == std::string::npos) return true;
  const std::string rules = line.substr(open + 1, close - open - 1);
  std::stringstream ss(rules);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               item.end());
    if (item == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rules.

// rng-determinism: these identifiers may only appear in src/common/rng.*.
// (Split literals keep the linter from flagging its own rule table.)
const std::vector<std::string>& banned_rng_tokens() {
  static const std::vector<std::string> tokens = {
      "ra" "nd",           // std::rand / ::rand
      "sra" "nd",          // seeding the C RNG
      "random_" "device",  // nondeterministic seeds
      "mt" "19937",        // raw std engines bypass the bit-stable Rng
      "mt" "19937_64",
      "minstd_ra" "nd",
      "minstd_ra" "nd0",
      "default_random_" "engine",
      "random_" "shuffle",
  };
  return tokens;
}

bool rng_exempt(const std::string& path) {
  return ends_with(path, "common/rng.hpp") || ends_with(path, "common/rng.cpp");
}

// thread-outside-pool: std::thread may only appear in the ThreadPool TU.
bool thread_exempt(const std::string& path) {
  return ends_with(path, "common/thread_pool.hpp") ||
         ends_with(path, "common/thread_pool.cpp");
}

// fp-contract-allowlist: sources under src/tensor/ allowed to set a
// non-default -ffp-contract, and required to keep it. gemm_unfused.cpp IS
// the kNT bitwise contract, and gemm_routines_unfused.cpp extends that
// contract to the routine registry's naive kNT path and wide microtile:
// both must compile with -ffp-contract=off.
const std::set<std::string>& fp_contract_allowlist() {
  static const std::set<std::string> files = {"gemm_unfused.cpp",
                                              "gemm_routines_unfused.cpp"};
  return files;
}

// iostream-in-lib applies to library code only (src/), not tools/benches.
bool in_library(const std::string& path) {
  return path_has_segment(path, "src");
}

// real-sleep-in-lib: real blocking sleeps may only appear in the ThreadPool
// TU (its idle wait). Everything else in src/ accounts waiting in simulated
// time. (Split literals keep the linter from flagging its own table.)
const std::vector<std::string>& banned_sleep_tokens() {
  static const std::vector<std::string> tokens = {
      "sleep_" "for",    // std::this_thread::sleep_for
      "sleep_" "until",  // std::this_thread::sleep_until
      "usl" "eep",       // POSIX microsecond sleep
      "nanosl" "eep",    // POSIX nanosecond sleep
  };
  return tokens;
}

/// True for lines that declare a named mutex variable (member or global):
///   [mutable] [std::]{Mutex|mutex} name_;
/// after stripping comments. Returns the variable name via `name`.
bool parse_mutex_decl(const std::string& line, std::string* name) {
  std::string code = line.substr(0, line.find("//"));
  std::vector<std::string> toks = identifiers(code);
  // Drop qualifiers that may precede the type.
  std::size_t i = 0;
  while (i < toks.size() &&
         (toks[i] == "mutable" || toks[i] == "static" || toks[i] == "std")) {
    ++i;
  }
  if (i + 1 >= toks.size()) return false;
  if (toks[i] != "Mutex" && toks[i] != "mutex") return false;
  // Reject non-declarations: "std::mutex&", template args, using decls.
  if (contains(code, "&") || contains(code, "(") || contains(code, "<") ||
      contains(code, "using") || contains(code, "typedef")) {
    return false;
  }
  // Declaration must end with ';' and have exactly one trailing identifier.
  std::string tail = code;
  tail.erase(std::remove_if(tail.begin(), tail.end(),
                            [](unsigned char c) { return std::isspace(c); }),
             tail.end());
  if (tail.empty() || tail.back() != ';') return false;
  if (i + 2 != toks.size()) return false;
  *name = toks[i + 1];
  return true;
}

// ---------------------------------------------------------------------------
// Per-file scanners.

void scan_source(const std::string& display_path, const fs::path& real_path,
                 std::vector<Finding>* findings) {
  std::ifstream in(real_path);
  if (!in.good()) {
    findings->push_back({display_path, 0, "io", "cannot open file"});
    return;
  }

  struct MutexDecl {
    std::string name;
    std::size_t line;
  };
  std::vector<MutexDecl> mutexes;
  std::set<std::string> guarded;  // names seen in EDGETUNE_GUARDED_BY(...)
  std::string line;
  std::size_t lineno = 0;
  bool in_block_comment = false;

  while (std::getline(in, line)) {
    ++lineno;

    // Track /* */ so commented-out code is not flagged. (Line comments are
    // handled per rule; string literals are deliberately scanned — a banned
    // token inside one is near-always a shell command or codegen.)
    std::string code = line;
    if (in_block_comment) {
      const std::size_t close = code.find("*/");
      if (close == std::string::npos) continue;
      code = code.substr(close + 2);
      in_block_comment = false;
    }
    for (std::size_t open = code.find("/*"); open != std::string::npos;
         open = code.find("/*")) {
      const std::size_t close = code.find("*/", open + 2);
      if (close == std::string::npos) {
        code = code.substr(0, open);
        in_block_comment = true;
        break;
      }
      code = code.substr(0, open) + code.substr(close + 2);
    }

    const std::string before_comment = code.substr(0, code.find("//"));
    const std::vector<std::string> toks = identifiers(before_comment);
    const auto has_token = [&](const std::string& t) {
      return std::find(toks.begin(), toks.end(), t) != toks.end();
    };

    // --- rng-determinism
    if (!rng_exempt(display_path)) {
      for (const std::string& banned : banned_rng_tokens()) {
        if (has_token(banned) && !nolint_suppressed(line, "rng-determinism")) {
          findings->push_back(
              {display_path, lineno, "rng-determinism",
               "'" + banned + "' outside common/rng.*: use edgetune::Rng "
               "with an explicit seed (bit-stable streams)"});
        }
      }
    }

    // --- thread-outside-pool
    if (!thread_exempt(display_path) && has_token("thread") &&
        contains(before_comment, "std::" "thread") &&
        !contains(before_comment, "std::" "thread::") &&
        !nolint_suppressed(line, "thread-outside-pool")) {
      findings->push_back(
          {display_path, lineno, "thread-outside-pool",
           "raw std::" "thread outside ThreadPool: submit work to a pool "
           "instead (shutdown/wait_idle discipline)"});
    }

    // --- iostream-in-lib
    if (in_library(display_path) && contains(before_comment, "#include") &&
        contains(before_comment, "<iostream>") &&
        !nolint_suppressed(line, "iostream-in-lib")) {
      findings->push_back({display_path, lineno, "iostream-in-lib",
                           "#include <iostream> in library code: report "
                           "through Status/ET_LOG, print in tools/"});
    }

    // --- real-sleep-in-lib
    if (in_library(display_path) && !thread_exempt(display_path)) {
      for (const std::string& banned : banned_sleep_tokens()) {
        if (has_token(banned) &&
            !nolint_suppressed(line, "real-sleep-in-lib")) {
          findings->push_back(
              {display_path, lineno, "real-sleep-in-lib",
               "'" + banned + "' in library code: waiting is simulated time "
               "(charge it to the report, DESIGN §5.4); real sleeps belong "
               "only in common/thread_pool.*"});
        }
      }
    }

    // --- guarded-by bookkeeping
    std::string mutex_name;
    if (parse_mutex_decl(line, &mutex_name)) {
      if (!nolint_suppressed(line, "guarded-by")) {
        mutexes.push_back({mutex_name, lineno});
      }
    }
    for (std::size_t pos = before_comment.find("EDGETUNE_GUARDED_BY(");
         pos != std::string::npos;
         pos = before_comment.find("EDGETUNE_GUARDED_BY(", pos + 1)) {
      const std::size_t open = before_comment.find('(', pos);
      const std::size_t close = before_comment.find(')', open);
      if (open == std::string::npos || close == std::string::npos) break;
      std::string arg = before_comment.substr(open + 1, close - open - 1);
      arg.erase(std::remove_if(arg.begin(), arg.end(),
                               [](unsigned char c) { return std::isspace(c); }),
                arg.end());
      guarded.insert(arg);
    }
  }

  // --- guarded-by verdicts (file scope: every mutex needs >= 1 annotated
  // user, or an explanatory NOLINT on its declaration).
  for (const MutexDecl& m : mutexes) {
    if (guarded.count(m.name) != 0) continue;
    findings->push_back(
        {display_path, m.line, "guarded-by",
         "mutex '" + m.name + "' has no EDGETUNE_GUARDED_BY(" + m.name +
             ") member in this file: annotate the state it protects "
             "(common/thread_annotations.hpp)"});
  }
}

/// fp-contract-allowlist over a tensor CMakeLists.txt: files that
/// set_source_files_properties ... COMPILE_OPTIONS "-ffp-contract=..." must
/// match the allowlist exactly, in both directions.
void scan_tensor_cmake(const std::string& display_path,
                       const fs::path& real_path,
                       std::vector<Finding>* findings) {
  std::ifstream in(real_path);
  if (!in.good()) {
    findings->push_back({display_path, 0, "io", "cannot open file"});
    return;
  }
  std::string line;
  std::size_t lineno = 0;
  std::set<std::string> flagged;      // sources given an -ffp-contract flag
  std::map<std::string, std::size_t> flagged_line;
  bool suppressed = false;
  std::string whole;  // full text, for the is-this-TU-even-built-here gate

  // Parse set_source_files_properties(<files...> PROPERTIES ...) statements,
  // which may span lines; associate them with -ffp-contract when present.
  std::string stmt;
  std::size_t stmt_line = 0;
  bool stmt_nolint = false;
  while (std::getline(in, line)) {
    ++lineno;
    whole += line + "\n";
    // A NOLINT anywhere in the file waives the reverse (missing-flag)
    // direction for the whole file: `NOLINT(...)`'s own ')' ends the
    // enclosing statement early, so statement-scoped state cannot see it.
    suppressed = suppressed || nolint_suppressed(line, "fp-contract-allowlist");
    if (contains(line, "set_source_files_properties")) {
      stmt.clear();
      stmt_line = lineno;
      stmt_nolint = false;
    }
    if (stmt_line != 0) {
      stmt += line + "\n";
      stmt_nolint = stmt_nolint ||
                    nolint_suppressed(line, "fp-contract-allowlist");
      if (contains(line, ")")) {
        if (contains(stmt, "-ffp-contract")) {
          // Tokens between '(' and PROPERTIES are the source files.
          const std::size_t open = stmt.find('(');
          const std::size_t props = stmt.find("PROPERTIES");
          if (open != std::string::npos && props != std::string::npos) {
            std::stringstream ss(stmt.substr(open + 1, props - open - 1));
            std::string file;
            while (ss >> file) {
              flagged.insert(file);
              flagged_line[file] = stmt_line;
              if (stmt_nolint) flagged.erase(file);
            }
          }
        }
        stmt.clear();
        stmt_line = 0;
      }
    }
  }

  for (const std::string& file : flagged) {
    if (fp_contract_allowlist().count(file) == 0) {
      findings->push_back(
          {display_path, flagged_line[file], "fp-contract-allowlist",
           "'" + file + "' sets a non-default -ffp-contract but is not in "
           "the edgetune_lint allowlist: FP contraction is part of the "
           "bitwise GEMM contract (DESIGN §5.1)"});
    }
  }
  if (!suppressed) {
    for (const std::string& file : fp_contract_allowlist()) {
      // Only TUs this CMakeLists actually builds owe the flag: the
      // allowlist names every contract TU in the repo, but a fixture (or a
      // future split of src/tensor) need not compile all of them.
      if (contains(whole, file) && flagged.count(file) == 0) {
        findings->push_back(
            {display_path, 0, "fp-contract-allowlist",
             "allowlisted '" + file + "' no longer sets -ffp-contract in " +
                 display_path + ": the kNT bitwise contract depends on it"});
      }
    }
  }
}

bool lintable_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool tensor_cmake(const std::string& display_path) {
  return ends_with(display_path, "tensor/CMakeLists.txt");
}

void scan_path(const fs::path& root, std::vector<Finding>* findings) {
  std::vector<fs::path> files;
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    const std::string display = norm_path(p);
    if (lintable_source(p)) {
      scan_source(display, p, findings);
    } else if (tensor_cmake(display)) {
      scan_tensor_cmake(display, p, findings);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: edgetune_lint <file-or-dir>...\n"
                 "rules: rng-determinism thread-outside-pool "
                 "fp-contract-allowlist guarded-by iostream-in-lib "
                 "real-sleep-in-lib\n");
    return 2;
  }
  std::vector<Finding> findings;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "edgetune_lint: no such path: %s\n", argv[i]);
      return 2;
    }
    scan_path(root, &findings);
  }
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "edgetune_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
