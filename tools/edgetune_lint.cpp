// edgetune_lint: whole-repo static analyzer (no libclang — a lexing
// multi-pass scanner). Enforces the determinism, concurrency, and layering
// rules no off-the-shelf tool knows about. Architecture (DESIGN §5.8):
//
//   pass 1  loads every TU once into a shared lexed-file model: per line,
//           a comment-stripped code view (string-literal aware), a
//           strings-blanked structural view, and the parsed trailing
//           NOLINT marker. All later passes read this model; no file is
//           opened twice.
//   pass 2  parses every `#include "..."` edge under src/ and checks it
//           against the frozen layer DAG below (`layer-order`), then runs
//           a DFS over the file-level include graph and reports any cycle
//           with its witness path (`include-cycle`).
//   pass 3  tracks nested MutexLock / EDGETUNE_ACQUIRE / EDGETUNE_REQUIRES
//           acquisitions by brace depth, merges the per-TU acquired-before
//           edges into one global lock-order graph, and reports any cycle
//           as a potential deadlock with the full witness path
//           (`lock-order-cycle`). Suppressible only via the ordering
//           exception table (lock_order_exceptions.txt), never NOLINT.
//   pass 4  collects every function declared to return Status / Result<T>
//           anywhere in the scanned tree and flags call-sites that discard
//           the result as a bare expression-statement (`unchecked-status`)
//           — the complement of the class-level [[nodiscard]]: it also
//           covers code the current compiler configuration never builds.
//   pass 5  the original repo-invariant line rules over the same model:
//           rng-determinism, thread-outside-pool, fp-contract-allowlist,
//           guarded-by, iostream-in-lib, real-sleep-in-lib, plus the
//           TU-level raw-persistence rule (ofstream + rename() in one TU
//           outside common/durable_io.*) — see the rule registry below
//           for one-line summaries.
//
// Suppression: a finding on a line whose TRAILING comment starts with
// `NOLINT(rule-id)` (or bare `NOLINT`) is suppressed; the comment should
// say why. A NOLINT token anywhere else (prose, string literal) is inert,
// and a malformed marker — `NOLINT(` with no closing `)` — is itself a
// finding (`nolint-malformed`) and waives nothing. `include-cycle` and
// `lock-order-cycle` ignore NOLINT entirely.
//
// Output: findings on stderr as `file:line: [rule] message`, or `--json`
// on stdout for CI artifacts. Exit 0 clean, 1 findings, 2 usage/IO error.
//
// Usage: edgetune_lint [--json] [--rule <id>]... [--list-rules] <path>...

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rule registry (--list-rules prints this table; --rule filters on the ids).

struct RuleInfo {
  const char* id;
  const char* summary;
};

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> rules = {
      // (Split literals keep the analyzer from flagging its own table.)
      {"rng-determinism",
       "no std::ra" "nd/sra" "nd/random_" "device/std <random> engines "
       "outside common/rng.* (bit-stable seeded streams only)"},
      {"thread-outside-pool",
       "no std::" "thread construction outside common/thread_pool.* "
       "(shutdown/wait_idle discipline)"},
      {"fp-contract-allowlist",
       "src/tensor/CMakeLists.txt gives a non-default -ffp-contract to "
       "exactly the allowlisted TUs, both directions"},
      {"guarded-by",
       "every Mutex/std::mutex member has >= 1 EDGETUNE_GUARDED_BY user in "
       "the same file"},
      {"iostream-in-lib",
       "no #include <iostream> in src/ library code"},
      {"real-sleep-in-lib",
       "no real sleeps in src/ outside common/thread_pool.* (waiting is "
       "simulated time)"},
      {"nolint-malformed",
       "NOLINT( with no closing ) — a marker that would silently waive "
       "every rule is itself a finding"},
      {"layer-order",
       "#include edges under src/ must point downward in the frozen layer "
       "DAG (common -> tensor -> nn/data -> device -> models -> "
       "budget/search/sim -> net -> tuning)"},
      {"include-cycle",
       "the file-level include graph under src/ must be acyclic "
       "(witness path reported; not NOLINT-suppressible)"},
      {"lock-order-cycle",
       "the global acquired-before lock graph must be acyclic (potential "
       "deadlock; suppressible only via lock_order_exceptions.txt)"},
      {"unchecked-status",
       "a call to a Status/Result-returning function must not be a bare "
       "expression-statement"},
      {"raw-persistence",
       "no hand-rolled ofstream + rename() persistence outside "
       "common/durable_io.* — route writes through durable_write_file "
       "(tmp file + fsync + atomic rename + directory fsync)"},
  };
  return rules;
}

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_registry()) {
    if (id == r.id) return true;
  }
  return false;
}

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule, message) <
           std::tie(o.file, o.line, o.rule, o.message);
  }
};

// ---------------------------------------------------------------------------
// Small string helpers.

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::string norm_path(const fs::path& p) {
  return p.lexically_normal().generic_string();
}

bool path_has_segment(const std::string& path, const std::string& segment) {
  return path == segment || contains(path, "/" + segment + "/") ||
         ends_with(path, "/" + segment) ||
         path.rfind(segment + "/", 0) == 0;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string strip_spaces(std::string s) {
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](unsigned char c) { return std::isspace(c); }),
          s.end());
  return s;
}

std::string ltrim(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

/// Splits a line into C-identifier tokens (letters, digits, '_').
std::vector<std::string> identifiers(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (ident_char(c)) {
      cur.push_back(c);
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: the shared lexed-file model.

/// Parsed trailing `NOLINT` marker of one line (absent by default).
struct NolintMarker {
  bool present = false;    // trailing comment starts with NOLINT
  bool malformed = false;  // `NOLINT(` with no closing `)`
  bool bare = false;       // `NOLINT` with no rule list: all rules
  std::vector<std::string> rules;
};

struct LineModel {
  std::string raw;     // the line as read
  std::string code;    // comments stripped, string literals kept
  std::string blank;   // comments stripped AND string contents blanked
  std::string comment; // trailing //-comment text (or #-comment in CMake)
  NolintMarker nolint;
};

enum class FileKind { kSource, kCMake };

struct FileModel {
  std::string display;  // normalized path as given on the command line
  FileKind kind = FileKind::kSource;
  std::vector<LineModel> lines;  // 0-based; finding lines are 1-based
};

/// Parses a trailing comment into a NolintMarker. Only a comment whose
/// text STARTS with `NOLINT` counts — `// see NOLINT docs` is prose.
NolintMarker parse_nolint(const std::string& comment) {
  NolintMarker marker;
  const std::string text = ltrim(comment);
  if (text.rfind("NOLINT", 0) != 0) return marker;
  const std::string rest = text.substr(6);
  if (!rest.empty() && ident_char(rest[0])) return marker;  // NOLINTxyz
  marker.present = true;
  if (rest.empty() || rest[0] != '(') {
    marker.bare = true;  // bare NOLINT: suppresses every rule on the line
    return marker;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    marker.malformed = true;  // would-be blanket waiver: finding, no effect
    return marker;
  }
  std::stringstream ss(rest.substr(1, close - 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = strip_spaces(item);
    if (!item.empty()) marker.rules.push_back(item);
  }
  return marker;
}

bool suppressed(const LineModel& line, const std::string& rule) {
  const NolintMarker& m = line.nolint;
  if (!m.present || m.malformed) return false;
  if (m.bare) return true;
  return std::find(m.rules.begin(), m.rules.end(), rule) != m.rules.end();
}

/// Lexes one C++ line: strips /* */ (tracking state across lines) and the
/// trailing // comment with string/char-literal awareness, and produces the
/// strings-blanked structural view. Preprocessor lines keep their quoted
/// text in `blank` so `#include "x"` stays parseable.
void lex_cpp_line(const std::string& raw, bool* in_block_comment,
                  LineModel* out) {
  std::string code, blank, comment;
  const bool preprocessor = !ltrim(raw).empty() && ltrim(raw)[0] == '#';
  enum class St { kNormal, kString, kChar };
  St st = St::kNormal;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (*in_block_comment) {
      if (c == '*' && i + 1 < raw.size() && raw[i + 1] == '/') {
        *in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (st == St::kString || st == St::kChar) {
      code.push_back(c);
      const char quote = st == St::kString ? '"' : '\'';
      if (c == '\\' && i + 1 < raw.size()) {
        code.push_back(raw[i + 1]);
        blank += preprocessor ? std::string{c, raw[i + 1]} : "  ";
        ++i;
        continue;
      }
      if (c == quote) {
        st = St::kNormal;
        blank.push_back(c);
      } else {
        blank.push_back(preprocessor ? c : ' ');
      }
      continue;
    }
    if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
      comment = raw.substr(i + 2);
      break;
    }
    if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
      *in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') st = St::kString;
    if (c == '\'') st = St::kChar;
    code.push_back(c);
    blank.push_back(c);
  }
  out->raw = raw;
  out->code = std::move(code);
  out->blank = std::move(blank);
  out->comment = comment;
  out->nolint = parse_nolint(comment);
}

/// Lexes one CMake line: `#` starts the comment (outside quotes).
void lex_cmake_line(const std::string& raw, LineModel* out) {
  std::string code, comment;
  bool in_string = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '"') in_string = !in_string;
    if (c == '#' && !in_string) {
      comment = raw.substr(i + 1);
      break;
    }
    code.push_back(c);
  }
  out->raw = raw;
  out->code = code;
  out->blank = std::move(code);
  out->comment = comment;
  out->nolint = parse_nolint(comment);
}

bool load_file(const std::string& display, const fs::path& real, FileKind kind,
               FileModel* model, std::vector<Finding>* findings) {
  std::ifstream in(real);
  if (!in.good()) {
    findings->push_back({display, 0, "io", "cannot open file"});
    return false;
  }
  model->display = display;
  model->kind = kind;
  std::string raw;
  bool in_block_comment = false;
  while (std::getline(in, raw)) {
    LineModel line;
    if (kind == FileKind::kSource) {
      lex_cpp_line(raw, &in_block_comment, &line);
    } else {
      lex_cmake_line(raw, &line);
    }
    model->lines.push_back(std::move(line));
  }
  return true;
}

/// Emits the `nolint-malformed` findings for one file (not suppressible —
/// a marker that failed to parse must never waive anything, including
/// itself).
void check_nolint_markers(const FileModel& file,
                          std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (file.lines[i].nolint.malformed) {
      findings->push_back(
          {file.display, i + 1, "nolint-malformed",
           "malformed NOLINT marker (no closing ')'): it suppresses "
           "nothing — write a trailing // NOLINT(rule-id) with a reason"});
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: include-layer DAG + include cycles.
//
// The frozen layer table. An #include edge under src/ may point sideways
// (same level) or downward (lower level); an upward edge is a finding.
// Sideways edges stay honest because the file-level cycle check below
// catches any mutual dependency a level cannot.

struct LayerEntry {
  const char* dir;
  int level;
};

const std::vector<LayerEntry>& layer_table() {
  static const std::vector<LayerEntry> table = {
      {"common", 0}, {"tensor", 1}, {"nn", 2},  {"data", 2},
      {"device", 3}, {"models", 4}, {"budget", 5}, {"search", 5},
      {"sim", 5},    {"net", 6},    {"tuning", 7},
  };
  return table;
}

int layer_level(const std::string& dir) {
  for (const LayerEntry& e : layer_table()) {
    if (dir == e.dir) return e.level;
  }
  return -1;  // not a layered directory
}

/// Path of `display` relative to its innermost `src/` segment, or "" when
/// the file is not under one (tools/, bench/, tests/ are unlayered).
std::string src_relative(const std::string& display) {
  const std::size_t pos = display.rfind("/src/");
  if (pos != std::string::npos) return display.substr(pos + 5);
  if (display.rfind("src/", 0) == 0) return display.substr(4);
  return "";
}

std::string first_component(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Extracts the quoted include target of a line, or "" if none.
std::string quoted_include(const LineModel& line) {
  const std::string code = ltrim(line.blank);
  if (code.rfind("#", 0) != 0) return "";
  const std::size_t inc = code.find("include");
  if (inc == std::string::npos) return "";
  const std::size_t open = code.find('"', inc);
  if (open == std::string::npos) return "";
  const std::size_t close = code.find('"', open + 1);
  if (close == std::string::npos) return "";
  return code.substr(open + 1, close - open - 1);
}

struct IncludeEdge {
  std::string from;  // src-relative path of the including file
  std::string to;    // include target as written
  std::string file;  // display path (for findings)
  std::size_t line = 0;
};

void pass_layering(const std::vector<FileModel>& files,
                   std::vector<Finding>* findings) {
  std::vector<IncludeEdge> edges;
  for (const FileModel& file : files) {
    if (file.kind != FileKind::kSource) continue;
    const std::string self = src_relative(file.display);
    if (self.empty()) continue;
    const std::string self_dir = first_component(self);
    const int self_level = layer_level(self_dir);
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      const std::string target = quoted_include(file.lines[i]);
      if (target.empty()) continue;
      edges.push_back({self, target, file.display, i + 1});
      const int target_level = layer_level(first_component(target));
      if (self_level < 0 || target_level < 0) continue;
      if (target_level > self_level &&
          !suppressed(file.lines[i], "layer-order")) {
        findings->push_back(
            {file.display, i + 1, "layer-order",
             "upward include: '" + self_dir + "' (level " +
                 std::to_string(self_level) + ") must not include '" +
                 target + "' (level " + std::to_string(target_level) +
                 ") — the layer DAG is common -> tensor -> nn/data -> "
                 "device -> models -> budget/search/sim -> net -> tuning"});
      }
    }
  }

  // File-level include cycles (DFS, witness path). Nodes are src-relative
  // paths; only edges between scanned files participate.
  std::set<std::string> nodes;
  for (const FileModel& file : files) {
    const std::string self = src_relative(file.display);
    if (!self.empty()) nodes.insert(self);
  }
  std::map<std::string, std::vector<const IncludeEdge*>> graph;
  for (const IncludeEdge& e : edges) {
    if (nodes.count(e.to) != 0) graph[e.from].push_back(&e);
  }
  std::set<std::string> done;       // fully explored
  std::set<std::string> on_stack;   // current DFS path
  std::set<std::string> reported;   // canonical cycle keys
  std::vector<const IncludeEdge*> path;

  // Iterative DFS with an explicit stack of (node, next-edge-index).
  for (const std::string& root : nodes) {
    if (done.count(root) != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack{{root, 0}};
    on_stack.insert(root);
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<const IncludeEdge*>& out = graph[node];
      if (next >= out.size()) {
        on_stack.erase(node);
        done.insert(node);
        stack.pop_back();
        if (!path.empty()) path.pop_back();
        continue;
      }
      const IncludeEdge* edge = out[next++];
      if (on_stack.count(edge->to) != 0) {
        // Back edge: unwind the witness cycle from path + this edge.
        std::vector<const IncludeEdge*> cycle;
        bool in_cycle = false;
        for (const IncludeEdge* e : path) {
          if (e->from == edge->to) in_cycle = true;
          if (in_cycle) cycle.push_back(e);
        }
        cycle.push_back(edge);
        std::string key;  // canonical: sorted member set
        std::set<std::string> members;
        for (const IncludeEdge* e : cycle) members.insert(e->from);
        for (const std::string& m : members) key += m + "|";
        if (reported.insert(key).second) {
          std::string witness = edge->to;
          for (const IncludeEdge* e : cycle) {
            witness += " -> " + e->to + " (" + e->file + ":" +
                       std::to_string(e->line) + ")";
          }
          findings->push_back(
              {edge->file, edge->line, "include-cycle",
               "include cycle: " + witness +
                   " — break the cycle (forward-declare or split the "
                   "header); not NOLINT-suppressible"});
        }
        continue;
      }
      if (done.count(edge->to) != 0) continue;
      on_stack.insert(edge->to);
      path.push_back(edge);
      stack.emplace_back(edge->to, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: cross-TU lock-order graph.
//
// Lexical model: a `MutexLock guard(expr);` declaration holds `expr` until
// its scope closes; a function annotated EDGETUNE_ACQUIRE(expr) /
// EDGETUNE_REQUIRES(expr) holds `expr` for its whole body. Every
// acquisition nested while other locks are held contributes held -> new
// edges, merged across all TUs by normalized lock-expression text (so the
// same member reached from both sides of a .hpp/.cpp split unifies; two
// classes sharing a member name over-unify, which is conservative — a
// sanctioned order goes in the exception table). A cycle in the merged
// graph is a potential deadlock and is reported with the full witness path.

struct LockEdge {
  std::string held;      // lock already held
  std::string acquired;  // lock acquired while holding `held`
  std::string file;      // witness: where `acquired` was taken
  std::size_t line = 0;
};

std::string normalize_lock_expr(std::string expr) {
  expr = strip_spaces(expr);
  // `this->mutex_` == `mutex_`; `p->mutex` == `p.mutex`; `&m` == `m`.
  std::size_t pos;
  while ((pos = expr.find("this->")) != std::string::npos) {
    expr.erase(pos, 6);
  }
  while ((pos = expr.find("->")) != std::string::npos) {
    expr.replace(pos, 2, ".");
  }
  while (!expr.empty() && (expr[0] == '&' || expr[0] == '*')) {
    expr.erase(0, 1);
  }
  return expr;
}

/// Splits an annotation argument list on top-level commas.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Finds `token` in `code` at identifier boundaries, from `from`.
std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from = 0) {
  for (std::size_t pos = code.find(token, from); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

/// Extracts the balanced `(...)` argument text starting at `open` (which
/// must point at '('). Returns false when the parens never balance on the
/// line (annotations and MutexLock declarations are single-line in this
/// codebase; a spill is simply not recorded).
bool balanced_paren_args(const std::string& code, std::size_t open,
                         std::string* args, std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')') {
      --depth;
      if (depth == 0) {
        *args = code.substr(open + 1, i - open - 1);
        *close = i;
        return true;
      }
    }
  }
  return false;
}

void pass_lock_order(const std::vector<FileModel>& files,
                     const std::set<std::pair<std::string, std::string>>&
                         exception_pairs,
                     std::vector<Finding>* findings) {
  struct Held {
    std::string name;
    int depth;  // brace depth at acquisition: popped when depth < this
  };
  std::map<std::pair<std::string, std::string>, LockEdge> edges;

  for (const FileModel& file : files) {
    if (file.kind != FileKind::kSource) continue;
    std::vector<Held> held;
    std::vector<std::string> pending;  // ACQUIRE/REQUIRES awaiting body '{'
    int depth = 0;

    auto acquire = [&](const std::string& name, int at_depth,
                       std::size_t lineno) {
      for (const Held& h : held) {
        const auto key = std::make_pair(h.name, name);
        if (edges.count(key) == 0) {
          edges[key] = {h.name, name, file.display, lineno};
        }
      }
      held.push_back({name, at_depth});
    };

    for (std::size_t li = 0; li < file.lines.size(); ++li) {
      const std::string& code = file.lines[li].blank;
      if (ltrim(code).rfind("#", 0) == 0) continue;  // preprocessor

      // Collect this line's acquisition sites (position -> lock names).
      // The pattern is a guard DECLARATION `MutexLock <var>(<expr>)` — a
      // bare `MutexLock(` is the class's own constructor machinery.
      std::map<std::size_t, std::vector<std::string>> sites;
      for (std::size_t pos = find_token(code, "MutexLock");
           pos != std::string::npos;
           pos = find_token(code, "MutexLock", pos + 1)) {
        std::size_t i = pos + 9;  // past "MutexLock"
        while (i < code.size() &&
               std::isspace(static_cast<unsigned char>(code[i]))) {
          ++i;
        }
        std::string var;
        while (i < code.size() && ident_char(code[i])) var.push_back(code[i++]);
        if (var.empty()) continue;
        while (i < code.size() &&
               std::isspace(static_cast<unsigned char>(code[i]))) {
          ++i;
        }
        if (i >= code.size() || code[i] != '(') continue;
        std::string args;
        std::size_t close;
        if (!balanced_paren_args(code, i, &args, &close)) continue;
        const std::string name = normalize_lock_expr(args);
        if (!name.empty()) sites[pos].push_back(name);
      }
      for (const char* macro : {"EDGETUNE_ACQUIRE", "EDGETUNE_REQUIRES"}) {
        for (std::size_t pos = find_token(code, macro);
             pos != std::string::npos;
             pos = find_token(code, macro, pos + 1)) {
          const std::size_t open = code.find('(', pos);
          if (open == std::string::npos) continue;
          std::string args;
          std::size_t close;
          if (!balanced_paren_args(code, open, &args, &close)) continue;
          for (const std::string& arg : split_args(args)) {
            const std::string name = normalize_lock_expr(arg);
            if (!name.empty()) pending.push_back(name);
          }
        }
      }

      // Walk the line: braces change depth, MutexLock sites acquire at the
      // current depth, a body '{' materializes pending annotation locks,
      // and a ';' at signature level discards them (declaration only).
      for (std::size_t i = 0; i < code.size(); ++i) {
        const auto site = sites.find(i);
        if (site != sites.end()) {
          for (const std::string& name : site->second) {
            acquire(name, depth, li + 1);
          }
        }
        if (code[i] == '{') {
          ++depth;
          for (const std::string& name : pending) {
            acquire(name, depth, li + 1);
          }
          pending.clear();
        } else if (code[i] == '}') {
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
        } else if (code[i] == ';' && pending.size() > 0 &&
                   sites.count(i) == 0) {
          // `Status f() EDGETUNE_REQUIRES(m);` — declaration, no body.
          pending.clear();
        }
      }
    }
  }

  // Ordering-exception table: a sanctioned pair may interleave both ways
  // (some external argument — phase separation, single-threaded section —
  // rules out the deadlock). Drop both directions.
  for (auto it = edges.begin(); it != edges.end();) {
    const auto fwd = std::make_pair(it->first.first, it->first.second);
    const auto rev = std::make_pair(it->first.second, it->first.first);
    if (exception_pairs.count(fwd) != 0 || exception_pairs.count(rev) != 0) {
      it = edges.erase(it);
    } else {
      ++it;
    }
  }

  // Cycle detection over the merged graph (DFS with witness path).
  std::map<std::string, std::vector<const LockEdge*>> graph;
  std::set<std::string> nodes;
  for (const auto& [key, edge] : edges) {
    graph[edge.held].push_back(&edge);
    nodes.insert(edge.held);
    nodes.insert(edge.acquired);
  }
  std::set<std::string> done, on_stack, reported;
  std::vector<const LockEdge*> path;
  for (const std::string& root : nodes) {
    if (done.count(root) != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack{{root, 0}};
    on_stack.insert(root);
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<const LockEdge*>& out = graph[node];
      if (next >= out.size()) {
        on_stack.erase(node);
        done.insert(node);
        stack.pop_back();
        if (!path.empty()) path.pop_back();
        continue;
      }
      const LockEdge* edge = out[next++];
      if (on_stack.count(edge->acquired) != 0) {
        std::vector<const LockEdge*> cycle;
        bool in_cycle = false;
        for (const LockEdge* e : path) {
          if (e->held == edge->acquired) in_cycle = true;
          if (in_cycle) cycle.push_back(e);
        }
        cycle.push_back(edge);
        std::set<std::string> members;
        for (const LockEdge* e : cycle) members.insert(e->held);
        std::string key;
        for (const std::string& m : members) key += m + "|";
        if (reported.insert(key).second) {
          std::string witness = edge->acquired;
          for (const LockEdge* e : cycle) {
            witness += " -> " + e->acquired + " (" + e->file + ":" +
                       std::to_string(e->line) + ")";
          }
          findings->push_back(
              {cycle.front()->file, cycle.front()->line, "lock-order-cycle",
               "potential deadlock, lock-order cycle: " + witness +
                   " — pick one global order, or record the sanctioned "
                   "pair in lock_order_exceptions.txt (NOLINT does not "
                   "apply)"});
        }
        continue;
      }
      if (done.count(edge->acquired) != 0) continue;
      on_stack.insert(edge->acquired);
      path.push_back(edge);
      stack.emplace_back(edge->acquired, 0);
    }
  }
}

/// Loads `lock_order_exceptions.txt`: one `first second` pair per line,
/// `#` comments. Returns false on a parse error (reported as a finding).
bool load_lock_exceptions(
    const fs::path& path,
    std::set<std::pair<std::string, std::string>>* pairs,
    std::vector<Finding>* findings) {
  std::ifstream in(path);
  if (!in.good()) {
    findings->push_back({norm_path(path), 0, "io", "cannot open file"});
    return false;
  }
  std::string raw;
  std::size_t lineno = 0;
  bool ok = true;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = raw.substr(0, raw.find('#'));
    std::stringstream ss(line);
    std::string first, second, extra;
    if (!(ss >> first)) continue;  // blank / comment-only
    if (!(ss >> second) || (ss >> extra)) {
      findings->push_back(
          {norm_path(path), lineno, "io",
           "lock-order exception entries are `first second` pairs"});
      ok = false;
      continue;
    }
    pairs->insert({normalize_lock_expr(first), normalize_lock_expr(second)});
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Pass 4: unchecked Status / Result<T>.

const std::set<std::string>& status_decl_qualifiers() {
  static const std::set<std::string> quals = {
      "static", "virtual", "inline", "constexpr", "explicit",
      "friend", "nodiscard", "maybe_unused", "edgetune"};
  return quals;
}

/// Tokens that open a statement rather than a declaration: a line like
/// `return helper(x);` must not be read as `helper` declared to return
/// type `return`.
const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kws = {
      "return", "if", "while", "for", "switch", "case", "default",
      "delete", "new", "throw", "goto", "else", "do", "break",
      "continue", "co_return", "co_await", "co_yield", "using",
      "typedef", "namespace", "class", "struct", "enum", "union",
      "public", "private", "protected", "sizeof"};
  return kws;
}

/// Collects names of functions declared (or defined) to return Status or
/// Result<T> from one structural line: `[quals] Status [Class::]name(`.
void collect_status_functions(const FileModel& file,
                              std::set<std::string>* names) {
  bool prev_ends_statement = true;
  for (const LineModel& line : file.lines) {
    const std::string code = ltrim(line.blank);
    const bool starts_statement = prev_ends_statement;
    if (!code.empty()) {
      const char last = code.back();
      // A `template <...>` header line does not interrupt the following
      // declaration's statement-start status.
      prev_ends_statement =
          last == ';' || last == '{' || last == '}' || last == ':' ||
          (last == '>' && code.rfind("template", 0) == 0);
    }
    if (!starts_statement || code.empty() || code[0] == '#') continue;

    // Tokenize the prefix: skip qualifiers, expect Status/Result.
    std::size_t i = 0;
    auto read_ident = [&]() {
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) ||
              code.compare(i, 2, "::") == 0 ||
              code.compare(i, 2, "[[") == 0 ||
              code.compare(i, 2, "]]") == 0)) {
        i += code[i] == ':' || code[i] == '[' || code[i] == ']' ? 2 : 1;
      }
      std::string ident;
      while (i < code.size() && ident_char(code[i])) ident.push_back(code[i++]);
      return ident;
    };
    std::string tok = read_ident();
    while (!tok.empty() && status_decl_qualifiers().count(tok) != 0) {
      tok = read_ident();
    }
    if (tok != "Status" && tok != "Result") continue;
    if (tok == "Result") {
      // Skip the template argument list.
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      if (i >= code.size() || code[i] != '<') continue;
      int angle = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++angle;
        if (code[i] == '>' && --angle == 0) {
          ++i;
          break;
        }
      }
      if (angle != 0) continue;
    }
    // `[Class::]name(` — the name is the last identifier before '('.
    std::string name = read_ident();
    while (!name.empty() && i < code.size()) {
      if (code.compare(i, 2, "::") == 0) {
        i += 2;
        name = read_ident();
        continue;
      }
      break;
    }
    if (name.empty() || name == "operator") continue;
    if (i < code.size() && code[i] == '(') names->insert(name);
  }
}

/// Collects function names declared with a NON-Status return type (`void
/// wait(`, `auto submit(`, `int Class::size(`). A name present in both sets
/// (CondVar::wait vs JobServer::wait) is ambiguous at a bare call site, so
/// pass 4 skips it: precision over recall for a lexical tool.
void collect_other_functions(const FileModel& file,
                             std::set<std::string>* names) {
  bool prev_ends_statement = true;
  for (const LineModel& line : file.lines) {
    const std::string code = ltrim(line.blank);
    const bool starts_statement = prev_ends_statement;
    if (!code.empty()) {
      const char last = code.back();
      prev_ends_statement =
          last == ';' || last == '{' || last == '}' || last == ':' ||
          (last == '>' && code.rfind("template", 0) == 0);
    }
    if (!starts_statement || code.empty() || code[0] == '#') continue;

    std::size_t i = 0;
    auto read_ident = [&]() {
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) ||
              code.compare(i, 2, "::") == 0 ||
              code.compare(i, 2, "[[") == 0 ||
              code.compare(i, 2, "]]") == 0)) {
        i += code[i] == ':' || code[i] == '[' || code[i] == ']' ? 2 : 1;
      }
      std::string ident;
      while (i < code.size() && ident_char(code[i])) ident.push_back(code[i++]);
      return ident;
    };
    auto skip_angles = [&]() {
      if (i < code.size() && code[i] == '<') {
        int angle = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++angle;
          if (code[i] == '>' && --angle == 0) {
            ++i;
            break;
          }
        }
      }
    };
    std::string tok = read_ident();
    while (!tok.empty() &&
           (status_decl_qualifiers().count(tok) != 0 || tok == "std" ||
            tok == "const" || tok == "unsigned" || tok == "typename")) {
      tok = read_ident();
    }
    if (tok.empty() || tok == "Status" || tok == "Result") continue;
    if (statement_keywords().count(tok) != 0) continue;
    skip_angles();
    while (i < code.size() &&
           (code[i] == '&' || code[i] == '*' ||
            std::isspace(static_cast<unsigned char>(code[i])))) {
      ++i;
    }
    std::string name = read_ident();
    while (!name.empty() && i < code.size()) {
      if (code.compare(i, 2, "::") == 0) {
        i += 2;
        name = read_ident();
        continue;
      }
      break;
    }
    if (name.empty() || name == "operator") continue;
    if (i < code.size() && code[i] == '(') names->insert(name);
  }
}

/// Variable names declared `std::atomic<...>` / `condition_variable`: member
/// calls on them (`counter.store(...)`) collide lexically with Status
/// function names but can never yield a Status.
void collect_std_sync_vars(const FileModel& file,
                           std::set<std::string>* vars) {
  static const std::string kTypes[] = {"atomic", "condition_variable",
                                       "condition_variable_any"};
  for (const LineModel& line : file.lines) {
    const std::string& code = line.blank;
    for (const std::string& type : kTypes) {
      for (std::size_t pos = find_token(code, type); pos != std::string::npos;
           pos = find_token(code, type, pos + 1)) {
        std::size_t i = pos + type.size();
        if (i < code.size() && code[i] == '<') {
          int angle = 0;
          for (; i < code.size(); ++i) {
            if (code[i] == '<') ++angle;
            if (code[i] == '>' && --angle == 0) {
              ++i;
              break;
            }
          }
          if (angle != 0) continue;
        }
        while (i < code.size() &&
               (code[i] == '&' || code[i] == '*' ||
                std::isspace(static_cast<unsigned char>(code[i])))) {
          ++i;
        }
        std::string var;
        while (i < code.size() && ident_char(code[i])) var.push_back(code[i++]);
        if (!var.empty()) vars->insert(var);
      }
    }
  }
}

/// Flags bare-expression-statement calls to collected Status functions.
void pass_unchecked_status(const std::vector<FileModel>& files,
                           std::vector<Finding>* findings) {
  std::set<std::string> status_fns, other_fns, sync_vars;
  for (const FileModel& file : files) {
    if (file.kind == FileKind::kSource) {
      collect_status_functions(file, &status_fns);
      collect_other_functions(file, &other_fns);
      collect_std_sync_vars(file, &sync_vars);
    }
  }
  if (status_fns.empty()) return;

  for (const FileModel& file : files) {
    if (file.kind != FileKind::kSource) continue;
    bool prev_ends_statement = true;
    for (std::size_t li = 0; li < file.lines.size(); ++li) {
      const std::string code = ltrim(file.lines[li].blank);
      const bool starts_statement = prev_ends_statement;
      if (!code.empty()) {
        const char last = code.back();
        prev_ends_statement =
            last == ';' || last == '{' || last == '}' || last == ':';
      }
      if (!starts_statement || code.empty() || code[0] == '#') continue;

      // Match a receiver chain `a::b.c->name(` at the statement start.
      std::size_t i = 0;
      std::string name;
      std::string receiver;  // last identifier before the called name
      while (true) {
        std::string ident;
        while (i < code.size() && ident_char(code[i])) {
          ident.push_back(code[i++]);
        }
        if (ident.empty()) break;
        if (i < code.size() && code[i] == '(') {
          name = ident;
          break;
        }
        if (code.compare(i, 2, "::") == 0 || code.compare(i, 2, "->") == 0) {
          receiver = ident;
          i += 2;
          continue;
        }
        if (i < code.size() && code[i] == '.') {
          receiver = ident;
          ++i;
          continue;
        }
        break;
      }
      if (name.empty() || status_fns.count(name) == 0) continue;
      // A name also declared in-tree with a non-Status return type is
      // ambiguous at the call site; a receiver declared std::atomic /
      // condition_variable can never yield a Status. Skip both.
      if (other_fns.count(name) != 0) continue;
      if (!receiver.empty() && sync_vars.count(receiver) != 0) continue;

      // The statement must be exactly `chain(...);` — join lines until the
      // parens balance, then require `;` (anything else consumes the value).
      int depth = 0;
      std::size_t j = i;
      std::size_t lj = li;
      std::string rest;
      const std::size_t kMaxJoin = 16;
      bool balanced = false;
      std::string joined = code;
      while (lj < file.lines.size() && lj - li < kMaxJoin) {
        const std::string& seg = joined;
        for (; j < seg.size(); ++j) {
          if (seg[j] == '(') ++depth;
          if (seg[j] == ')' && --depth == 0) {
            rest = ltrim(seg.substr(j + 1));
            balanced = true;
            break;
          }
        }
        if (balanced) break;
        ++lj;
        if (lj < file.lines.size()) {
          j = joined.size();
          joined += file.lines[lj].blank;
        }
      }
      if (!balanced || rest.rfind(";", 0) != 0) continue;
      if (suppressed(file.lines[li], "unchecked-status")) continue;
      findings->push_back(
          {file.display, li + 1, "unchecked-status",
           "result of '" + name + "' (declared to return Status/Result) is "
           "discarded as a bare statement: check it, propagate it "
           "(ET_RETURN_IF_ERROR), or make the discard explicit"});
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 5: the original repo-invariant line rules.

// (Split literals keep the linter from flagging its own rule table.)
const std::vector<std::string>& banned_rng_tokens() {
  static const std::vector<std::string> tokens = {
      "ra" "nd",           // std::rand / ::rand
      "sra" "nd",          // seeding the C RNG
      "random_" "device",  // nondeterministic seeds
      "mt" "19937",        // raw std engines bypass the bit-stable Rng
      "mt" "19937_64",
      "minstd_ra" "nd",
      "minstd_ra" "nd0",
      "default_random_" "engine",
      "random_" "shuffle",
  };
  return tokens;
}

const std::vector<std::string>& banned_sleep_tokens() {
  static const std::vector<std::string> tokens = {
      "sleep_" "for",    // std::this_thread::sleep_for
      "sleep_" "until",  // std::this_thread::sleep_until
      "usl" "eep",       // POSIX microsecond sleep
      "nanosl" "eep",    // POSIX nanosecond sleep
  };
  return tokens;
}

bool rng_exempt(const std::string& path) {
  return ends_with(path, "common/rng.hpp") || ends_with(path, "common/rng.cpp");
}

bool thread_exempt(const std::string& path) {
  return ends_with(path, "common/thread_pool.hpp") ||
         ends_with(path, "common/thread_pool.cpp");
}

const std::set<std::string>& fp_contract_allowlist() {
  static const std::set<std::string> files = {"gemm_unfused.cpp",
                                              "gemm_routines_unfused.cpp"};
  return files;
}

bool in_library(const std::string& path) {
  return path_has_segment(path, "src");
}

/// True for lines declaring a named mutex member/global (see guarded-by).
bool parse_mutex_decl(const std::string& code, std::string* name) {
  std::vector<std::string> toks = identifiers(code);
  std::size_t i = 0;
  while (i < toks.size() &&
         (toks[i] == "mutable" || toks[i] == "static" || toks[i] == "std")) {
    ++i;
  }
  if (i + 1 >= toks.size()) return false;
  if (toks[i] != "Mutex" && toks[i] != "mutex") return false;
  if (contains(code, "&") || contains(code, "(") || contains(code, "<") ||
      contains(code, "using") || contains(code, "typedef")) {
    return false;
  }
  std::string tail = strip_spaces(code);
  if (tail.empty() || tail.back() != ';') return false;
  if (i + 2 != toks.size()) return false;
  *name = toks[i + 1];
  return true;
}

void pass_line_rules(const FileModel& file, std::vector<Finding>* findings) {
  struct MutexDecl {
    std::string name;
    std::size_t line;
  };
  std::vector<MutexDecl> mutexes;
  std::set<std::string> guarded;

  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const LineModel& line = file.lines[li];
    const std::string& code = line.code;
    const std::vector<std::string> toks = identifiers(code);
    const auto has_token = [&](const std::string& t) {
      return std::find(toks.begin(), toks.end(), t) != toks.end();
    };

    // --- rng-determinism (string literals deliberately scanned: a banned
    // token inside one is near-always a shell command or codegen).
    if (!rng_exempt(file.display)) {
      for (const std::string& banned : banned_rng_tokens()) {
        if (has_token(banned) && !suppressed(line, "rng-determinism")) {
          findings->push_back(
              {file.display, li + 1, "rng-determinism",
               "'" + banned + "' outside common/rng.*: use edgetune::Rng "
               "with an explicit seed (bit-stable streams)"});
        }
      }
    }

    // --- thread-outside-pool
    if (!thread_exempt(file.display) && has_token("thread") &&
        contains(code, "std::" "thread") &&
        !contains(code, "std::" "thread::") &&
        !suppressed(line, "thread-outside-pool")) {
      findings->push_back(
          {file.display, li + 1, "thread-outside-pool",
           "raw std::" "thread outside ThreadPool: submit work to a pool "
           "instead (shutdown/wait_idle discipline)"});
    }

    // --- iostream-in-lib
    if (in_library(file.display) && contains(code, "#include") &&
        contains(code, "<iostream>") && !suppressed(line, "iostream-in-lib")) {
      findings->push_back({file.display, li + 1, "iostream-in-lib",
                           "#include <iostream> in library code: report "
                           "through Status/ET_LOG, print in tools/"});
    }

    // --- real-sleep-in-lib
    if (in_library(file.display) && !thread_exempt(file.display)) {
      for (const std::string& banned : banned_sleep_tokens()) {
        if (has_token(banned) && !suppressed(line, "real-sleep-in-lib")) {
          findings->push_back(
              {file.display, li + 1, "real-sleep-in-lib",
               "'" + banned + "' in library code: waiting is simulated time "
               "(charge it to the report, DESIGN §5.4); real sleeps belong "
               "only in common/thread_pool.*"});
        }
      }
    }

    // --- guarded-by bookkeeping
    std::string mutex_name;
    if (parse_mutex_decl(line.blank, &mutex_name) &&
        !suppressed(line, "guarded-by")) {
      mutexes.push_back({mutex_name, li + 1});
    }
    for (std::size_t pos = code.find("EDGETUNE_GUARDED_BY(");
         pos != std::string::npos;
         pos = code.find("EDGETUNE_GUARDED_BY(", pos + 1)) {
      const std::size_t open = code.find('(', pos);
      const std::size_t close = code.find(')', open);
      if (open == std::string::npos || close == std::string::npos) break;
      guarded.insert(strip_spaces(code.substr(open + 1, close - open - 1)));
    }
  }

  for (const MutexDecl& m : mutexes) {
    if (guarded.count(m.name) != 0) continue;
    findings->push_back(
        {file.display, m.line, "guarded-by",
         "mutex '" + m.name + "' has no EDGETUNE_GUARDED_BY(" + m.name +
             ") member in this file: annotate the state it protects "
             "(common/thread_annotations.hpp)"});
  }
}

// --- raw-persistence: a TU that opens an ofstream AND rename()s a file is
// doing write-temp-then-swap persistence by hand. That idiom is atomic
// against crashes of the READER but not of the WRITER (no fsync: after a
// power cut the renamed file can be empty), which is exactly why
// durable_write_file exists. The signal is deliberately TU-level — the two
// calls are usually lines apart in the same save routine — and the finding
// anchors at the rename, where the swap happens.

bool durable_io_exempt(const std::string& path) {
  return ends_with(path, "common/durable_io.hpp") ||
         ends_with(path, "common/durable_io.cpp");
}

void pass_raw_persistence(const FileModel& file,
                          std::vector<Finding>* findings) {
  if (durable_io_exempt(file.display)) return;
  std::size_t ofstream_line = 0;  // 1-based; 0 = not seen
  std::vector<std::size_t> rename_lines;
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    // The blanked view: 'ofstream' in a log message or a shell string is
    // not a file write.
    const std::string& code = file.lines[li].blank;
    if (ofstream_line == 0 &&
        find_token(code, "ofstream") != std::string::npos) {
      ofstream_line = li + 1;
    }
    for (std::size_t pos = find_token(code, "rename");
         pos != std::string::npos; pos = find_token(code, "rename", pos + 1)) {
      std::size_t i = pos + 6;  // past "rename"
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      if (i < code.size() && code[i] == '(') {
        rename_lines.push_back(li + 1);
        break;
      }
    }
  }
  if (ofstream_line == 0) return;
  for (std::size_t lineno : rename_lines) {
    if (suppressed(file.lines[lineno - 1], "raw-persistence")) continue;
    findings->push_back(
        {file.display, lineno, "raw-persistence",
         "hand-rolled persistence: this TU opens an ofstream (line " +
             std::to_string(ofstream_line) +
             ") and rename()s a file into place — use durable_write_file "
             "(common/durable_io.hpp) so the write survives a crash AND a "
             "power cut (tmp + fsync + rename + dir fsync)"});
  }
}

/// fp-contract-allowlist over a tensor CMakeLists.txt (same algorithm as
/// the PR-4 scanner, ported to the file model).
void pass_tensor_cmake(const FileModel& file, std::vector<Finding>* findings) {
  std::set<std::string> flagged;
  std::map<std::string, std::size_t> flagged_line;
  bool reverse_waived = false;
  std::string whole;

  std::string stmt;
  std::size_t stmt_line = 0;
  bool stmt_nolint = false;
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const LineModel& line = file.lines[li];
    whole += line.code + "\n";
    reverse_waived =
        reverse_waived || suppressed(line, "fp-contract-allowlist");
    if (contains(line.code, "set_source_files_properties")) {
      stmt.clear();
      stmt_line = li + 1;
      stmt_nolint = false;
    }
    if (stmt_line != 0) {
      stmt += line.code + "\n";
      stmt_nolint = stmt_nolint || suppressed(line, "fp-contract-allowlist");
      if (contains(line.code, ")")) {
        if (contains(stmt, "-ffp-contract")) {
          const std::size_t open = stmt.find('(');
          const std::size_t props = stmt.find("PROPERTIES");
          if (open != std::string::npos && props != std::string::npos) {
            std::stringstream ss(stmt.substr(open + 1, props - open - 1));
            std::string f;
            while (ss >> f) {
              flagged.insert(f);
              flagged_line[f] = stmt_line;
              if (stmt_nolint) flagged.erase(f);
            }
          }
        }
        stmt.clear();
        stmt_line = 0;
      }
    }
  }

  for (const std::string& f : flagged) {
    if (fp_contract_allowlist().count(f) == 0) {
      findings->push_back(
          {file.display, flagged_line[f], "fp-contract-allowlist",
           "'" + f + "' sets a non-default -ffp-contract but is not in "
           "the edgetune_lint allowlist: FP contraction is part of the "
           "bitwise GEMM contract (DESIGN §5.1)"});
    }
  }
  if (!reverse_waived) {
    for (const std::string& f : fp_contract_allowlist()) {
      // Only TUs this CMakeLists actually builds owe the flag.
      if (contains(whole, f) && flagged.count(f) == 0) {
        findings->push_back(
            {file.display, 0, "fp-contract-allowlist",
             "allowlisted '" + f + "' no longer sets -ffp-contract in " +
                 file.display + ": the kNT bitwise contract depends on it"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver: path walking, pass orchestration, output.

bool lintable_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool tensor_cmake(const std::string& display) {
  return ends_with(display, "tensor/CMakeLists.txt");
}

/// Directories never worth linting: VCS metadata, build trees, anything
/// hidden. Keeps `edgetune_lint .` at the repo root from scanning
/// generated/vendored files.
bool skip_dir(const std::string& name) {
  if (!name.empty() && name[0] == '.') return true;
  if (name.rfind("build", 0) == 0) return true;
  return name == "third_party" || name == "vendor";
}

void collect_files(const fs::path& root, std::vector<fs::path>* out) {
  if (!fs::is_directory(root)) {
    out->push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory() && skip_dir(it->path().filename().string())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file()) out->push_back(it->path());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings) {
  std::printf("{\n  \"tool\": \"edgetune_lint\",\n  \"findings\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::printf(
        "%s\n    {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
        "\"message\": \"%s\"}",
        i == 0 ? "" : ",", json_escape(f.file).c_str(), f.line,
        json_escape(f.rule).c_str(), json_escape(f.message).c_str());
  }
  std::printf("%s],\n  \"count\": %zu\n}\n",
              findings.empty() ? "" : "\n  ", findings.size());
}

int usage() {
  std::fprintf(
      stderr,
      "usage: edgetune_lint [--json] [--rule <id>]... [--list-rules] "
      "[--lock-order-exceptions <file>] <file-or-dir>...\n"
      "directories scan recursively (build*/, hidden dirs skipped); "
      "--list-rules prints the rule table\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::set<std::string> rule_filter;
  std::vector<std::string> roots;
  std::vector<fs::path> exception_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_registry()) {
        std::printf("%-22s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--rule") {
      if (i + 1 >= argc) return usage();
      const std::string id = argv[++i];
      if (!known_rule(id)) {
        std::fprintf(stderr, "edgetune_lint: unknown rule '%s'\n",
                     id.c_str());
        return 2;
      }
      rule_filter.insert(id);
    } else if (arg == "--lock-order-exceptions") {
      if (i + 1 >= argc) return usage();
      exception_files.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<Finding> findings;

  // Ordering-exception table: explicit flags plus the conventional file at
  // the top of any scanned directory root.
  std::set<std::pair<std::string, std::string>> exception_pairs;
  for (const std::string& root : roots) {
    const fs::path candidate = fs::path(root) / "lock_order_exceptions.txt";
    if (fs::is_directory(root) && fs::exists(candidate)) {
      exception_files.push_back(candidate);
    }
  }
  for (const fs::path& path : exception_files) {
    load_lock_exceptions(path, &exception_pairs, &findings);
  }

  // Pass 1: load every file once.
  std::vector<fs::path> paths;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (!fs::exists(p)) {
      std::fprintf(stderr, "edgetune_lint: no such path: %s\n", root.c_str());
      return 2;
    }
    collect_files(p, &paths);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<FileModel> files;
  for (const fs::path& p : paths) {
    const std::string display = norm_path(p);
    FileKind kind;
    if (lintable_source(p)) {
      kind = FileKind::kSource;
    } else if (tensor_cmake(display)) {
      kind = FileKind::kCMake;
    } else {
      continue;
    }
    FileModel model;
    if (load_file(display, p, kind, &model, &findings)) {
      files.push_back(std::move(model));
    }
  }

  // Passes 2-5 over the shared model.
  for (const FileModel& file : files) {
    check_nolint_markers(file, &findings);
    if (file.kind == FileKind::kSource) {
      pass_line_rules(file, &findings);
      pass_raw_persistence(file, &findings);
    } else {
      pass_tensor_cmake(file, &findings);
    }
  }
  pass_layering(files, &findings);
  pass_lock_order(files, exception_pairs, &findings);
  pass_unchecked_status(files, &findings);

  if (!rule_filter.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return rule_filter.count(f.rule) == 0;
                                  }),
                   findings.end());
  }
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return !(a < b) && !(b < a);
                             }),
                 findings.end());

  if (json) {
    print_json(findings);
  } else {
    for (const Finding& f : findings) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "edgetune_lint: %zu finding(s)\n",
                   findings.size());
    }
  }
  return findings.empty() ? 0 : 1;
}
