// edgetune_simulate — deployment-scenario planner (paper Fig 8). Given a
// model, an edge device, and an arrival pattern, sweeps the Batching knob
// through the queueing simulator and recommends the configuration with the
// lowest mean response time.
//
// Usage:
//   edgetune_simulate --scenario stream --rate 40 --model resnet18
//   edgetune_simulate --scenario server --query-samples 64 --period 2.5
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "device/cost_model.hpp"
#include "device/profile_io.hpp"
#include "models/models.hpp"
#include "sim/batching_tuner.hpp"

using namespace edgetune;

namespace {

Result<BuiltModel> build_by_name(const std::string& name, Rng& rng) {
  if (name == "resnet18") return build_resnet({.depth = 18}, rng);
  if (name == "resnet34") return build_resnet({.depth = 34}, rng);
  if (name == "resnet50") return build_resnet({.depth = 50}, rng);
  if (name == "alexnet") return build_alexnet({}, rng);
  if (name == "m5") return build_m5({}, rng);
  if (name == "textrnn") return build_text_rnn({}, rng);
  if (name == "yolo") return build_tiny_yolo({}, rng);
  return Status::not_found("unknown model '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.define("scenario", "stream", "stream (Poisson) or server (fixed freq)")
      .define("model", "resnet18", "model to deploy")
      .define("edge-device", "i7", "armv7, rpi3b, i7")
      .define("device-file", "", "JSON device profile")
      .define("cores", "4", "CPU cores for the engine")
      .define("rate", "20", "stream: Poisson arrivals per second")
      .define("max-wait", "0.1", "stream: aggregation timeout [s]")
      .define("query-samples", "64", "server: samples per query")
      .define("period", "2.0", "server: seconds between queries")
      .define("horizon", "120", "simulated seconds")
      .define("help", "false", "print this help");
  if (Status status = flags.parse(argc, argv); !status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::printf("edgetune_simulate — Fig 8 deployment planner\n\n%s",
                flags.help().c_str());
    return 0;
  }

  Rng rng(1);
  Result<BuiltModel> model = build_by_name(flags.get("model"), rng);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().to_string().c_str());
    return 2;
  }
  Result<DeviceProfile> device =
      flags.get("device-file").empty()
          ? device_by_name(flags.get("edge-device"))
          : load_device_profile(flags.get("device-file"));
  if (!device.ok()) {
    std::fprintf(stderr, "%s\n", device.status().to_string().c_str());
    return 2;
  }

  CostModel cost(device.value());
  const int cores = static_cast<int>(flags.get_int("cores"));
  const InferenceLatencyFn latency = [&](std::int64_t batch) -> double {
    Result<CostEstimate> est = cost.inference_cost(
        model.value().arch, {.batch_size = batch, .cores = cores});
    // Infeasible (RAM) batches are priced prohibitively so the sweep avoids
    // them instead of crashing.
    return est.ok() ? est.value().latency_s : 1e9;
  };

  std::printf("%s on %s, %d cores — scenario: %s\n",
              model.value().arch.id.c_str(), device.value().name.c_str(),
              cores, flags.get("scenario").c_str());

  if (flags.get("scenario") == "server") {
    ServerScenarioConfig scenario;
    scenario.samples_per_query = flags.get_int("query-samples");
    scenario.query_period_s = flags.get_double("period");
    scenario.horizon_s = flags.get_double("horizon");
    Result<ServerBatchingRecommendation> rec =
        recommend_server_batching(scenario, latency);
    if (!rec.ok()) {
      std::fprintf(stderr, "%s\n", rec.status().to_string().c_str());
      return 1;
    }
    std::printf("recommended split batch : %lld\n",
                static_cast<long long>(rec.value().split_batch));
    std::printf("mean response           : %.3f s (vs %.3f single-sample)\n",
                rec.value().stats.mean_response_s,
                rec.value().single_sample_stats.mean_response_s);
    std::printf("p95 response            : %.3f s\n",
                rec.value().stats.p95_response_s);
    std::printf("engine utilization      : %.0f %%\n",
                100 * rec.value().stats.utilization);
  } else {
    MultiStreamScenarioConfig scenario;
    scenario.arrival_rate_per_s = flags.get_double("rate");
    scenario.max_wait_s = flags.get_double("max-wait");
    scenario.horizon_s = flags.get_double("horizon");
    Result<StreamBatchingRecommendation> rec =
        recommend_stream_batching(scenario, latency);
    if (!rec.ok()) {
      std::fprintf(stderr, "%s\n", rec.status().to_string().c_str());
      return 1;
    }
    std::printf("recommended max batch   : %lld\n",
                static_cast<long long>(rec.value().max_batch));
    std::printf("mean response           : %.3f s (vs %.3f unbatched)\n",
                rec.value().stats.mean_response_s,
                rec.value().single_sample_stats.mean_response_s);
    std::printf("mean aggregated batch   : %.1f samples\n",
                rec.value().stats.mean_batch_size);
    std::printf("engine utilization      : %.0f %%\n",
                100 * rec.value().stats.utilization);
  }
  return 0;
}
