// edgetune — the tuning server's command-line front end.
//
// Runs a complete inference-aware tuning job and prints (and optionally
// saves) the report: the winning model configuration, the edge-deployment
// recommendation, and the tuning cost.
//
// Examples:
//   edgetune --workload IC
//   edgetune --workload OD --budget epochs --metric energy --seed 3
//   edgetune --workload SR --system tune            # baseline comparison
//   edgetune --workload NLP --edge-device i7 --report out.json
#include <cstdio>

#include <memory>

#include "common/fault.hpp"
#include "common/flags.hpp"
#include "common/shutdown.hpp"
#include "common/strings.hpp"
#include "tuning/baselines.hpp"
#include "device/profile_io.hpp"
#include "tuning/finalize.hpp"
#include "tuning/fleet.hpp"
#include "tuning/journal.hpp"
#include "tuning/pareto.hpp"
#include "tuning/report_io.hpp"

using namespace edgetune;

namespace {

Result<WorkloadKind> parse_workload(const std::string& text) {
  if (text == "IC") return WorkloadKind::kImageClassification;
  if (text == "SR") return WorkloadKind::kSpeech;
  if (text == "NLP") return WorkloadKind::kNlp;
  if (text == "OD") return WorkloadKind::kDetection;
  return Status::invalid_argument("workload must be IC, SR, NLP, or OD");
}

void print_report(const TuningReport& report, const EdgeTuneOptions& options) {
  std::printf("system               : %s\n", report.system.c_str());
  std::printf("trials run           : %zu\n", report.trials.size());
  std::printf("best model config    : %s\n",
              config_to_string(report.best_config).c_str());
  std::printf("best accuracy        : %.1f %%\n", report.best_accuracy * 100);
  std::printf("tuning runtime (sim) : %.2f min\n",
              report.tuning_runtime_s / 60.0);
  std::printf("tuning energy (sim)  : %.2f kJ\n",
              report.tuning_energy_j / 1000.0);
  std::printf("inference cache      : %zu hits / %zu misses\n",
              report.cache_hits, report.cache_misses);
  std::printf("-- deployment recommendation (%s) --\n",
              options.edge_device.name.c_str());
  std::printf("config               : %s\n",
              config_to_string(report.inference.config).c_str());
  std::printf("throughput           : %.2f samples/s\n",
              report.inference.throughput_sps);
  std::printf("energy per sample    : %.4f J\n",
              report.inference.energy_per_sample_j);
  if (report.inference.peak_memory_bytes > 0) {
    std::printf("peak memory          : %.1f MB\n",
                report.inference.peak_memory_bytes / 1e6);
  }
  // Printed only when the routine pass ran: with --tune-routines off the
  // CLI output stays byte-identical to pre-routine builds.
  if (report.routines_enabled) {
    const RoutineAssignment& r = report.routines;
    std::printf("-- routine assignment (%s) --\n", r.device.c_str());
    for (const RoutineOpAssignment& op : r.ops) {
      std::printf("%-8s %-18s : %s (%.4f ms)\n", op.layer_kind.c_str(),
                  op.shape_class.c_str(), op.routine.c_str(),
                  op.predicted_s * 1e3);
    }
    std::printf("predicted latency    : %.4f ms (conversions %.4f ms)\n",
                r.total_s * 1e3, r.conversion_s * 1e3);
    std::printf("vs per-op greedy     : %.4f ms\n", r.greedy_s * 1e3);
    std::printf("vs fixed blocked     : %.4f ms\n", r.fixed_blocked_s * 1e3);
    std::printf("routine profile      : %zu hits / %zu misses\n",
                r.profile_hits, r.profile_misses);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.define("workload", "IC", "workload: IC, SR, NLP, OD")
      .define("system", "edgetune",
              "edgetune | tune | hyperpower | hierarchical")
      .define("algorithm", "bohb", "search: grid, random, hyperband, bohb, tpe")
      .define("budget", "multi-budget", "budget: epochs, dataset, multi-budget")
      .define("metric", "runtime", "tuning metric: runtime or energy")
      .define("inference-metric", "energy",
              "inference objective: runtime or energy")
      .define("edge-device", "rpi3b", "armv7, rpi3b, or i7")
      .define("device-file", "", "JSON device profile (overrides edge-device)")
      .define("max-resource", "8", "HyperBand max budget units")
      .define("eta", "2", "successive-halving reduction factor")
      .define("trial-workers", "1",
              "concurrent trial evaluations per rung / TPE constant-liar "
              "batch width (1 = serial; applies to every algorithm and to "
              "the hierarchical tier-2 grid)")
      .define("intra-op-threads", "1",
              "threads per GEMM/conv operator; keep trial-workers * "
              "intra-op-threads <= cores")
      .define("inference-workers", "2",
              "inference tuning server worker threads")
      .define("proxy-samples", "500", "synthetic proxy dataset size")
      .define("target-accuracy", "0", "stop once reached (0 = off)")
      .define("power-cap", "800", "HyperPower power cap [W]")
      .define("cache-file", "", "persistent historical cache path")
      .define("cache-shards", "1",
              "lock-striped historical-cache shards (1 = classic single "
              "file; N > 1 stripes the lock and persistence files; reports "
              "are identical at any shard count)")
      .define("tune-routines", "false",
              "profile GEMM routines per (edge device, shape class) and "
              "DP-assign one per op of the winning architecture (DESIGN "
              "§5.6)")
      .define("routine-profile", "",
              "persistent routine-profile path (requires --tune-routines)")
      .define("report", "", "write the full JSON report here")
      .define("journal", "",
              "write-ahead trial journal path (DESIGN §5.9): every "
              "committed trial is logged before its accounting applies, so "
              "a crashed or killed run can be resumed exactly")
      .define("resume", "false",
              "resume from an existing --journal: already-journaled trials "
              "replay instead of re-measuring, and the final report is "
              "byte-identical to the uninterrupted run")
      .define("extra-devices", "",
              "comma-separated extra edge devices to recommend for")
      .define("save-model", "",
              "retrain the winner at full budget and checkpoint here")
      .define("pareto", "false", "print the Pareto front of the trial log")
      .define("inject-fault", "",
              "deterministic fault plan, ';'-separated specs like "
              "site=trial.train,rate=0.1,code=unavailable (sites: "
              "trial.train, inference.measure, cache.persist)")
      .define("trial-attempts", "1",
              "max executions per trial incl. retries of transient failures "
              "(backoff charged to simulated time)")
      .define("max-trial-failures", "1.0",
              "abort once more than this fraction of trials failed "
              "permanently (1.0 = degrade gracefully, 0 = fail fast)")
      .define("coordinator", "",
              "run as fleet coordinator: listen on this port and dispatch "
              "trial measurement to connected workers (requires --system "
              "edgetune)")
      .define("worker", "",
              "run as fleet worker: connect to a coordinator at host:port "
              "and measure dispatched trials (pass the same tuning flags as "
              "the coordinator)")
      .define("fleet-workers", "2",
              "coordinator: workers to wait for before tuning starts")
      .define("fleet-timeout", "60",
              "coordinator: seconds to wait for --fleet-workers to connect")
      .define("seed", "7", "master seed")
      .define("help", "false", "print this help");

  if (Status status = flags.parse(argc, argv); !status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::printf("edgetune — inference-aware multi-parameter tuning\n\n%s",
                flags.help().c_str());
    return 0;
  }

  Result<WorkloadKind> workload = parse_workload(flags.get("workload"));
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().to_string().c_str());
    return 2;
  }
  Result<DeviceProfile> edge =
      flags.get("device-file").empty()
          ? device_by_name(flags.get("edge-device"))
          : load_device_profile(flags.get("device-file"));
  if (!edge.ok()) {
    std::fprintf(stderr, "%s\n", edge.status().to_string().c_str());
    return 2;
  }

  EdgeTuneOptions options;
  options.workload = workload.value();
  options.search_algorithm = flags.get("algorithm");
  options.budget_policy = flags.get("budget");
  options.tuning_metric = flags.get("metric") == "energy"
                              ? MetricOfInterest::kEnergy
                              : MetricOfInterest::kRuntime;
  options.inference.objective = flags.get("inference-metric") == "runtime"
                                    ? MetricOfInterest::kRuntime
                                    : MetricOfInterest::kEnergy;
  options.inference.algorithm = "grid";
  options.inference.cache_path = flags.get("cache-file");
  const long cache_shards = flags.get_int("cache-shards");
  if (cache_shards < 1) {
    std::fprintf(stderr, "--cache-shards must be >= 1 (got %ld)\n",
                 cache_shards);
    return 2;
  }
  options.inference.cache_shards = static_cast<std::size_t>(cache_shards);
  options.edge_device = edge.value();
  options.hyperband.max_resource = flags.get_double("max-resource");
  options.hyperband.eta = flags.get_double("eta");
  options.hyperband.max_brackets = 2;
  options.trial_workers = static_cast<int>(flags.get_int("trial-workers"));
  if (options.trial_workers < 1) {
    std::fprintf(stderr,
                 "--trial-workers must be >= 1 (got %d); 1 runs trials "
                 "serially\n",
                 options.trial_workers);
    return 2;
  }
  options.intra_op_threads =
      static_cast<int>(flags.get_int("intra-op-threads"));
  options.inference.workers =
      static_cast<int>(flags.get_int("inference-workers"));
  options.runner.proxy_samples = flags.get_int("proxy-samples");
  options.target_accuracy = flags.get_double("target-accuracy");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  Result<std::vector<FaultSpec>> faults =
      parse_fault_plan(flags.get("inject-fault"));
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.status().to_string().c_str());
    return 2;
  }
  options.faults = std::move(faults).value();
  options.trial_retry.max_attempts =
      static_cast<int>(flags.get_int("trial-attempts"));
  options.inference.retry.max_attempts = options.trial_retry.max_attempts;
  options.max_trial_failure_fraction = flags.get_double("max-trial-failures");
  options.routine_tuning = flags.get_bool("tune-routines");
  options.routine_profile_path = flags.get("routine-profile");
  if (!options.routine_profile_path.empty() && !options.routine_tuning) {
    std::fprintf(stderr,
                 "--routine-profile has no effect without --tune-routines; "
                 "pass both (or neither)\n");
    return 2;
  }
  if (const std::string& extras = flags.get("extra-devices");
      !extras.empty()) {
    for (const std::string& name : split(extras, ',')) {
      Result<DeviceProfile> device = device_by_name(trim(name));
      if (!device.ok()) {
        std::fprintf(stderr, "%s\n", device.status().to_string().c_str());
        return 2;
      }
      options.extra_edge_devices.push_back(std::move(device).value());
    }
  }

  const std::string system = flags.get("system");

  options.journal_path = flags.get("journal");
  options.resume = flags.get_bool("resume");
  if (options.resume && options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal <path>\n");
    return 2;
  }
  if (!options.journal_path.empty()) {
    if (system == "hierarchical") {
      std::fprintf(stderr,
                   "--journal is not supported for --system hierarchical "
                   "(it runs two separate searches)\n");
      return 2;
    }
    if (!flags.get("cache-file").empty()) {
      std::fprintf(stderr,
                   "--journal requires a run-private in-memory cache: a "
                   "crashed run's persistent cache mutations would break "
                   "resume byte-parity; drop --cache-file\n");
      return 2;
    }
  }

  // --- Fleet roles (DESIGN §5.5). A worker never tunes: it serves
  // measurements to a coordinator. A coordinator tunes as usual but ships
  // every batch to its workers; the report it writes is byte-identical to
  // the single-process serial run with the same flags.
  const std::string coordinator_port = flags.get("coordinator");
  const std::string worker_target = flags.get("worker");
  if (!coordinator_port.empty() && !worker_target.empty()) {
    std::fprintf(stderr,
                 "--coordinator and --worker are mutually exclusive: one "
                 "process plays one fleet role\n");
    return 2;
  }
  if (!coordinator_port.empty() || !worker_target.empty()) {
    if (!options.journal_path.empty()) {
      std::fprintf(stderr,
                   "--journal is not supported in fleet mode; run the "
                   "journaled job single-process\n");
      return 2;
    }
    if (system != "edgetune") {
      std::fprintf(stderr,
                   "fleet mode requires --system edgetune (the baselines "
                   "measure locally)\n");
      return 2;
    }
    if (!flags.get("cache-file").empty()) {
      std::fprintf(stderr,
                   "--cache-file is not supported in fleet mode: workers "
                   "keep independent in-memory caches and the report does "
                   "not depend on them\n");
      return 2;
    }
  }
  if (!worker_target.empty()) {
    const std::size_t colon = worker_target.rfind(':');
    int port = 0;
    if (colon == std::string::npos ||
        !parse_int(worker_target.substr(colon + 1), &port) || port < 1 ||
        port > 65535) {
      std::fprintf(stderr, "--worker expects host:port, got \"%s\"\n",
                   worker_target.c_str());
      return 2;
    }
    Status status =
        run_fleet_worker(worker_target.substr(0, colon), port, options);
    if (!status.is_ok()) {
      std::fprintf(stderr, "fleet worker failed: %s\n",
                   status.to_string().c_str());
      return 1;
    }
    return 0;
  }
  std::shared_ptr<FleetCoordinator> fleet;
  if (!coordinator_port.empty()) {
    int port = 0;
    if (!parse_int(coordinator_port, &port) || port < 0 || port > 65535) {
      std::fprintf(stderr,
                   "--coordinator expects a port (0 = ephemeral), got "
                   "\"%s\"\n",
                   coordinator_port.c_str());
      return 2;
    }
    FleetOptions fleet_options;
    fleet_options.port = port;
    fleet = std::make_shared<FleetCoordinator>(
        fleet_options, measurement_fingerprint(options));
    if (Status status = fleet->start(); !status.is_ok()) {
      std::fprintf(stderr, "coordinator failed to start: %s\n",
                   status.to_string().c_str());
      return 1;
    }
    std::printf("fleet coordinator on 127.0.0.1:%d\n", fleet->port());
    const int expected = static_cast<int>(flags.get_int("fleet-workers"));
    if (expected < 1) {
      std::fprintf(stderr, "--fleet-workers must be >= 1 (got %d)\n",
                   expected);
      return 2;
    }
    if (Status status = fleet->wait_for_workers(
            expected, flags.get_double("fleet-timeout"));
        !status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      return 1;
    }
    options.fleet = fleet;
  }

  // Graceful SIGINT/SIGTERM: the search stops at the next batch boundary,
  // the journal is flushed, and the process exits 128+signal so a
  // supervisor can tell "interrupted, resume me" from failure (1) and
  // usage (2). A second signal hard-exits immediately.
  install_shutdown_signal_handlers();

  // The tuner outlives run() for --system edgetune so the journal replay /
  // re-measure counters survive into the summary below.
  std::unique_ptr<EdgeTune> tuner;
  Result<TuningReport> report = [&]() -> Result<TuningReport> {
    if (system == "edgetune") {
      tuner = std::make_unique<EdgeTune>(options);
      return tuner->run();
    }
    if (system == "tune") return run_tune_baseline(options);
    if (system == "hyperpower") {
      return run_hyperpower_baseline(options, flags.get_double("power-cap"));
    }
    if (system == "hierarchical") return run_hierarchical(options);
    return Status::invalid_argument("unknown --system " + system);
  }();
  if (fleet) fleet->shutdown();
  if (!report.ok()) {
    if (report.status().code() == StatusCode::kCancelled &&
        shutdown_requested()) {
      std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
      return 128 + shutdown_signal();
    }
    std::fprintf(stderr, "tuning failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  if (tuner != nullptr && !options.journal_path.empty()) {
    std::fprintf(stderr, "journal: replayed %zu, measured %zu\n",
                 tuner->journal_replayed(), tuner->journal_measured());
  }

  print_report(report.value(), options);
  for (const auto& [device, rec] : report.value().per_device) {
    std::printf("-- %s --  %s  %.2f samples/s, %.4f J/sample\n",
                device.c_str(), config_to_string(rec.config).c_str(),
                rec.throughput_sps, rec.energy_per_sample_j);
  }
  if (flags.get_bool("pareto")) {
    std::printf("-- Pareto front (accuracy / duration / energy) --\n");
    for (const TrialLog& t : pareto_front(report.value().trials)) {
      std::printf("trial %2d: %5.1f%% %8.1fs %10.0fJ  %s\n", t.id,
                  100 * t.accuracy, t.duration_s, t.energy_j,
                  config_to_string(t.config).c_str());
    }
  }
  if (const std::string& ckpt = flags.get("save-model"); !ckpt.empty()) {
    FinalizeOptions finalize;
    finalize.checkpoint_path = ckpt;
    Result<FinalizedModel> final_model =
        finalize_best_model(options, report.value(), finalize);
    if (!final_model.ok()) {
      std::fprintf(stderr, "finalize failed: %s\n",
                   final_model.status().to_string().c_str());
      return 1;
    }
    std::printf("trained model saved to %s (final accuracy %.1f%%)\n",
                ckpt.c_str(), 100 * final_model.value().accuracy);
  }
  if (const std::string& path = flags.get("report"); !path.empty()) {
    if (Status status = save_report(report.value(), path); !status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("report written to %s\n", path.c_str());
  }
  return 0;
}
