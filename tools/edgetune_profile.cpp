// edgetune_profile — per-layer inference latency breakdown of a model on an
// emulated edge device (an nn-Meter-style view of the cost model).
//
// Usage: edgetune_profile [--model resnet18] [--edge-device rpi3b]
//                         [--batch 1] [--cores 4]
#include <cstdio>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "device/cost_model.hpp"
#include "device/profile_io.hpp"
#include "models/models.hpp"

using namespace edgetune;

namespace {

Result<BuiltModel> build_by_name(const std::string& name, Rng& rng) {
  if (name == "resnet18") return build_resnet({.depth = 18}, rng);
  if (name == "resnet34") return build_resnet({.depth = 34}, rng);
  if (name == "resnet50") return build_resnet({.depth = 50}, rng);
  if (name == "alexnet") return build_alexnet({}, rng);
  if (name == "m5") return build_m5({}, rng);
  if (name == "textrnn") return build_text_rnn({}, rng);
  if (name == "yolo") return build_tiny_yolo({}, rng);
  return Status::not_found(
      "unknown model '" + name +
      "' (resnet18/34/50, alexnet, m5, textrnn, yolo)");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.define("model", "resnet18", "model to profile")
      .define("edge-device", "rpi3b", "armv7, rpi3b, i7, titan")
      .define("device-file", "", "JSON device profile")
      .define("batch", "1", "inference batch size")
      .define("cores", "4", "CPU cores")
      .define("help", "false", "print this help");
  if (Status status = flags.parse(argc, argv); !status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 2;
  }
  if (flags.get_bool("help")) {
    std::printf("edgetune_profile — per-layer latency breakdown\n\n%s",
                flags.help().c_str());
    return 0;
  }

  Rng rng(1);
  Result<BuiltModel> model = build_by_name(flags.get("model"), rng);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().to_string().c_str());
    return 2;
  }
  Result<DeviceProfile> device =
      flags.get("device-file").empty()
          ? device_by_name(flags.get("edge-device"))
          : load_device_profile(flags.get("device-file"));
  if (!device.ok()) {
    std::fprintf(stderr, "%s\n", device.status().to_string().c_str());
    return 2;
  }

  CostModel cost(device.value());
  InferenceConfig config;
  config.batch_size = flags.get_int("batch");
  config.cores = static_cast<int>(flags.get_int("cores"));
  Result<std::vector<CostModel::LayerCost>> layers =
      cost.profile_inference(model.value().arch, config);
  if (!layers.ok()) {
    std::fprintf(stderr, "%s\n", layers.status().to_string().c_str());
    return 1;
  }
  CostEstimate total =
      cost.inference_cost(model.value().arch, config).value();

  std::printf("%s on %s — batch %lld, %d cores\n",
              model.value().arch.id.c_str(), device.value().name.c_str(),
              static_cast<long long>(config.batch_size), config.cores);
  std::printf("total: %.2f ms/call, %.1f samples/s, %.3f J/sample\n\n",
              total.latency_s * 1e3, total.throughput_sps,
              total.energy_per_sample_j(config.batch_size));

  TextTable table({"#", "layer", "latency [ms]", "share", "GFLOP", "MB",
                   "bound"});
  for (std::size_t i = 0; i < layers.value().size(); ++i) {
    const auto& layer = layers.value()[i];
    table.add_row({std::to_string(i), layer.kind,
                   format_double(layer.latency_s * 1e3, 3),
                   format_double(100 * layer.latency_s / total.latency_s, 1) +
                       "%",
                   format_double(layer.flops / 1e9, 3),
                   format_double(layer.bytes / 1e6, 2),
                   layer.compute_bound ? "compute" : "memory"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
