// RAPL-style energy accounting (the paper uses PyRAPL, §5.1). The meter
// integrates (power x simulated time) segments and reports per-label and
// total energy.
#pragma once

#include <map>
#include <string>

#include "common/sim_clock.hpp"

namespace edgetune {

class PowerMeter {
 public:
  /// Records `duration_s` of simulated time at `power_w`, advancing `clock`.
  void record(SimClock& clock, const std::string& label, double duration_s,
              double power_w);

  /// Records energy directly (duration already applied to a clock elsewhere).
  void add_energy(const std::string& label, double energy_j);

  [[nodiscard]] double total_energy_j() const noexcept { return total_j_; }
  [[nodiscard]] double energy_j(const std::string& label) const;
  [[nodiscard]] const std::map<std::string, double>& by_label() const noexcept {
    return by_label_;
  }

  void reset();

 private:
  std::map<std::string, double> by_label_;
  double total_j_ = 0.0;
};

}  // namespace edgetune
