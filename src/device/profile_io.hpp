// JSON (de)serialization of DeviceProfile: lets users describe their own
// edge devices in a config file and feed them to the tuning server
// (edgetune --device-file my_board.json).
#pragma once

#include "common/json.hpp"
#include "device/profile.hpp"

namespace edgetune {

Json profile_to_json(const DeviceProfile& profile);

/// Builds a profile from JSON. Unknown keys are errors (they are almost
/// always typos in a hand-written device file); missing keys keep the
/// documented defaults. "name" is required.
Result<DeviceProfile> profile_from_json(const Json& json);

/// Reads a device profile from a JSON file.
Result<DeviceProfile> load_device_profile(const std::string& path);

/// Writes a profile to a JSON file (pretty-printed).
Status save_device_profile(const DeviceProfile& profile,
                           const std::string& path);

}  // namespace edgetune
