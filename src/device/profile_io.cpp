#include "device/profile_io.hpp"

#include <fstream>
#include <functional>
#include <sstream>

namespace edgetune {

Json profile_to_json(const DeviceProfile& p) {
  JsonObject obj;
  obj.emplace("name", p.name);
  obj.emplace("max_cores", p.max_cores);
  obj.emplace("base_freq_ghz", p.base_freq_ghz);
  JsonArray freqs;
  for (double f : p.freq_levels_ghz) freqs.push_back(Json(f));
  obj.emplace("freq_levels_ghz", std::move(freqs));
  obj.emplace("flops_per_cycle_per_core", p.flops_per_cycle_per_core);
  obj.emplace("mem_bandwidth_gbs", p.mem_bandwidth_gbs);
  obj.emplace("ram_bytes", p.ram_bytes);
  obj.emplace("cache_bytes", p.cache_bytes);
  obj.emplace("serial_fraction", p.serial_fraction);
  obj.emplace("idle_power_w", p.idle_power_w);
  obj.emplace("core_power_w", p.core_power_w);
  obj.emplace("mem_power_w", p.mem_power_w);
  obj.emplace("dispatch_overhead_s", p.dispatch_overhead_s);
  obj.emplace("per_layer_overhead_s", p.per_layer_overhead_s);
  obj.emplace("num_gpus", p.num_gpus);
  obj.emplace("gpu_tflops", p.gpu_tflops);
  obj.emplace("gpu_cache_bytes", p.gpu_cache_bytes);
  obj.emplace("gpu_mem_bandwidth_gbs", p.gpu_mem_bandwidth_gbs);
  obj.emplace("gpu_power_w", p.gpu_power_w);
  obj.emplace("gpu_idle_power_w", p.gpu_idle_power_w);
  obj.emplace("interconnect_gbs", p.interconnect_gbs);
  obj.emplace("gpu_launch_overhead_s", p.gpu_launch_overhead_s);
  obj.emplace("gpu_saturation_batch", p.gpu_saturation_batch);
  return Json(std::move(obj));
}

Result<DeviceProfile> profile_from_json(const Json& json) {
  if (!json.is_object()) {
    return Status::invalid_argument("device profile JSON must be an object");
  }
  DeviceProfile p;
  std::map<std::string, std::function<Status(const Json&)>> fields;
  auto number_field = [](double& target) {
    return [&target](const Json& v) {
      if (!v.is_number()) return Status::invalid_argument("expected number");
      target = v.as_number();
      return Status::ok();
    };
  };
  auto int_field = [](int& target) {
    return [&target](const Json& v) {
      if (!v.is_number()) return Status::invalid_argument("expected number");
      target = static_cast<int>(v.as_number());
      return Status::ok();
    };
  };
  fields.emplace("name", [&p](const Json& v) {
    if (!v.is_string()) return Status::invalid_argument("expected string");
    p.name = v.as_string();
    return Status::ok();
  });
  fields.emplace("freq_levels_ghz", [&p](const Json& v) {
    if (!v.is_array()) return Status::invalid_argument("expected array");
    p.freq_levels_ghz.clear();
    for (const Json& f : v.as_array()) {
      if (!f.is_number()) return Status::invalid_argument("expected number");
      p.freq_levels_ghz.push_back(f.as_number());
    }
    return Status::ok();
  });
  fields.emplace("max_cores", int_field(p.max_cores));
  fields.emplace("num_gpus", int_field(p.num_gpus));
  fields.emplace("base_freq_ghz", number_field(p.base_freq_ghz));
  fields.emplace("flops_per_cycle_per_core",
                 number_field(p.flops_per_cycle_per_core));
  fields.emplace("mem_bandwidth_gbs", number_field(p.mem_bandwidth_gbs));
  fields.emplace("ram_bytes", number_field(p.ram_bytes));
  fields.emplace("cache_bytes", number_field(p.cache_bytes));
  fields.emplace("serial_fraction", number_field(p.serial_fraction));
  fields.emplace("idle_power_w", number_field(p.idle_power_w));
  fields.emplace("core_power_w", number_field(p.core_power_w));
  fields.emplace("mem_power_w", number_field(p.mem_power_w));
  fields.emplace("dispatch_overhead_s", number_field(p.dispatch_overhead_s));
  fields.emplace("per_layer_overhead_s",
                 number_field(p.per_layer_overhead_s));
  fields.emplace("gpu_tflops", number_field(p.gpu_tflops));
  fields.emplace("gpu_cache_bytes", number_field(p.gpu_cache_bytes));
  fields.emplace("gpu_mem_bandwidth_gbs",
                 number_field(p.gpu_mem_bandwidth_gbs));
  fields.emplace("gpu_power_w", number_field(p.gpu_power_w));
  fields.emplace("gpu_idle_power_w", number_field(p.gpu_idle_power_w));
  fields.emplace("interconnect_gbs", number_field(p.interconnect_gbs));
  fields.emplace("gpu_launch_overhead_s",
                 number_field(p.gpu_launch_overhead_s));
  fields.emplace("gpu_saturation_batch",
                 number_field(p.gpu_saturation_batch));

  for (const auto& [key, value] : json.as_object()) {
    auto it = fields.find(key);
    if (it == fields.end()) {
      return Status::invalid_argument("unknown device profile key: " + key);
    }
    Status status = it->second(value);
    if (!status.is_ok()) {
      return Status::invalid_argument("field " + key + ": " +
                                      status.message());
    }
  }
  if (p.name.empty()) {
    return Status::invalid_argument("device profile requires a name");
  }
  if (p.max_cores < 1 || p.base_freq_ghz <= 0 || p.mem_bandwidth_gbs <= 0) {
    return Status::out_of_range(
        "device profile has non-positive core/frequency/bandwidth values");
  }
  if (p.freq_levels_ghz.empty()) {
    p.freq_levels_ghz = {p.base_freq_ghz};
  }
  return p;
}

Result<DeviceProfile> load_device_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::not_found("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ET_ASSIGN_OR_RETURN(Json json, Json::parse(buffer.str()));
  return profile_from_json(json);
}

Status save_device_profile(const DeviceProfile& profile,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::io("cannot open " + path + " for writing");
  out << profile_to_json(profile).dump_pretty() << '\n';
  return out.good() ? Status::ok() : Status::io("short write to " + path);
}

}  // namespace edgetune
