#include "device/perf_counters.hpp"

#include <cmath>

namespace edgetune {

const char* execution_phase_name(ExecutionPhase phase) noexcept {
  switch (phase) {
    case ExecutionPhase::kTrainForward:
      return "train-forward";
    case ExecutionPhase::kInference:
      return "inference";
  }
  return "?";
}

const std::vector<std::string>& perf_counter_events() {
  static const std::vector<std::string> events = {
      "L1.dcache.load.misses", "L1.dcache.loads", "L1.dcache.stores",
      "L1.icache.load.misses", "LLC.load.misses", "LLC.loads",
      "LLC.store.misses", "LLC.stores", "br_inst_retired.all_branches",
      "br_inst_retired.far_branch", "branch.instructions",
      "branch.load.misses", "branch.loads", "branch.misses", "branches",
      "bus.cycles", "cache.misses", "cache.references", "context.switches",
      "cpu.clock", "cpu.cycles", "cpu.migrations"};
  return events;
}

std::map<std::string, double> collect_perf_counters(
    const ArchSpec& arch, const DeviceProfile& device, ExecutionPhase phase,
    std::int64_t batch_size) {
  const double b = static_cast<double>(batch_size);
  const double flops = arch.flops_per_sample * b;
  // Execution time on one core at base frequency (counter rates are per
  // second of that execution).
  const double peak =
      device.flops_per_cycle_per_core * device.base_freq_ghz * 1e9;
  const double weight_bytes = arch.weight_reads * 4.0;
  const double act_bytes = arch.activation_elems * 4.0 * b * 2.0;

  // The training forward phase touches a much larger resident set: weights
  // are writable (kept hot for the update), every activation is retained for
  // backward, gradients buffers are allocated. This inflates *memory* events
  // only (the paper's Fig 1 observation).
  const bool training = phase == ExecutionPhase::kTrainForward;
  const double mem_pressure = training ? 3.2 : 1.0;
  const double store_pressure = training ? 4.0 : 1.0;

  const double bytes = weight_bytes + act_bytes * mem_pressure;
  const double compute_time = flops / peak;
  const double mem_time = bytes / (device.mem_bandwidth_gbs * 1e9);
  const double time = std::max(compute_time, mem_time) +
                      device.dispatch_overhead_s;

  const double instructions = flops * 1.15;
  const double lines = bytes / 64.0;

  std::map<std::string, double> rates;
  auto put = [&](const std::string& name, double count) {
    rates[name] = count / time;
  };

  // CPU-bound events: phase-independent per unit work.
  put("cpu.cycles", time * device.base_freq_ghz * 1e9);
  put("cpu.clock", time * device.base_freq_ghz * 1e9);
  put("bus.cycles", time * device.base_freq_ghz * 1e9 / 8.0);
  put("branches", instructions * 0.08);
  put("branch.instructions", instructions * 0.08);
  put("br_inst_retired.all_branches", instructions * 0.08);
  put("br_inst_retired.far_branch", instructions * 1e-6);
  put("context.switches", time * 120.0);
  put("cpu.migrations", time * 4.0);

  // Memory-bound events: scale with resident-set pressure.
  put("L1.dcache.loads", instructions * 0.35);
  put("L1.dcache.stores", instructions * 0.12 * store_pressure);
  put("L1.dcache.load.misses", lines * 0.9);
  put("L1.icache.load.misses", time * 2e4);
  put("LLC.loads", lines * 0.5);
  put("LLC.load.misses", lines * (training ? 0.30 : 0.06));
  put("LLC.stores", lines * 0.2 * store_pressure);
  put("LLC.store.misses", lines * (training ? 0.12 : 0.02));
  put("cache.references", lines);
  put("cache.misses", lines * (training ? 0.35 : 0.08));
  put("branch.loads", instructions * 0.08);
  put("branch.load.misses",
      instructions * 0.08 * (training ? 0.02 : 0.005));
  put("branch.misses", instructions * 0.08 * (training ? 0.02 : 0.006));
  return rates;
}

std::string perf_rate_bin(double events_per_second) {
  if (events_per_second > 1e8) return ">1e8";
  if (events_per_second > 1e6) return "1e8-1e6";
  if (events_per_second > 1e4) return "1e6-1e4";
  if (events_per_second > 1e2) return "1e4-1e2";
  return "<1e2";
}

}  // namespace edgetune
