// Device profiles for the edge-device emulator. The paper's testbed (§2.1,
// §5.1): an ARMv7 board, a Raspberry Pi 3 B+, an Intel i7-7567U, and a Titan
// RTX training server. Parameters are public datasheet/roofline numbers; the
// emulator only needs them to be *relatively* plausible, since all results
// are reported as shapes/ratios (DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace edgetune {

struct DeviceProfile {
  std::string name;

  // CPU side.
  int max_cores = 4;
  double base_freq_ghz = 1.4;
  std::vector<double> freq_levels_ghz;  // DVFS states, ascending
  double flops_per_cycle_per_core = 8;  // SIMD MACs*2
  double mem_bandwidth_gbs = 4.0;       // DRAM
  double ram_bytes = 1.0 * 1024 * 1024 * 1024;  // deployable memory
  double cache_bytes = 512.0 * 1024;    // last-level cache (single level)
  double serial_fraction = 0.06;        // Amdahl: non-parallelizable share

  // Power model: P = idle + sum over active cores of
  //   core_power_w * (freq/base)^2 * utilization  + mem_power_w * mem_util.
  double idle_power_w = 1.5;
  double core_power_w = 1.0;  // per core at base frequency, full load
  double mem_power_w = 0.8;

  // Per-inference-call fixed overhead (framework dispatch, graph setup).
  double dispatch_overhead_s = 2e-4;
  double per_layer_overhead_s = 1.5e-5;

  // GPU side (training servers only; 0 GPUs on edge devices).
  int num_gpus = 0;
  double gpu_tflops = 0.0;          // per GPU, dense fp32
  double gpu_cache_bytes = 6.0 * 1024 * 1024;  // L2; big batches spill it
  double gpu_mem_bandwidth_gbs = 0.0;
  double gpu_power_w = 0.0;         // per GPU at load
  double gpu_idle_power_w = 0.0;
  double interconnect_gbs = 0.0;    // NVLink/PCIe for gradient all-reduce
  double gpu_launch_overhead_s = 5e-6;  // per kernel launch
  /// Per-GPU mini-batch at which a GPU reaches full utilization.
  double gpu_saturation_batch = 64.0;

  [[nodiscard]] bool has_gpu() const noexcept { return num_gpus > 0; }
};

/// The paper's three edge platforms + the tuning server.
DeviceProfile device_armv7();        // ARMv7 rev 4, 4 cores, 4 GB
DeviceProfile device_rpi3b();        // Raspberry Pi 3 B+, 4 cores, 1 GB
DeviceProfile device_i7_7567u();     // Intel i7-7567U, 16 GB
DeviceProfile device_titan_server(); // Titan RTX x8 training server

/// Lookup by name ("armv7", "rpi3b", "i7", "titan"); error when unknown.
Result<DeviceProfile> device_by_name(const std::string& name);

/// All built-in edge profiles (excludes the training server).
std::vector<DeviceProfile> all_edge_devices();

}  // namespace edgetune
