#include "device/power_meter.hpp"

namespace edgetune {

void PowerMeter::record(SimClock& clock, const std::string& label,
                        double duration_s, double power_w) {
  clock.advance(duration_s);
  add_energy(label, duration_s * power_w);
}

void PowerMeter::add_energy(const std::string& label, double energy_j) {
  by_label_[label] += energy_j;
  total_j_ += energy_j;
}

double PowerMeter::energy_j(const std::string& label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? 0.0 : it->second;
}

void PowerMeter::reset() {
  by_label_.clear();
  total_j_ = 0.0;
}

}  // namespace edgetune
