#include "device/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace edgetune {

namespace {

/// Amdahl speedup for n cores with serial fraction s.
double amdahl(double n, double s) { return 1.0 / (s + (1.0 - s) / n); }

/// Small batches expose little intra-op parallelism: the effective serial
/// fraction grows as the batch shrinks (single-image inference barely
/// benefits from extra cores — the paper's Fig 5a observation).
double effective_serial(double base, double batch) {
  return std::min(0.9, base + 0.35 / batch);
}

}  // namespace

Result<double> CostModel::resolve_freq(double requested) const {
  if (requested <= 0.0) return profile_.base_freq_ghz;
  for (double level : profile_.freq_levels_ghz) {
    if (std::abs(level - requested) < 1e-9) return requested;
  }
  return Status::invalid_argument(
      "frequency " + std::to_string(requested) + " GHz is not a DVFS level of " +
      profile_.name);
}

Result<CostEstimate> CostModel::inference_cost(
    const ArchSpec& arch, const InferenceConfig& config) const {
  if (config.batch_size < 1) {
    return Status::invalid_argument("inference batch_size must be >= 1");
  }
  if (config.cores < 1 || config.cores > profile_.max_cores) {
    return Status::invalid_argument(
        "cores must be in [1, " + std::to_string(profile_.max_cores) +
        "] for " + profile_.name);
  }
  ET_ASSIGN_OR_RETURN(double freq, resolve_freq(config.freq_ghz));

  const double b = static_cast<double>(config.batch_size);
  // Deployability: weights + live activations for the batch must fit the
  // device RAM (with ~25% headroom for the runtime itself).
  const double resident_bytes =
      arch.param_bytes() + arch.activation_elems * 4.0 * b * 2.0;
  if (resident_bytes > 0.75 * profile_.ram_bytes) {
    return Status::failed_precondition(
        arch.id + " with batch " + std::to_string(config.batch_size) +
        " needs " + std::to_string(resident_bytes / 1e6) + " MB, exceeding " +
        profile_.name + "'s deployable RAM");
  }
  const double flops = arch.flops_per_sample * b;
  const double peak_flops =
      amdahl(config.cores, effective_serial(profile_.serial_fraction, b)) *
      profile_.flops_per_cycle_per_core * freq * 1e9;
  const double compute_time = flops / peak_flops;

  // Memory traffic: weights read once per batch (layer-wise execution reuses
  // them across the batch); activations read+written per sample. When the
  // per-layer working set outgrows the cache, activation traffic spills to
  // DRAM repeatedly.
  const double weight_bytes = arch.weight_reads * 4.0;
  const double act_bytes = arch.activation_elems * 4.0 * b * 2.0;
  const double layers = std::max<double>(1.0, static_cast<double>(arch.layers.size()));
  const double working_set =
      (arch.activation_elems * 4.0 * b) / layers + weight_bytes / layers;
  const double spill = std::min(
      30.0,
      1.0 + 0.5 * std::max(0.0, working_set / profile_.cache_bytes - 1.0));
  const double mem_time =
      (weight_bytes + act_bytes * spill) / (profile_.mem_bandwidth_gbs * 1e9);

  const double launches = std::max(layers, arch.kernel_launches);
  const double overhead = profile_.dispatch_overhead_s +
                          profile_.per_layer_overhead_s * launches;
  const double roofline = std::max(compute_time, mem_time);
  const double latency = overhead + roofline;

  // Power: active cores burn a floor share even when stalled on memory.
  const double compute_util = roofline > 0 ? compute_time / roofline : 0.0;
  const double mem_util = roofline > 0 ? mem_time / roofline : 0.0;
  const double freq_ratio = freq / profile_.base_freq_ghz;
  const double core_power = static_cast<double>(config.cores) *
                            profile_.core_power_w * freq_ratio * freq_ratio *
                            (0.4 + 0.6 * std::min(1.0, compute_util));
  const double busy_frac = roofline / latency;
  const double power = profile_.idle_power_w +
                       busy_frac * (core_power + profile_.mem_power_w *
                                                     std::min(1.0, mem_util));

  CostEstimate est;
  est.latency_s = latency;
  est.power_w = power;
  est.energy_j = power * latency;
  est.throughput_sps = b / latency;
  est.peak_memory_bytes = resident_bytes;
  return est;
}

Result<CostEstimate> CostModel::train_step_cost(
    const ArchSpec& arch, const TrainConfig& config) const {
  if (config.batch_size < 1) {
    return Status::invalid_argument("train batch_size must be >= 1");
  }
  // Forward + backward ~= 3x forward FLOPs (standard approximation).
  const double b = static_cast<double>(config.batch_size);
  const double flops = 3.0 * arch.flops_per_sample * b;
  const double layers = std::max<double>(1.0, static_cast<double>(arch.layers.size()));

  if (config.num_gpus == 0) {
    // CPU training: same roofline as inference, tripled compute and the
    // training working set additionally holds gradients + optimizer state.
    const int cores = config.cores == 0 ? profile_.max_cores : config.cores;
    if (cores < 1 || cores > profile_.max_cores) {
      return Status::invalid_argument("cores out of range for " +
                                      profile_.name);
    }
    ET_ASSIGN_OR_RETURN(double freq, resolve_freq(config.freq_ghz));
    const double peak = amdahl(cores, profile_.serial_fraction) *
                        profile_.flops_per_cycle_per_core * freq * 1e9;
    const double compute_time = flops / peak;
    const double weight_bytes = arch.weight_reads * 4.0 * 3.0;  // w, dw, vel
    const double act_bytes = arch.activation_elems * 4.0 * b * 4.0;
    const double working_set = (arch.activation_elems * 4.0 * b * 2.0) / layers +
                               weight_bytes / layers;
    const double spill = std::min(
        3.0, 1.0 + 0.6 * std::max(0.0, working_set / profile_.cache_bytes - 1.0));
    const double mem_time =
        (weight_bytes + act_bytes * spill) / (profile_.mem_bandwidth_gbs * 1e9);
    const double roofline = std::max(compute_time, mem_time);
    const double launches = std::max(layers, arch.kernel_launches);
    const double latency = profile_.dispatch_overhead_s +
                           profile_.per_layer_overhead_s * launches * 2.0 +
                           roofline;
    const double compute_util = roofline > 0 ? compute_time / roofline : 0.0;
    const double freq_ratio = freq / profile_.base_freq_ghz;
    const double core_power = cores * profile_.core_power_w * freq_ratio *
                              freq_ratio *
                              (0.4 + 0.6 * std::min(1.0, compute_util));
    const double power =
        profile_.idle_power_w + (roofline / latency) *
                                    (core_power + profile_.mem_power_w);
    CostEstimate est;
    est.latency_s = latency;
    est.power_w = power;
    est.energy_j = power * latency;
    est.throughput_sps = b / latency;
    est.peak_memory_bytes =
        arch.param_bytes() * 3.0 + arch.activation_elems * 4.0 * b;
    return est;
  }

  // GPU training.
  if (!profile_.has_gpu()) {
    return Status::failed_precondition(profile_.name + " has no GPUs");
  }
  if (config.num_gpus < 1 || config.num_gpus > profile_.num_gpus) {
    return Status::invalid_argument(
        "num_gpus must be in [1, " + std::to_string(profile_.num_gpus) + "]");
  }
  const double g = static_cast<double>(config.num_gpus);
  const double per_gpu_batch = b / g;
  // An undersaturated GPU delivers a fraction of peak: throughput scales with
  // per-GPU batch up to the saturation batch.
  const double util =
      std::min(1.0, per_gpu_batch / profile_.gpu_saturation_batch);
  const double effective = util * (0.55 + 0.45 * util);  // launch-bound tail
  const double peak = profile_.gpu_tflops * 1e12 * std::max(effective, 1e-3);
  const double compute_time = (flops / g) / peak;

  // GPU memory traffic per device: weights + grads + activations slice.
  // Very large per-GPU batches overflow the GPU's L2, turning activation
  // reuse into repeated HBM round-trips (the Fig 3a / Fig 4b effect).
  const double layers_gpu = std::max<double>(1.0, static_cast<double>(arch.layers.size()));
  const double gpu_working_set =
      arch.activation_elems * 4.0 * per_gpu_batch / layers_gpu;
  const double gpu_spill = std::min(
      8.0,
      1.0 + 0.08 * std::max(0.0, gpu_working_set / profile_.gpu_cache_bytes -
                                     1.0));
  const double mem_bytes =
      arch.weight_reads * 4.0 * 3.0 +
      arch.activation_elems * 4.0 * per_gpu_batch * 4.0 * gpu_spill;
  const double mem_time = mem_bytes / (profile_.gpu_mem_bandwidth_gbs * 1e9);

  // Gradient all-reduce (ring): 2*(g-1)/g * params each way, plus per-step
  // link setup / straggler latency that grows with the ring size.
  const double sync_time =
      config.num_gpus == 1
          ? 0.0
          : 2.0 * (g - 1.0) / g * arch.param_bytes() /
                    (profile_.interconnect_gbs * 1e9) +
                3.0e-3 * (g - 1.0);
  const double launch = profile_.gpu_launch_overhead_s *
                        std::max(layers, arch.kernel_launches) * 3.0;
  const double roofline = std::max(compute_time, mem_time);
  const double latency = roofline + sync_time + launch;

  // Allocated GPUs stay hot for the whole step (memory clocks, fans, HBM):
  // a large fraction of dynamic power burns even while syncing/launching.
  const double busy = roofline / latency;
  const double gpu_power =
      g * (profile_.gpu_idle_power_w +
           (profile_.gpu_power_w - profile_.gpu_idle_power_w) *
               (0.7 + 0.3 * busy * util));
  const double power = profile_.idle_power_w + 0.3 * profile_.max_cores *
                                                   profile_.core_power_w +
                       gpu_power;
  CostEstimate est;
  est.latency_s = latency;
  est.power_w = power;
  est.energy_j = power * latency;
  est.throughput_sps = b / latency;
  est.peak_memory_bytes =
      arch.param_bytes() * 3.0 + arch.activation_elems * 4.0 * per_gpu_batch;
  return est;
}

Result<CostEstimate> CostModel::train_epoch_cost(
    const ArchSpec& arch, const TrainConfig& config,
    std::int64_t dataset_size) const {
  if (dataset_size < 1) {
    return Status::invalid_argument("dataset_size must be >= 1");
  }
  ET_ASSIGN_OR_RETURN(CostEstimate step, train_step_cost(arch, config));
  const double steps = std::ceil(static_cast<double>(dataset_size) /
                                 static_cast<double>(config.batch_size));
  CostEstimate epoch;
  epoch.latency_s = step.latency_s * steps;
  epoch.energy_j = step.energy_j * steps;
  epoch.power_w = step.power_w;
  epoch.throughput_sps = step.throughput_sps;
  epoch.peak_memory_bytes = step.peak_memory_bytes;
  return epoch;
}

Result<std::vector<CostModel::LayerCost>> CostModel::profile_inference(
    const ArchSpec& arch, const InferenceConfig& config) const {
  ET_ASSIGN_OR_RETURN(CostEstimate total, inference_cost(arch, config));
  const double b = static_cast<double>(config.batch_size);

  // Distribute the roofline portion of the latency over layers by each
  // layer's own demand (compute time vs memory time, whichever binds it);
  // the fixed dispatch overhead is split per kernel launch.
  std::vector<LayerCost> costs;
  costs.reserve(arch.layers.size());
  double demand_sum = 0;
  ET_ASSIGN_OR_RETURN(double freq, resolve_freq(config.freq_ghz));
  const double peak_flops =
      amdahl(config.cores, effective_serial(profile_.serial_fraction, b)) *
      profile_.flops_per_cycle_per_core * freq * 1e9;
  for (const LayerInfo& layer : arch.layers) {
    LayerCost cost;
    cost.kind = layer.kind;
    cost.flops = layer.flops_forward * b;
    cost.bytes =
        layer.weight_reads * 4.0 + layer.activation_elems * 4.0 * b * 2.0;
    const double compute_t = cost.flops / peak_flops;
    const double mem_t = cost.bytes / (profile_.mem_bandwidth_gbs * 1e9);
    cost.compute_bound = compute_t >= mem_t;
    cost.latency_s = std::max(compute_t, mem_t);  // provisional demand
    demand_sum += cost.latency_s;
    costs.push_back(std::move(cost));
  }

  const double layers =
      std::max<double>(1.0, static_cast<double>(arch.layers.size()));
  const double launches = std::max(layers, arch.kernel_launches);
  const double overhead =
      profile_.dispatch_overhead_s + profile_.per_layer_overhead_s * launches;
  const double roofline = total.latency_s - overhead;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const double share = demand_sum > 0 ? costs[i].latency_s / demand_sum : 0;
    const double launch_share =
        arch.kernel_launches > 0
            ? arch.layers[i].kernel_launches / launches
            : 1.0 / layers;
    costs[i].latency_s =
        share * roofline +
        launch_share * profile_.per_layer_overhead_s * launches +
        profile_.dispatch_overhead_s / layers;
  }
  return costs;
}

DeviceProfile perturb_profile(const DeviceProfile& profile, std::uint64_t seed,
                              double sigma) {
  Rng rng(seed ^ stable_hash64(profile.name));
  DeviceProfile p = profile;
  auto jitter = [&](double v) {
    return v * std::exp(rng.gaussian(0.0, sigma));
  };
  p.flops_per_cycle_per_core = jitter(p.flops_per_cycle_per_core);
  p.mem_bandwidth_gbs = jitter(p.mem_bandwidth_gbs);
  p.cache_bytes = jitter(p.cache_bytes);
  p.idle_power_w = jitter(p.idle_power_w);
  p.core_power_w = jitter(p.core_power_w);
  p.mem_power_w = jitter(p.mem_power_w);
  p.dispatch_overhead_s = jitter(p.dispatch_overhead_s);
  p.per_layer_overhead_s = jitter(p.per_layer_overhead_s);
  p.serial_fraction = std::clamp(jitter(p.serial_fraction), 0.01, 0.5);
  if (p.has_gpu()) {
    p.gpu_tflops = jitter(p.gpu_tflops);
    p.gpu_mem_bandwidth_gbs = jitter(p.gpu_mem_bandwidth_gbs);
    p.gpu_power_w = jitter(p.gpu_power_w);
    p.interconnect_gbs = jitter(p.interconnect_gbs);
  }
  return p;
}

}  // namespace edgetune
