#include "device/profile.hpp"

namespace edgetune {

DeviceProfile device_armv7() {
  DeviceProfile p;
  p.name = "armv7";
  p.max_cores = 4;
  p.base_freq_ghz = 1.2;
  p.freq_levels_ghz = {0.6, 0.9, 1.2};
  p.flops_per_cycle_per_core = 4;  // NEON, 2-wide FMA
  p.mem_bandwidth_gbs = 3.2;
  p.ram_bytes = 4.0 * 1024 * 1024 * 1024;  // 4 GB board
  p.cache_bytes = 512.0 * 1024;
  p.serial_fraction = 0.08;
  p.idle_power_w = 1.2;
  p.core_power_w = 0.9;
  p.mem_power_w = 0.6;
  p.dispatch_overhead_s = 4e-4;
  p.per_layer_overhead_s = 3e-5;
  return p;
}

DeviceProfile device_rpi3b() {
  DeviceProfile p;
  p.name = "rpi3b";
  p.max_cores = 4;
  p.base_freq_ghz = 1.4;
  p.freq_levels_ghz = {0.6, 1.0, 1.4};
  p.flops_per_cycle_per_core = 4;
  p.mem_bandwidth_gbs = 2.5;  // LPDDR2, shared with GPU
  p.ram_bytes = 1.0 * 1024 * 1024 * 1024;  // 1 GB, the tight one
  p.cache_bytes = 512.0 * 1024;
  p.serial_fraction = 0.08;
  p.idle_power_w = 1.9;
  p.core_power_w = 1.1;
  p.mem_power_w = 0.7;
  p.dispatch_overhead_s = 4e-4;
  p.per_layer_overhead_s = 3e-5;
  return p;
}

DeviceProfile device_i7_7567u() {
  DeviceProfile p;
  p.name = "i7";
  p.max_cores = 4;  // 2 physical, 4 logical; the paper sweeps 1/2/4
  p.base_freq_ghz = 3.5;
  p.freq_levels_ghz = {1.2, 2.4, 3.5, 4.0};
  p.flops_per_cycle_per_core = 16;  // AVX2 FMA
  p.mem_bandwidth_gbs = 34.0;
  p.ram_bytes = 16.0 * 1024 * 1024 * 1024;
  p.cache_bytes = 4.0 * 1024 * 1024;
  p.serial_fraction = 0.05;
  p.idle_power_w = 5.0;
  p.core_power_w = 6.0;
  p.mem_power_w = 2.0;
  p.dispatch_overhead_s = 8e-5;
  p.per_layer_overhead_s = 6e-6;
  return p;
}

DeviceProfile device_titan_server() {
  DeviceProfile p;
  p.name = "titan";
  p.max_cores = 16;
  p.base_freq_ghz = 3.0;
  p.freq_levels_ghz = {1.5, 2.2, 3.0};
  p.flops_per_cycle_per_core = 16;
  p.mem_bandwidth_gbs = 80.0;
  p.ram_bytes = 256.0 * 1024 * 1024 * 1024;
  p.cache_bytes = 16.0 * 1024 * 1024;
  p.serial_fraction = 0.04;
  p.idle_power_w = 60.0;
  p.core_power_w = 8.0;
  p.mem_power_w = 6.0;
  p.dispatch_overhead_s = 5e-5;
  p.per_layer_overhead_s = 4e-6;
  p.num_gpus = 8;
  p.gpu_tflops = 16.3;  // Titan RTX fp32 peak
  p.gpu_mem_bandwidth_gbs = 672.0;
  p.gpu_power_w = 280.0;
  p.gpu_idle_power_w = 15.0;
  p.interconnect_gbs = 12.0;  // PCIe gen3 x16 effective
  p.gpu_launch_overhead_s = 5e-6;
  p.gpu_saturation_batch = 64.0;
  return p;
}

Result<DeviceProfile> device_by_name(const std::string& name) {
  if (name == "armv7") return device_armv7();
  if (name == "rpi3b") return device_rpi3b();
  if (name == "i7") return device_i7_7567u();
  if (name == "titan") return device_titan_server();
  return Status::not_found("unknown device profile: " + name);
}

std::vector<DeviceProfile> all_edge_devices() {
  return {device_armv7(), device_rpi3b(), device_i7_7567u()};
}

}  // namespace edgetune
