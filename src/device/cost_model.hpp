// Analytical device cost model: a roofline-style emulator that prices a
// full-scale ArchSpec on a DeviceProfile. This is the "simulate the edge
// devices in the tuning server" option the paper adopts (§2.1), made
// explicit. It reproduces the qualitative behaviours the paper measures:
//   - inference batch size: weight-traffic amortization -> throughput rises,
//     then cache spill -> saturation and decay (Fig 3b);
//   - CPU cores: roofline memory ceiling -> sublinear throughput, energy
//     rising with core count (Fig 5);
//   - multi-GPU training: undersaturated GPUs + all-reduce sync -> small
//     batches get *slower* with more GPUs, energy grows regardless (Fig 4).
#pragma once

#include "device/profile.hpp"
#include "nn/arch.hpp"

namespace edgetune {

/// Inference-side system parameters (what the Inference Tuning Server tunes).
struct InferenceConfig {
  std::int64_t batch_size = 1;
  int cores = 1;
  double freq_ghz = 0.0;  // 0 => device base frequency
};

/// Training-side system parameters.
struct TrainConfig {
  std::int64_t batch_size = 128;
  int num_gpus = 0;  // 0 => CPU training
  int cores = 0;     // 0 => all device cores
  double freq_ghz = 0.0;
};

struct CostEstimate {
  double latency_s = 0;        // one batch (inference) or one step (training)
  double energy_j = 0;         // for the same unit
  double power_w = 0;          // average power during the unit
  double throughput_sps = 0;   // samples per second
  double peak_memory_bytes = 0;  // resident weights + live activations
  [[nodiscard]] double energy_per_sample_j(std::int64_t batch) const {
    return batch > 0 ? energy_j / static_cast<double>(batch) : 0.0;
  }
};

class CostModel {
 public:
  explicit CostModel(DeviceProfile profile) : profile_(std::move(profile)) {}

  [[nodiscard]] const DeviceProfile& profile() const noexcept {
    return profile_;
  }

  /// Cost of one inference call on `batch_size` samples. Invalid configs
  /// (cores out of range, bad batch) are errors, not clamps.
  [[nodiscard]] Result<CostEstimate> inference_cost(
      const ArchSpec& arch, const InferenceConfig& config) const;

  /// Cost of one training step (forward + backward) on one mini-batch.
  [[nodiscard]] Result<CostEstimate> train_step_cost(
      const ArchSpec& arch, const TrainConfig& config) const;

  /// Cost of one epoch over `dataset_size` samples.
  [[nodiscard]] Result<CostEstimate> train_epoch_cost(
      const ArchSpec& arch, const TrainConfig& config,
      std::int64_t dataset_size) const;

  /// Per-layer inference latency attribution: the whole-model roofline time
  /// distributed over layers in proportion to each layer's own roofline
  /// demand, with per-layer dispatch overhead added. Sums to
  /// inference_cost().latency_s (tested).
  struct LayerCost {
    std::string kind;
    double latency_s = 0;
    double flops = 0;
    double bytes = 0;
    bool compute_bound = false;
  };
  [[nodiscard]] Result<std::vector<LayerCost>> profile_inference(
      const ArchSpec& arch, const InferenceConfig& config) const;

 private:
  [[nodiscard]] Result<double> resolve_freq(double requested) const;

  DeviceProfile profile_;
};

/// Multiplicatively perturbs the performance-relevant parameters of a
/// profile (lognormal, `sigma` relative spread). Used to build the
/// "physical" ground-truth twin the emulation-error study (Fig 15) measures
/// against: the emulator prices the *nominal* profile, reality is the twin.
DeviceProfile perturb_profile(const DeviceProfile& profile,
                              std::uint64_t seed, double sigma);

}  // namespace edgetune
