// Hardware performance-counter emulation (paper Fig 1). Reproduces the
// paper's observation: CPU-bound events (cpu.*, instructions, branches) are
// consistent between the forward phase of training and inference, while
// memory-bound events (cache.*, L1/LLC.*, branch-misses) diverge because
// training keeps weights + gradients + stored activations live.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/profile.hpp"
#include "nn/arch.hpp"

namespace edgetune {

enum class ExecutionPhase { kTrainForward, kInference };

const char* execution_phase_name(ExecutionPhase phase) noexcept;

/// Event names in the order the paper's Figure 1 lists them.
const std::vector<std::string>& perf_counter_events();

/// Emulated counter readings, in events per second of device time.
std::map<std::string, double> collect_perf_counters(const ArchSpec& arch,
                                                    const DeviceProfile& device,
                                                    ExecutionPhase phase,
                                                    std::int64_t batch_size);

/// Bins a rate into the paper's legend buckets:
/// ">1e8", "1e8-1e6", "1e6-1e4", "1e4-1e2", "<1e2".
std::string perf_rate_bin(double events_per_second);

}  // namespace edgetune
