#include "sim/batching_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

namespace edgetune {

namespace {

QueueingStats finalize_stats(std::vector<double>& responses,
                             double total_samples_batched,
                             std::int64_t engine_calls, double busy_s,
                             double elapsed_s) {
  QueueingStats stats;
  stats.completed_samples = static_cast<std::int64_t>(responses.size());
  if (responses.empty()) return stats;
  double sum = 0;
  for (double r : responses) sum += r;
  stats.mean_response_s = sum / static_cast<double>(responses.size());
  std::sort(responses.begin(), responses.end());
  const auto p95_idx = static_cast<std::size_t>(
      0.95 * static_cast<double>(responses.size() - 1));
  stats.p95_response_s = responses[p95_idx];
  stats.mean_batch_size =
      engine_calls > 0 ? total_samples_batched / static_cast<double>(engine_calls)
                       : 0.0;
  stats.throughput_sps =
      elapsed_s > 0 ? static_cast<double>(responses.size()) / elapsed_s : 0.0;
  stats.utilization = elapsed_s > 0 ? std::min(1.0, busy_s / elapsed_s) : 0.0;
  return stats;
}

}  // namespace

Result<QueueingStats> simulate_server_scenario(
    const ServerScenarioConfig& config, const InferenceLatencyFn& latency) {
  if (config.samples_per_query < 1 || config.split_batch < 1) {
    return Status::invalid_argument(
        "samples_per_query and split_batch must be >= 1");
  }
  if (config.query_period_s <= 0 || config.horizon_s <= 0) {
    return Status::invalid_argument("period and horizon must be positive");
  }

  std::vector<double> responses;
  double engine_free = 0.0;
  double busy = 0.0;
  double samples_batched = 0.0;
  std::int64_t engine_calls = 0;
  double last_completion = 0.0;

  for (double arrival = 0.0; arrival < config.horizon_s;
       arrival += config.query_period_s) {
    double t = std::max(arrival, engine_free);
    std::int64_t remaining = config.samples_per_query;
    while (remaining > 0) {
      const std::int64_t b = std::min(remaining, config.split_batch);
      const double lat = latency(b);
      t += lat;
      busy += lat;
      samples_batched += static_cast<double>(b);
      ++engine_calls;
      remaining -= b;
    }
    engine_free = t;
    last_completion = t;
    // Per-sample responses: every sample of the query completes with it.
    for (std::int64_t i = 0; i < config.samples_per_query; ++i) {
      responses.push_back(t - arrival);
    }
  }
  return finalize_stats(responses, samples_batched, engine_calls, busy,
                        std::max(last_completion, config.horizon_s));
}

Result<QueueingStats> simulate_multistream_scenario(
    const MultiStreamScenarioConfig& config,
    const InferenceLatencyFn& latency) {
  if (config.max_batch < 1) {
    return Status::invalid_argument("max_batch must be >= 1");
  }
  if (config.arrival_rate_per_s <= 0 || config.horizon_s <= 0 ||
      config.max_wait_s < 0) {
    return Status::invalid_argument(
        "arrival rate and horizon must be positive; max_wait >= 0");
  }

  // Pre-draw the Poisson arrival process.
  Rng rng(config.seed);
  std::vector<double> arrivals;
  for (double t = rng.exponential(config.arrival_rate_per_s);
       t < config.horizon_s; t += rng.exponential(config.arrival_rate_per_s)) {
    arrivals.push_back(t);
  }

  std::vector<double> responses;
  std::deque<double> pending;  // arrival times of queued samples
  std::size_t next = 0;
  double engine_free = 0.0;
  double busy = 0.0;
  double samples_batched = 0.0;
  std::int64_t engine_calls = 0;
  double last_completion = 0.0;
  const double inf = std::numeric_limits<double>::infinity();

  while (next < arrivals.size() || !pending.empty()) {
    if (pending.empty()) {
      pending.push_back(arrivals[next++]);
    }
    // Time at which the aggregation window would fill to max_batch.
    double t_full = inf;
    if (static_cast<std::int64_t>(pending.size()) >= config.max_batch) {
      t_full = pending.front();
    } else {
      const std::size_t needed =
          static_cast<std::size_t>(config.max_batch) - pending.size();
      if (next + needed - 1 < arrivals.size()) {
        t_full = arrivals[next + needed - 1];
      }
    }
    const double t_timeout = pending.front() + config.max_wait_s;
    const double t_start =
        std::max(engine_free, std::min(t_full, t_timeout));
    // Admit everything that arrived by the start instant.
    while (next < arrivals.size() && arrivals[next] <= t_start) {
      pending.push_back(arrivals[next++]);
    }
    const auto batch = std::min<std::int64_t>(
        static_cast<std::int64_t>(pending.size()), config.max_batch);
    const double lat = latency(batch);
    const double t_end = t_start + lat;
    busy += lat;
    samples_batched += static_cast<double>(batch);
    ++engine_calls;
    for (std::int64_t i = 0; i < batch; ++i) {
      responses.push_back(t_end - pending.front());
      pending.pop_front();
    }
    engine_free = t_end;
    last_completion = t_end;
  }
  return finalize_stats(responses, samples_batched, engine_calls, busy,
                        std::max(last_completion, config.horizon_s));
}

}  // namespace edgetune
