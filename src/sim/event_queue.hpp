// Minimal discrete-event simulation core: a time-ordered queue of callbacks
// driving a SimClock. Stable FIFO order for simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/sim_clock.hpp"

namespace edgetune {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `at` (>= now).
  void schedule_at(double at, Handler fn) {
    events_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after `delay` seconds of simulated time.
  void schedule_in(const SimClock& clock, double delay, Handler fn) {
    schedule_at(clock.now() + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `until` is passed. Advances the
  /// clock to each event's timestamp before invoking it.
  void run(SimClock& clock, double until) {
    while (!events_.empty() && events_.top().at <= until) {
      // Move, don't copy: top() returns a const&, but the element is popped
      // immediately after, so stealing its handler is safe and avoids one
      // std::function allocation per event on the simulator's hot path.
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      clock.advance_to(ev.at);
      ev.fn();
    }
    clock.advance_to(until);
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Handler fn;
    bool operator>(const Event& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace edgetune
