#include "sim/batching_tuner.hpp"

namespace edgetune {

Result<ServerBatchingRecommendation> recommend_server_batching(
    ServerScenarioConfig scenario, const InferenceLatencyFn& latency) {
  if (scenario.samples_per_query < 1) {
    return Status::invalid_argument("samples_per_query must be >= 1");
  }
  ServerBatchingRecommendation rec;
  bool first = true;
  for (std::int64_t split = 1;; split *= 2) {
    const std::int64_t candidate =
        std::min(split, scenario.samples_per_query);
    scenario.split_batch = candidate;
    ET_ASSIGN_OR_RETURN(QueueingStats stats,
                        simulate_server_scenario(scenario, latency));
    if (candidate == 1) rec.single_sample_stats = stats;
    if (first || stats.mean_response_s < rec.stats.mean_response_s) {
      rec.split_batch = candidate;
      rec.stats = stats;
      first = false;
    }
    if (candidate == scenario.samples_per_query) break;
  }
  return rec;
}

Result<StreamBatchingRecommendation> recommend_stream_batching(
    MultiStreamScenarioConfig scenario, const InferenceLatencyFn& latency,
    std::int64_t max_candidate) {
  if (max_candidate < 1) {
    return Status::invalid_argument("max_candidate must be >= 1");
  }
  StreamBatchingRecommendation rec;
  bool first = true;
  for (std::int64_t batch = 1; batch <= max_candidate; batch *= 2) {
    scenario.max_batch = batch;
    ET_ASSIGN_OR_RETURN(QueueingStats stats,
                        simulate_multistream_scenario(scenario, latency));
    if (batch == 1) rec.single_sample_stats = stats;
    if (first || stats.mean_response_s < rec.stats.mean_response_s) {
      rec.max_batch = batch;
      rec.stats = stats;
      first = false;
    }
  }
  return rec;
}

}  // namespace edgetune
