// Queueing simulation of the two multi-sample inference scenarios of the
// paper's Fig 8, driving an inference-latency function taken from the device
// cost model:
//   Server:       queries of N samples arrive at a fixed frequency; the
//                 Batching component splits each query into sub-batches.
//   Multi-stream: single-sample queries arrive as a Poisson process; the
//                 Batching component aggregates them up to a batch size
//                 (with a wait timeout) before invoking the engine.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace edgetune {

/// Latency of one inference call on `batch` samples (simulated seconds).
using InferenceLatencyFn = std::function<double(std::int64_t batch)>;

struct QueueingStats {
  double mean_response_s = 0;   // arrival -> completion, averaged
  double p95_response_s = 0;
  double mean_batch_size = 0;   // average samples per engine invocation
  double throughput_sps = 0;    // completed samples / horizon
  double utilization = 0;       // engine busy fraction
  std::int64_t completed_samples = 0;
};

struct ServerScenarioConfig {
  std::int64_t samples_per_query = 64;  // N
  double query_period_s = 0.5;          // fixed arrival frequency
  std::int64_t split_batch = 16;        // sub-batch size to tune
  double horizon_s = 60.0;
};

/// Fixed-frequency server scenario. Queries are split into `split_batch`
/// sub-batches processed FIFO on one engine; a query completes when its last
/// sub-batch finishes.
Result<QueueingStats> simulate_server_scenario(
    const ServerScenarioConfig& config, const InferenceLatencyFn& latency);

struct MultiStreamScenarioConfig {
  double arrival_rate_per_s = 50.0;  // Poisson lambda
  std::int64_t max_batch = 8;        // aggregation limit to tune
  double max_wait_s = 0.05;          // aggregation timeout
  double horizon_s = 60.0;
  std::uint64_t seed = 7;
};

/// Poisson multi-stream scenario with aggregate-up-to-B-or-timeout batching.
Result<QueueingStats> simulate_multistream_scenario(
    const MultiStreamScenarioConfig& config, const InferenceLatencyFn& latency);

}  // namespace edgetune
