// The Batching subcomponent (§3.4): given a deployment scenario and the
// device's inference-latency profile, recommends the batching knob — how to
// split fixed-frequency N-sample queries, or how far to aggregate Poisson
// single-sample arrivals — by sweeping the queueing simulator.
#pragma once

#include "sim/batching_sim.hpp"

namespace edgetune {

struct ServerBatchingRecommendation {
  std::int64_t split_batch = 1;
  QueueingStats stats;                      // at the recommended split
  QueueingStats single_sample_stats;        // split = 1 reference
  /// mean-response improvement over single-sample service (>= 1 is better).
  [[nodiscard]] double speedup() const noexcept {
    return stats.mean_response_s > 0
               ? single_sample_stats.mean_response_s / stats.mean_response_s
               : 0.0;
  }
};

/// Sweeps power-of-two splits 1..samples_per_query (plus the full query) and
/// returns the split with the lowest mean response time.
Result<ServerBatchingRecommendation> recommend_server_batching(
    ServerScenarioConfig scenario, const InferenceLatencyFn& latency);

struct StreamBatchingRecommendation {
  std::int64_t max_batch = 1;
  QueueingStats stats;
  QueueingStats single_sample_stats;
  [[nodiscard]] double speedup() const noexcept {
    return stats.mean_response_s > 0
               ? single_sample_stats.mean_response_s / stats.mean_response_s
               : 0.0;
  }
};

/// Sweeps power-of-two aggregation limits 1..max_candidate and returns the
/// limit with the lowest mean response time.
Result<StreamBatchingRecommendation> recommend_stream_batching(
    MultiStreamScenarioConfig scenario, const InferenceLatencyFn& latency,
    std::int64_t max_candidate = 64);

}  // namespace edgetune
