#include "nn/pool.hpp"

#include <cassert>

namespace edgetune {

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  PoolResult result = maxpool2d(input, kernel_, stride_);
  cached_argmax_ = std::move(result.argmax);
  return std::move(result.output);
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  return maxpool2d_backward(grad_output, cached_argmax_, cached_input_shape_);
}

LayerInfo MaxPool2D::describe(const Shape& input_shape) const {
  const std::int64_t oh = (input_shape.at(2) - kernel_) / stride_ + 1;
  const std::int64_t ow = (input_shape.at(3) - kernel_) / stride_ + 1;
  LayerInfo info;
  info.kind = "maxpool2d";
  info.output_shape = {input_shape.at(0), input_shape.at(1), oh, ow};
  info.flops_forward = static_cast<double>(shape_numel(info.output_shape)) *
                       static_cast<double>(kernel_ * kernel_);
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

Tensor MaxPool1D::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  PoolResult result = maxpool1d(input, kernel_, stride_);
  cached_argmax_ = std::move(result.argmax);
  return std::move(result.output);
}

Tensor MaxPool1D::backward(const Tensor& grad_output) {
  return maxpool1d_backward(grad_output, cached_argmax_, cached_input_shape_);
}

LayerInfo MaxPool1D::describe(const Shape& input_shape) const {
  const std::int64_t ol = (input_shape.at(2) - kernel_) / stride_ + 1;
  LayerInfo info;
  info.kind = "maxpool1d";
  info.output_shape = {input_shape.at(0), input_shape.at(1), ol};
  info.flops_forward = static_cast<double>(shape_numel(info.output_shape)) *
                       static_cast<double>(kernel_);
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

Tensor AvgPool2D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 4);
  cached_input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0), ch = input.dim(1),
                     h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  Tensor out({batch, ch, oh, ow});
  const float* src = input.data();
  float* dst = out.data();
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  std::int64_t idx = 0;
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    const float* plane = src + nc * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0;
        for (std::int64_t ky = 0; ky < kernel_; ++ky) {
          for (std::int64_t kx = 0; kx < kernel_; ++kx) {
            acc += plane[(oy * stride_ + ky) * w + ox * stride_ + kx];
          }
        }
        dst[idx++] = acc * inv;
      }
    }
  }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  Tensor grad_in(cached_input_shape_);
  const std::int64_t batch = cached_input_shape_[0],
                     ch = cached_input_shape_[1], h = cached_input_shape_[2],
                     w = cached_input_shape_[3];
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* g = grad_output.data();
  float* dst = grad_in.data();
  std::int64_t idx = 0;
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    float* plane = dst + nc * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float v = g[idx++] * inv;
        for (std::int64_t ky = 0; ky < kernel_; ++ky) {
          for (std::int64_t kx = 0; kx < kernel_; ++kx) {
            plane[(oy * stride_ + ky) * w + ox * stride_ + kx] += v;
          }
        }
      }
    }
  }
  return grad_in;
}

LayerInfo AvgPool2D::describe(const Shape& input_shape) const {
  const std::int64_t oh = (input_shape.at(2) - kernel_) / stride_ + 1;
  const std::int64_t ow = (input_shape.at(3) - kernel_) / stride_ + 1;
  LayerInfo info;
  info.kind = "avgpool2d";
  info.output_shape = {input_shape.at(0), input_shape.at(1), oh, ow};
  info.flops_forward = static_cast<double>(shape_numel(info.output_shape)) *
                       static_cast<double>(kernel_ * kernel_);
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  return global_avg_pool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  return global_avg_pool_backward(grad_output, cached_input_shape_);
}

LayerInfo GlobalAvgPool::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "gap";
  info.output_shape = {input_shape.at(0), input_shape.at(1)};
  info.flops_forward = static_cast<double>(shape_numel(input_shape));
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

Tensor GlobalAvgPool1D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 3);
  cached_input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0), ch = input.dim(1),
                     len = input.dim(2);
  Tensor out({batch, ch});
  const float* src = input.data();
  float* dst = out.data();
  const float inv = 1.0f / static_cast<float>(len);
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    float acc = 0.0f;
    const float* chan = src + nc * len;
    for (std::int64_t i = 0; i < len; ++i) acc += chan[i];
    dst[nc] = acc * inv;
  }
  return out;
}

Tensor GlobalAvgPool1D::backward(const Tensor& grad_output) {
  Tensor grad_in(cached_input_shape_);
  const std::int64_t batch = cached_input_shape_[0],
                     ch = cached_input_shape_[1],
                     len = cached_input_shape_[2];
  const float inv = 1.0f / static_cast<float>(len);
  const float* g = grad_output.data();
  float* dst = grad_in.data();
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    const float v = g[nc] * inv;
    float* chan = dst + nc * len;
    for (std::int64_t i = 0; i < len; ++i) chan[i] = v;
  }
  return grad_in;
}

LayerInfo GlobalAvgPool1D::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "gap1d";
  info.output_shape = {input_shape.at(0), input_shape.at(1)};
  info.flops_forward = static_cast<double>(shape_numel(input_shape));
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

}  // namespace edgetune
