// Convolution layers, lowered to GEMM via im2col. Bias add and the
// [rows, out_c] -> [N, out_c, spatial] transpose are fused into the GEMM
// epilogue; im2col columns, gradient columns and GEMM scratch live in a
// per-layer workspace arena so steady-state steps do not heap-allocate.
#pragma once

#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace edgetune {

/// 2-d convolution on [N, C, H, W] inputs.
class Conv2D : public Layer {
 public:
  Conv2D(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  [[nodiscard]] std::int64_t out_channels() const noexcept {
    return out_channels_;
  }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_;  // [out_c, in_c * k * k]
  Tensor bias_;    // [out_c]
  Tensor weight_grad_, bias_grad_;
  Workspace ws_;  // im2col columns of last forward + backward scratch
  Conv2dGeometry cached_geo_;
  std::int64_t cached_batch_ = 0;
};

/// 1-d convolution on [N, C, L] inputs (audio workloads, M5).
class Conv1D : public Layer {
 public:
  Conv1D(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "conv1d"; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_;  // [out_c, in_c * k]
  Tensor bias_;
  Tensor weight_grad_, bias_grad_;
  Workspace ws_;
  Conv1dGeometry cached_geo_;
  std::int64_t cached_batch_ = 0;
};

}  // namespace edgetune
