// Embedding and Elman RNN for the NLP workload. The RNN exposes the paper's
// `stride` model hyperparameter (§5.1): with stride s it consumes every s-th
// token, trading accuracy for compute.
#pragma once

#include "nn/layer.hpp"
#include "tensor/workspace.hpp"

namespace edgetune {

/// Token ids (stored as floats in a [N, L] tensor) -> dense vectors [N, L, E].
class Embedding : public Layer {
 public:
  Embedding(std::int64_t vocab_size, std::int64_t embed_dim, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "embedding"; }

 private:
  std::int64_t vocab_, embed_;
  Tensor weight_;  // [vocab, embed]
  Tensor weight_grad_;
  Tensor cached_ids_;  // [N, L]
};

/// Elman RNN over [N, L, E]; returns the MEAN of the hidden states [N, H]
/// (mean-pool readout avoids the vanishing-gradient cliff of a last-state
/// readout on long sequences). `stride` skips tokens: steps are
/// t = 0, stride, 2*stride, ...
class RNN : public Layer {
 public:
  RNN(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t stride,
      Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "rnn"; }

  [[nodiscard]] std::int64_t stride() const noexcept { return stride_; }

 private:
  std::int64_t input_dim_, hidden_dim_, stride_;
  Tensor w_ih_;  // [H, E]
  Tensor w_hh_;  // [H, H]
  Tensor bias_;  // [H]
  Tensor w_ih_grad_, w_hh_grad_, bias_grad_;

  // BPTT caches. The vectors (and the tensors inside them) are reused across
  // steps with unchanged shapes, so steady-state training does not allocate.
  std::vector<Tensor> cached_inputs_;   // x_t for each processed step [N, E]
  std::vector<Tensor> cached_hiddens_;  // h_t (post-tanh), h_{-1} first
  std::int64_t cached_len_ = 0;         // true input sequence length
  Workspace ws_;                        // recurrent-GEMM and BPTT scratch
};

}  // namespace edgetune
