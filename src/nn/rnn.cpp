#include "nn/rnn.hpp"

#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace edgetune {

Embedding::Embedding(std::int64_t vocab_size, std::int64_t embed_dim,
                     Rng& rng)
    : vocab_(vocab_size),
      embed_(embed_dim),
      weight_(Tensor::randn({vocab_size, embed_dim}, rng, 0.0f,
                            1.0f / std::sqrt(static_cast<float>(embed_dim)))),
      weight_grad_(Tensor::zeros({vocab_size, embed_dim})) {}

Tensor Embedding::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 2);
  cached_ids_ = input;
  const std::int64_t batch = input.dim(0), len = input.dim(1);
  Tensor out({batch, len, embed_});
  const float* ids = input.data();
  const float* w = weight_.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < batch * len; ++i) {
    auto id = static_cast<std::int64_t>(ids[i]);
    assert(id >= 0 && id < vocab_);
    const float* row = w + id * embed_;
    float* o = dst + i * embed_;
    for (std::int64_t e = 0; e < embed_; ++e) o[e] = row[e];
  }
  return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  const std::int64_t batch = cached_ids_.dim(0), len = cached_ids_.dim(1);
  const float* ids = cached_ids_.data();
  const float* g = grad_output.data();
  float* wg = weight_grad_.data();
  for (std::int64_t i = 0; i < batch * len; ++i) {
    const auto id = static_cast<std::int64_t>(ids[i]);
    float* row = wg + id * embed_;
    const float* gi = g + i * embed_;
    for (std::int64_t e = 0; e < embed_; ++e) row[e] += gi[e];
  }
  // Token ids are not differentiable; gradient w.r.t. input is zero-shaped.
  return Tensor(cached_ids_.shape());
}

std::vector<ParamRef> Embedding::params() {
  return {{&weight_, &weight_grad_, "embedding.weight"}};
}

LayerInfo Embedding::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0), len = input_shape.at(1);
  LayerInfo info;
  info.kind = "embedding";
  info.output_shape = {batch, len, embed_};
  info.flops_forward = static_cast<double>(batch * len * embed_);  // gather
  info.param_count = static_cast<double>(vocab_ * embed_);
  info.activation_elems = static_cast<double>(batch * len * embed_);
  info.weight_reads = static_cast<double>(batch * len * embed_);
  return info;
}

RNN::RNN(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t stride,
         Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      stride_(stride < 1 ? 1 : stride),
      w_ih_(Tensor::randn({hidden_dim, input_dim}, rng, 0.0f,
                          std::sqrt(1.0f / static_cast<float>(input_dim)))),
      w_hh_(Tensor::randn({hidden_dim, hidden_dim}, rng, 0.0f,
                          std::sqrt(1.0f / static_cast<float>(hidden_dim)))),
      bias_(Tensor::zeros({hidden_dim})),
      w_ih_grad_(Tensor::zeros({hidden_dim, input_dim})),
      w_hh_grad_(Tensor::zeros({hidden_dim, hidden_dim})),
      bias_grad_(Tensor::zeros({hidden_dim})) {}

Tensor RNN::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 3 && input.dim(2) == input_dim_);
  const std::int64_t batch = input.dim(0), len = input.dim(1);
  cached_len_ = len;
  const std::int64_t steps = (len + stride_ - 1) / stride_;

  // Reuse the BPTT cache tensors in place when shapes are unchanged.
  const Shape x_shape{batch, input_dim_};
  const Shape h_shape{batch, hidden_dim_};
  cached_inputs_.resize(static_cast<std::size_t>(steps));
  for (Tensor& x : cached_inputs_) {
    if (x.shape() != x_shape) x = Tensor(x_shape);
  }
  cached_hiddens_.resize(static_cast<std::size_t>(steps) + 1);
  for (Tensor& h : cached_hiddens_) {
    if (h.shape() != h_shape) h = Tensor(h_shape);
  }
  cached_hiddens_[0].fill(0.0f);  // h_{-1}

  const float* src = input.data();
  const float* pb = bias_.data();
  for (std::int64_t s = 0; s < steps; ++s) {
    const std::int64_t t = s * stride_;
    // Slice x_t = input[:, t, :].
    Tensor& x = cached_inputs_[static_cast<std::size_t>(s)];
    float* px = x.data();
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* row = src + (n * len + t) * input_dim_;
      for (std::int64_t e = 0; e < input_dim_; ++e) {
        px[n * input_dim_ + e] = row[e];
      }
    }

    const Tensor& h_prev = cached_hiddens_[static_cast<std::size_t>(s)];
    Tensor& h_next = cached_hiddens_[static_cast<std::size_t>(s) + 1];
    // pre = x W_ih^T lands in h_next; rec = h_prev W_hh^T in scratch.
    gemm(GemmLayout::kNT, batch, hidden_dim_, input_dim_, x.data(),
         w_ih_.data(), h_next.data());
    float* rec = ws_.get(0, batch * hidden_dim_);
    gemm(GemmLayout::kNT, batch, hidden_dim_, hidden_dim_, h_prev.data(),
         w_hh_.data(), rec);
    float* pp = h_next.data();
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t j = 0; j < hidden_dim_; ++j) {
        const std::int64_t i = n * hidden_dim_ + j;
        pp[i] = std::tanh(pp[i] + rec[i] + pb[j]);
      }
    }
  }
  // Mean-pool readout over the processed steps.
  Tensor out = Tensor::zeros({batch, hidden_dim_});
  for (std::int64_t s = 1; s <= steps; ++s) {
    out.add_inplace(cached_hiddens_[static_cast<std::size_t>(s)]);
  }
  out.scale_inplace(1.0f / static_cast<float>(std::max<std::int64_t>(1, steps)));
  return out;
}

Tensor RNN::backward(const Tensor& grad_output) {
  const std::int64_t steps =
      static_cast<std::int64_t>(cached_inputs_.size());
  const std::int64_t batch = grad_output.dim(0);
  const std::int64_t len = cached_len_;
  const std::int64_t hb = batch * hidden_dim_;

  // dL/dh_t receives a share of the mean-pool gradient at every step plus
  // the recurrent flow from step t+1. All step-local buffers live in the
  // workspace arena (slot 0 is the forward-pass scratch).
  float* mean_share = ws_.get(1, hb);
  {
    const float* g = grad_output.data();
    const float inv =
        1.0f / static_cast<float>(std::max<std::int64_t>(1, steps));
    for (std::int64_t i = 0; i < hb; ++i) mean_share[i] = g[i] * inv;
  }
  float* grad_h = ws_.get(2, hb);
  for (std::int64_t i = 0; i < hb; ++i) grad_h[i] = mean_share[i];
  float* dz = ws_.get(3, hb);
  float* dw = ws_.get(4, hidden_dim_ * std::max(input_dim_, hidden_dim_));
  float* dx = ws_.get(5, batch * input_dim_);
  Tensor grad_input({batch, len, input_dim_});
  float* gi = grad_input.data();

  for (std::int64_t s = steps - 1; s >= 0; --s) {
    const Tensor& h_t = cached_hiddens_[static_cast<std::size_t>(s + 1)];
    const Tensor& h_prev = cached_hiddens_[static_cast<std::size_t>(s)];
    const Tensor& x_t = cached_inputs_[static_cast<std::size_t>(s)];

    // Through tanh: dz = dh * (1 - h^2)
    {
      const float* ph = h_t.data();
      for (std::int64_t i = 0; i < hb; ++i) {
        dz[i] = grad_h[i] * (1.0f - ph[i] * ph[i]);
      }
    }

    // Weight gradients land in scratch, then separate loops accumulate —
    // the historical add_inplace float-operation order.
    gemm(GemmLayout::kTN, hidden_dim_, input_dim_, batch, dz, x_t.data(), dw);
    {
      float* wg = w_ih_grad_.data();
      for (std::int64_t i = 0; i < hidden_dim_ * input_dim_; ++i) {
        wg[i] += dw[i];
      }
    }
    gemm(GemmLayout::kTN, hidden_dim_, hidden_dim_, batch, dz, h_prev.data(),
         dw);
    {
      float* wg = w_hh_grad_.data();
      for (std::int64_t i = 0; i < hidden_dim_ * hidden_dim_; ++i) {
        wg[i] += dw[i];
      }
    }
    {
      float* pb = bias_grad_.data();
      for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t j = 0; j < hidden_dim_; ++j) {
          pb[j] += dz[n * hidden_dim_ + j];
        }
      }
    }

    // dL/dx_t = dz * W_ih ; scatter into grad_input at t = s*stride.
    gemm(GemmLayout::kNN, batch, input_dim_, hidden_dim_, dz, w_ih_.data(),
         dx);
    const std::int64_t t = s * stride_;
    for (std::int64_t n = 0; n < batch; ++n) {
      float* row = gi + (n * len + t) * input_dim_;
      for (std::int64_t e = 0; e < input_dim_; ++e) {
        row[e] = dx[n * input_dim_ + e];
      }
    }

    // dL/dh_{t-1} = dz * W_hh + its share of the mean-pool gradient.
    gemm(GemmLayout::kNN, batch, hidden_dim_, hidden_dim_, dz, w_hh_.data(),
         grad_h);
    if (s > 0) {
      for (std::int64_t i = 0; i < hb; ++i) grad_h[i] += mean_share[i];
    }
  }
  return grad_input;
}

std::vector<ParamRef> RNN::params() {
  return {{&w_ih_, &w_ih_grad_, "rnn.w_ih"},
          {&w_hh_, &w_hh_grad_, "rnn.w_hh"},
          {&bias_, &bias_grad_, "rnn.bias"}};
}

LayerInfo RNN::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0), len = input_shape.at(1);
  const std::int64_t steps = (len + stride_ - 1) / stride_;
  LayerInfo info;
  info.kind = "rnn";
  info.output_shape = {batch, hidden_dim_};
  info.flops_forward =
      2.0 * static_cast<double>(batch * steps) *
      (static_cast<double>(input_dim_ * hidden_dim_) +
       static_cast<double>(hidden_dim_ * hidden_dim_));
  info.param_count = static_cast<double>(
      input_dim_ * hidden_dim_ + hidden_dim_ * hidden_dim_ + hidden_dim_);
  info.activation_elems = static_cast<double>(batch * steps * hidden_dim_);
  info.weight_reads = info.param_count * static_cast<double>(steps);
  info.kernel_launches = 2.0 * static_cast<double>(steps);
  return info;
}

}  // namespace edgetune
