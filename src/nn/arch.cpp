#include "nn/arch.hpp"

namespace edgetune {

LayerInfo info_conv2d(const Shape& input, std::int64_t out_channels,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t padding, bool bias) {
  const std::int64_t batch = input.at(0), in_c = input.at(1), h = input.at(2),
                     w = input.at(3);
  const std::int64_t oh = (h + 2 * padding - kernel) / stride + 1;
  const std::int64_t ow = (w + 2 * padding - kernel) / stride + 1;
  LayerInfo info;
  info.kind = "conv2d";
  info.output_shape = {batch, out_channels, oh, ow};
  const double patch = static_cast<double>(in_c * kernel * kernel);
  info.flops_forward = 2.0 * static_cast<double>(batch * oh * ow) * patch *
                       static_cast<double>(out_channels);
  info.param_count = patch * static_cast<double>(out_channels) +
                     (bias ? static_cast<double>(out_channels) : 0.0);
  info.activation_elems =
      static_cast<double>(batch * out_channels * oh * ow);
  info.weight_reads = info.param_count;
  return info;
}

LayerInfo info_conv1d(const Shape& input, std::int64_t out_channels,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t padding, bool bias) {
  const std::int64_t batch = input.at(0), in_c = input.at(1),
                     len = input.at(2);
  const std::int64_t ol = (len + 2 * padding - kernel) / stride + 1;
  LayerInfo info;
  info.kind = "conv1d";
  info.output_shape = {batch, out_channels, ol};
  const double patch = static_cast<double>(in_c * kernel);
  info.flops_forward = 2.0 * static_cast<double>(batch * ol) * patch *
                       static_cast<double>(out_channels);
  info.param_count = patch * static_cast<double>(out_channels) +
                     (bias ? static_cast<double>(out_channels) : 0.0);
  info.activation_elems = static_cast<double>(batch * out_channels * ol);
  info.weight_reads = info.param_count;
  return info;
}

LayerInfo info_linear(const Shape& input, std::int64_t out_features) {
  const std::int64_t batch = input.at(0), in = input.at(1);
  LayerInfo info;
  info.kind = "linear";
  info.output_shape = {batch, out_features};
  info.flops_forward = 2.0 * static_cast<double>(batch * in * out_features);
  info.param_count = static_cast<double>(in * out_features + out_features);
  info.activation_elems = static_cast<double>(batch * out_features);
  info.weight_reads = info.param_count;
  return info;
}

LayerInfo info_batchnorm(const Shape& input) {
  LayerInfo info;
  info.kind = "batchnorm";
  info.output_shape = input;
  info.flops_forward = 4.0 * static_cast<double>(shape_numel(input));
  info.param_count = static_cast<double>(2 * input.at(1));
  info.activation_elems = static_cast<double>(shape_numel(input));
  info.weight_reads = info.param_count;
  return info;
}

LayerInfo info_relu(const Shape& input) {
  LayerInfo info;
  info.kind = "relu";
  info.output_shape = input;
  info.flops_forward = static_cast<double>(shape_numel(input));
  info.activation_elems = static_cast<double>(shape_numel(input));
  return info;
}

LayerInfo info_maxpool2d(const Shape& input, std::int64_t kernel,
                         std::int64_t stride) {
  const std::int64_t oh = (input.at(2) - kernel) / stride + 1;
  const std::int64_t ow = (input.at(3) - kernel) / stride + 1;
  LayerInfo info;
  info.kind = "maxpool2d";
  info.output_shape = {input.at(0), input.at(1), oh, ow};
  info.flops_forward = static_cast<double>(shape_numel(info.output_shape)) *
                       static_cast<double>(kernel * kernel);
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

LayerInfo info_maxpool1d(const Shape& input, std::int64_t kernel,
                         std::int64_t stride) {
  const std::int64_t ol = (input.at(2) - kernel) / stride + 1;
  LayerInfo info;
  info.kind = "maxpool1d";
  info.output_shape = {input.at(0), input.at(1), ol};
  info.flops_forward = static_cast<double>(shape_numel(info.output_shape)) *
                       static_cast<double>(kernel);
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

LayerInfo info_gap(const Shape& input) {
  LayerInfo info;
  info.kind = "gap";
  info.output_shape = {input.at(0), input.at(1)};
  info.flops_forward = static_cast<double>(shape_numel(input));
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

LayerInfo info_gap1d(const Shape& input) {
  LayerInfo info;
  info.kind = "gap1d";
  info.output_shape = {input.at(0), input.at(1)};
  info.flops_forward = static_cast<double>(shape_numel(input));
  info.activation_elems = static_cast<double>(shape_numel(info.output_shape));
  return info;
}

LayerInfo info_flatten(const Shape& input) {
  LayerInfo info;
  info.kind = "flatten";
  info.output_shape = {input.at(0), shape_numel(input) / input.at(0)};
  return info;
}

LayerInfo info_dropout(const Shape& input) {
  LayerInfo info;
  info.kind = "dropout";
  info.output_shape = input;
  info.flops_forward = static_cast<double>(shape_numel(input));
  info.activation_elems = static_cast<double>(shape_numel(input));
  return info;
}

LayerInfo info_embedding(const Shape& input, std::int64_t vocab,
                         std::int64_t embed) {
  const std::int64_t batch = input.at(0), len = input.at(1);
  LayerInfo info;
  info.kind = "embedding";
  info.output_shape = {batch, len, embed};
  info.flops_forward = static_cast<double>(batch * len * embed);
  info.param_count = static_cast<double>(vocab * embed);
  info.activation_elems = static_cast<double>(batch * len * embed);
  info.weight_reads = static_cast<double>(batch * len * embed);
  return info;
}

LayerInfo info_rnn(const Shape& input, std::int64_t hidden,
                   std::int64_t stride) {
  const std::int64_t batch = input.at(0), len = input.at(1),
                     embed = input.at(2);
  const std::int64_t s = stride < 1 ? 1 : stride;
  const std::int64_t steps = (len + s - 1) / s;
  LayerInfo info;
  info.kind = "rnn";
  info.output_shape = {batch, hidden};
  info.flops_forward = 2.0 * static_cast<double>(batch * steps) *
                       (static_cast<double>(embed * hidden) +
                        static_cast<double>(hidden * hidden));
  info.param_count =
      static_cast<double>(embed * hidden + hidden * hidden + hidden);
  info.activation_elems = static_cast<double>(batch * steps * hidden);
  info.weight_reads = info.param_count * static_cast<double>(steps);
  info.kernel_launches = 2.0 * static_cast<double>(steps);
  return info;
}

}  // namespace edgetune
