#include "nn/layers_basic.hpp"

#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace edgetune {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng, 0.0f,
                            std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_(Tensor::zeros({out_features})),
      weight_grad_(Tensor::zeros({out_features, in_features})),
      bias_grad_(Tensor::zeros({out_features})) {}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 2 && input.dim(1) == in_);
  cached_input_ = input;
  const std::int64_t batch = input.dim(0);
  // Bias add fused into the GEMM store epilogue.
  Tensor out({batch, out_});
  GemmEpilogue epi;
  epi.bias = bias_.data();
  gemm(GemmLayout::kNT, batch, out_, in_, input.data(), weight_.data(),
       out.data(), /*accumulate=*/false, &epi);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  // dW += g^T x ; db += sum_n g ; dx = g W
  const std::int64_t batch = grad_output.dim(0);
  // dW lands in reusable scratch, then a separate loop accumulates into the
  // gradient — preserving the historical add_inplace float-operation order
  // with no per-step allocation.
  float* dw = ws_.get(0, out_ * in_);
  gemm(GemmLayout::kTN, out_, in_, batch, grad_output.data(),
       cached_input_.data(), dw);
  float* wg = weight_grad_.data();
  for (std::int64_t i = 0; i < out_ * in_; ++i) wg[i] += dw[i];
  const float* g = grad_output.data();
  float* db = bias_grad_.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t j = 0; j < out_; ++j) db[j] += g[n * out_ + j];
  }
  return matmul(grad_output, weight_);  // [N, in]
}

std::vector<ParamRef> Linear::params() {
  return {{&weight_, &weight_grad_, "linear.weight"},
          {&bias_, &bias_grad_, "linear.bias"}};
}

LayerInfo Linear::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0);
  LayerInfo info;
  info.kind = "linear";
  info.output_shape = {batch, out_};
  info.flops_forward =
      2.0 * static_cast<double>(batch) * static_cast<double>(in_) *
      static_cast<double>(out_);
  info.param_count = static_cast<double>(in_ * out_ + out_);
  info.activation_elems = static_cast<double>(batch * out_);
  info.weight_reads = info.param_count;
  return info;
}

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (auto& v : out.vec()) v = v > 0.0f ? v : 0.0f;
  cached_output_ = out;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const float* o = cached_output_.data();
  float* g = grad.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (o[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad;
}

LayerInfo ReLU::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "relu";
  info.output_shape = input_shape;
  info.flops_forward = static_cast<double>(shape_numel(input_shape));
  info.activation_elems = info.flops_forward;
  return info;
}

Tensor LeakyReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.vec()) v = v > 0.0f ? v : alpha_ * v;
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const float* x = cached_input_.data();
  float* g = grad.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0f) g[i] *= alpha_;
  }
  return grad;
}

LayerInfo LeakyReLU::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "leaky_relu";
  info.output_shape = input_shape;
  info.flops_forward = 2.0 * static_cast<double>(shape_numel(input_shape));
  info.activation_elems = static_cast<double>(shape_numel(input_shape));
  return info;
}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (auto& v : out.vec()) v = 1.0f / (1.0f + std::exp(-v));
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const float* o = cached_output_.data();
  float* g = grad.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) g[i] *= o[i] * (1.0f - o[i]);
  return grad;
}

LayerInfo Sigmoid::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "sigmoid";
  info.output_shape = input_shape;
  info.flops_forward = 4.0 * static_cast<double>(shape_numel(input_shape));
  info.activation_elems = static_cast<double>(shape_numel(input_shape));
  return info;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (auto& v : out.vec()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const float* o = cached_output_.data();
  float* g = grad.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) g[i] *= 1.0f - o[i] * o[i];
  return grad;
}

LayerInfo Tanh::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "tanh";
  info.output_shape = input_shape;
  info.flops_forward = 4.0 * static_cast<double>(shape_numel(input_shape));
  info.activation_elems = static_cast<double>(shape_numel(input_shape));
  return info;
}

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.split()) {
  assert(rate >= 0.0 && rate < 1.0);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || rate_ == 0.0) {
    mask_ = Tensor();
    return input;
  }
  const float keep = static_cast<float>(1.0 - rate_);
  const float scale = 1.0f / keep;
  mask_ = Tensor(input.shape());
  Tensor out = input;
  float* m = mask_.data();
  float* o = out.data();
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool kept = rng_.uniform() < keep;
    m[i] = kept ? scale : 0.0f;
    o[i] *= m[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor grad = grad_output;
  const float* m = mask_.data();
  float* g = grad.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) g[i] *= m[i];
  return grad;
}

LayerInfo Dropout::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "dropout";
  info.output_shape = input_shape;
  info.flops_forward = static_cast<double>(shape_numel(input_shape));
  info.activation_elems = static_cast<double>(shape_numel(input_shape));
  return info;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch}).value();
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_input_shape_).value();
}

LayerInfo Flatten::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "flatten";
  const std::int64_t batch = input_shape.at(0);
  info.output_shape = {batch, shape_numel(input_shape) / batch};
  return info;
}

}  // namespace edgetune
