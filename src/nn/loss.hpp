// Loss functions. Each returns the scalar loss and the gradient w.r.t. the
// network output, ready to feed into Sequential::backward.
#pragma once

#include "tensor/tensor.hpp"

namespace edgetune {

struct LossResult {
  double loss = 0.0;
  Tensor grad;  // dL/d(logits or predictions), mean-reduced over the batch
};

/// Softmax cross-entropy. logits: [N, C]; labels: class indices, length N.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

/// Mean squared error against a target tensor of the same shape.
LossResult mse_loss(const Tensor& predictions, const Tensor& targets);

/// Fraction of rows whose argmax matches the label.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace edgetune
