// Pooling layers wrapping the tensor-level kernels.
#pragma once

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace edgetune {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "maxpool2d"; }

 private:
  std::int64_t kernel_, stride_;
  std::vector<std::int64_t> cached_argmax_;
  Shape cached_input_shape_;
};

class MaxPool1D : public Layer {
 public:
  MaxPool1D(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "maxpool1d"; }

 private:
  std::int64_t kernel_, stride_;
  std::vector<std::int64_t> cached_argmax_;
  Shape cached_input_shape_;
};

/// Average pooling on [N, C, H, W] with a square window.
class AvgPool2D : public Layer {
 public:
  AvgPool2D(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "avgpool2d"; }

 private:
  std::int64_t kernel_, stride_;
  Shape cached_input_shape_;
};

/// [N, C, H, W] -> [N, C] by averaging each channel plane.
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "gap"; }

 private:
  Shape cached_input_shape_;
};

/// [N, C, L] -> [N, C] by averaging over time (audio head).
class GlobalAvgPool1D : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "gap1d"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace edgetune
