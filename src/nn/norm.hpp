// Batch normalization over the channel axis, supporting [N, C], [N, C, L],
// and [N, C, H, W] inputs with running statistics for inference.
#pragma once

#include "nn/layer.hpp"

namespace edgetune {

class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::int64_t channels, double momentum = 0.1,
                     double epsilon = 1e-5);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "batchnorm"; }

 private:
  std::int64_t channels_;
  double momentum_, epsilon_;
  Tensor gamma_, beta_;
  Tensor gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;

  // Backward-pass caches (training mode only).
  Tensor cached_normalized_;  // x_hat, same shape as input
  Tensor cached_inv_std_;     // [C]
  Shape cached_shape_;
};

}  // namespace edgetune
