// Linear, activations, dropout, flatten.
#pragma once

#include "nn/layer.hpp"
#include "tensor/workspace.hpp"

namespace edgetune {

/// Fully connected layer: y = x W^T + b, x: [N, in], W: [out, in].
class Linear : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "linear"; }

  [[nodiscard]] std::int64_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::int64_t out_features() const noexcept { return out_; }

 private:
  std::int64_t in_, out_;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
  Workspace ws_;  // weight-gradient GEMM scratch
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor cached_output_;
};

/// max(x, alpha*x) — YOLO-family networks use alpha = 0.1.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.1f) : alpha_(alpha) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }

 private:
  float alpha_;
  Tensor cached_input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "sigmoid"; }

 private:
  Tensor cached_output_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "tanh"; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training and
/// is the identity at inference (the YOLO model hyperparameter, §5.1).
class Dropout : public Layer {
 public:
  Dropout(double rate, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "dropout"; }

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;
};

/// [N, ...] -> [N, prod(...)].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace edgetune
