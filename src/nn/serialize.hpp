// Model checkpointing: save/load the trainable parameters of a network.
// The tuning server's primary output is the trained winning model (§2.1);
// this is how it is handed to deployment.
//
// Format (little-endian binary):
//   magic "ETW1" | u64 param_count
//   per parameter: u64 name_len | name bytes | u64 rank | i64 dims... |
//                  f32 data...
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace edgetune {

/// Writes every parameter of `model` to `path`.
Status save_weights(Layer& model, const std::string& path);

/// Loads parameters into `model`. The parameter sequence (names, order and
/// shapes) must match what was saved — i.e. the same architecture.
Status load_weights(Layer& model, const std::string& path);

}  // namespace edgetune
