#include "nn/norm.hpp"

#include <cassert>
#include <cmath>

namespace edgetune {

namespace {
/// Views input as [N, C, S] where S collapses all trailing spatial dims.
std::int64_t spatial_size(const Shape& shape) {
  std::int64_t s = 1;
  for (std::size_t i = 2; i < shape.size(); ++i) s *= shape[i];
  return s;
}
}  // namespace

BatchNorm::BatchNorm(std::int64_t channels, double momentum, double epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::ones({channels})),
      beta_(Tensor::zeros({channels})),
      gamma_grad_(Tensor::zeros({channels})),
      beta_grad_(Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  assert(input.rank() >= 2 && input.dim(1) == channels_);
  cached_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  const std::int64_t spatial = spatial_size(input.shape());
  const std::int64_t per_channel = batch * spatial;

  Tensor out(input.shape());
  const float* src = input.data();
  float* dst = out.data();

  if (training) {
    cached_normalized_ = Tensor(input.shape());
    cached_inv_std_ = Tensor({channels_});
    float* xh = cached_normalized_.data();
    for (std::int64_t c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* chan = src + (n * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) mean += chan[s];
      }
      mean /= static_cast<double>(per_channel);
      double var = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* chan = src + (n * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          const double d = chan[s] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(per_channel);
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
      cached_inv_std_[c] = inv_std;
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * running_mean_[c] + momentum_ * mean);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * running_var_[c] + momentum_ * var);
      const float g = gamma_[c], b = beta_[c];
      const float fmean = static_cast<float>(mean);
      for (std::int64_t n = 0; n < batch; ++n) {
        const std::int64_t off = (n * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          const float norm = (src[off + s] - fmean) * inv_std;
          xh[off + s] = norm;
          dst[off + s] = g * norm + b;
        }
      }
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float inv_std =
          1.0f / std::sqrt(running_var_[c] + static_cast<float>(epsilon_));
      const float g = gamma_[c], b = beta_[c], m = running_mean_[c];
      for (std::int64_t n = 0; n < batch; ++n) {
        const std::int64_t off = (n * channels_ + c) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          dst[off + s] = g * (src[off + s] - m) * inv_std + b;
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  assert(!cached_normalized_.empty() &&
         "backward requires a training-mode forward");
  const std::int64_t batch = cached_shape_[0];
  const std::int64_t spatial = spatial_size(cached_shape_);
  const std::int64_t per_channel = batch * spatial;

  Tensor grad_in(cached_shape_);
  const float* g = grad_output.data();
  const float* xh = cached_normalized_.data();
  float* dx = grad_in.data();

  for (std::int64_t c = 0; c < channels_; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      const std::int64_t off = (n * channels_ + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        sum_g += g[off + s];
        sum_gx += g[off + s] * xh[off + s];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_gx);
    beta_grad_[c] += static_cast<float>(sum_g);

    const float gamma = gamma_[c];
    const float inv_std = cached_inv_std_[c];
    const float inv_m = 1.0f / static_cast<float>(per_channel);
    const float mean_g = static_cast<float>(sum_g) * inv_m;
    const float mean_gx = static_cast<float>(sum_gx) * inv_m;
    for (std::int64_t n = 0; n < batch; ++n) {
      const std::int64_t off = (n * channels_ + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        dx[off + s] = gamma * inv_std *
                      (g[off + s] - mean_g - xh[off + s] * mean_gx);
      }
    }
  }
  return grad_in;
}

std::vector<ParamRef> BatchNorm::params() {
  return {{&gamma_, &gamma_grad_, "batchnorm.gamma"},
          {&beta_, &beta_grad_, "batchnorm.beta"}};
}

LayerInfo BatchNorm::describe(const Shape& input_shape) const {
  LayerInfo info;
  info.kind = "batchnorm";
  info.output_shape = input_shape;
  info.flops_forward = 4.0 * static_cast<double>(shape_numel(input_shape));
  info.param_count = static_cast<double>(2 * channels_);
  info.activation_elems = static_cast<double>(shape_numel(input_shape));
  info.weight_reads = info.param_count;
  return info;
}

}  // namespace edgetune
