// Sequential container: the network type every model builder returns.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace edgetune {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& input, bool training) override {
    Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x, training);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  std::vector<ParamRef> params() override {
    std::vector<ParamRef> out;
    for (auto& layer : layers_) {
      auto p = layer->params();
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override {
    LayerInfo total;
    total.kind = "sequential";
    Shape shape = input_shape;
    for (const auto& layer : layers_) {
      LayerInfo info = layer->describe(shape);
      total.flops_forward += info.flops_forward;
      total.param_count += info.param_count;
      total.activation_elems += info.activation_elems;
      total.weight_reads += info.weight_reads;
      shape = info.output_shape;
    }
    total.output_shape = shape;
    return total;
  }

  /// Per-layer descriptions (used by ModelStats / the device cost model).
  [[nodiscard]] std::vector<LayerInfo> describe_layers(
      const Shape& input_shape) const {
    std::vector<LayerInfo> out;
    Shape shape = input_shape;
    for (const auto& layer : layers_) {
      out.push_back(layer->describe(shape));
      shape = out.back().output_shape;
    }
    return out;
  }

  [[nodiscard]] std::string name() const override { return "sequential"; }
  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace edgetune
