#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>

namespace edgetune {

namespace {
constexpr char kMagic[4] = {'E', 'T', 'W', '1'};

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

bool read_u64(std::ifstream& in, std::uint64_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return in.good();
}
}  // namespace

Status save_weights(Layer& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return Status::io("cannot open " + path + " for writing");
  out.write(kMagic, sizeof kMagic);
  const std::vector<ParamRef> params = model.params();
  write_u64(out, params.size());
  for (const ParamRef& p : params) {
    write_u64(out, p.name.size());
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const Shape& shape = p.value->shape();
    write_u64(out, shape.size());
    for (std::int64_t d : shape) {
      out.write(reinterpret_cast<const char*>(&d), sizeof d);
    }
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(
                  static_cast<std::size_t>(p.value->numel()) * sizeof(float)));
  }
  return out.good() ? Status::ok() : Status::io("short write to " + path);
}

Status load_weights(Layer& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::not_found("cannot read " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in.good() || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return Status::invalid_argument(path + " is not an EdgeTune checkpoint");
  }
  std::uint64_t count = 0;
  if (!read_u64(in, count)) return Status::io("truncated checkpoint");
  std::vector<ParamRef> params = model.params();
  if (count != params.size()) {
    return Status::failed_precondition(
        "checkpoint has " + std::to_string(count) + " parameters, model has " +
        std::to_string(params.size()));
  }
  for (ParamRef& p : params) {
    std::uint64_t name_len = 0;
    if (!read_u64(in, name_len) || name_len > 4096) {
      return Status::io("truncated checkpoint (name)");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != p.name) {
      return Status::failed_precondition(
          "checkpoint parameter '" + name + "' does not match model's '" +
          p.name + "' (different architecture?)");
    }
    std::uint64_t rank = 0;
    if (!read_u64(in, rank) || rank > 8) {
      return Status::io("truncated checkpoint (rank)");
    }
    Shape shape(rank);
    for (auto& d : shape) {
      in.read(reinterpret_cast<char*>(&d), sizeof d);
    }
    if (!in.good()) return Status::io("truncated checkpoint (shape)");
    if (shape != p.value->shape()) {
      return Status::failed_precondition(
          "shape mismatch for parameter '" + name + "': checkpoint " +
          shape_to_string(shape) + " vs model " +
          shape_to_string(p.value->shape()));
    }
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(
                static_cast<std::size_t>(p.value->numel()) * sizeof(float)));
    if (!in.good()) return Status::io("truncated checkpoint (data)");
  }
  return Status::ok();
}

}  // namespace edgetune
