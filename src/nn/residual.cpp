#include "nn/residual.hpp"

#include <cassert>

namespace edgetune {

ResidualBlock::ResidualBlock(std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t stride,
                             Rng& rng)
    : conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*padding=*/1,
             rng, /*bias=*/false),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
             /*padding=*/1, rng, /*bias=*/false),
      bn2_(out_channels),
      has_projection_(stride != 1 || in_channels != out_channels) {
  if (has_projection_) {
    proj_ = std::make_unique<Conv2D>(in_channels, out_channels, /*kernel=*/1,
                                     stride, /*padding=*/0, rng,
                                     /*bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm>(out_channels);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor main = conv1_.forward(input, training);
  main = bn1_.forward(main, training);
  main = relu1_.forward(main, training);
  main = conv2_.forward(main, training);
  main = bn2_.forward(main, training);

  Tensor skip = input;
  if (has_projection_) {
    skip = proj_->forward(input, training);
    skip = proj_bn_->forward(skip, training);
  }
  main.add_inplace(skip);
  cached_sum_ = main;
  // Final ReLU, inline so backward can mask on the cached sum.
  Tensor out = main;
  for (auto& v : out.vec()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  // Through the final ReLU.
  Tensor g = grad_output;
  {
    const float* s = cached_sum_.data();
    float* pg = g.data();
    const std::int64_t n = g.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      if (s[i] <= 0.0f) pg[i] = 0.0f;
    }
  }
  // Main path.
  Tensor g_main = bn2_.backward(g);
  g_main = conv2_.backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);
  // Skip path.
  Tensor g_skip = g;
  if (has_projection_) {
    g_skip = proj_bn_->backward(g_skip);
    g_skip = proj_->backward(g_skip);
  }
  g_main.add_inplace(g_skip);
  return g_main;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> out;
  for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_,
                                                &bn2_}) {
    auto p = l->params();
    out.insert(out.end(), p.begin(), p.end());
  }
  if (has_projection_) {
    auto p1 = proj_->params();
    out.insert(out.end(), p1.begin(), p1.end());
    auto p2 = proj_bn_->params();
    out.insert(out.end(), p2.begin(), p2.end());
  }
  return out;
}

LayerInfo ResidualBlock::describe(const Shape& input_shape) const {
  LayerInfo total;
  total.kind = "resblock";
  LayerInfo i1 = conv1_.describe(input_shape);
  LayerInfo i2 = bn1_.describe(i1.output_shape);
  LayerInfo i3 = relu1_.describe(i2.output_shape);
  LayerInfo i4 = conv2_.describe(i3.output_shape);
  LayerInfo i5 = bn2_.describe(i4.output_shape);
  for (const auto& info : {i1, i2, i3, i4, i5}) {
    total.flops_forward += info.flops_forward;
    total.param_count += info.param_count;
    total.activation_elems += info.activation_elems;
    total.weight_reads += info.weight_reads;
  }
  if (has_projection_) {
    LayerInfo p1 = proj_->describe(input_shape);
    LayerInfo p2 = proj_bn_->describe(p1.output_shape);
    for (const auto& info : {p1, p2}) {
      total.flops_forward += info.flops_forward;
      total.param_count += info.param_count;
      total.activation_elems += info.activation_elems;
      total.weight_reads += info.weight_reads;
    }
  }
  // Elementwise add + final relu.
  total.flops_forward += 2.0 * static_cast<double>(shape_numel(i5.output_shape));
  total.output_shape = i5.output_shape;
  return total;
}

BottleneckBlock::BottleneckBlock(std::int64_t in_channels,
                                 std::int64_t mid_channels,
                                 std::int64_t stride, Rng& rng)
    : mid_channels_(mid_channels),
      conv1_(in_channels, mid_channels, /*kernel=*/1, /*stride=*/1,
             /*padding=*/0, rng, /*bias=*/false),
      bn1_(mid_channels),
      conv2_(mid_channels, mid_channels, /*kernel=*/3, stride, /*padding=*/1,
             rng, /*bias=*/false),
      bn2_(mid_channels),
      conv3_(mid_channels, 4 * mid_channels, /*kernel=*/1, /*stride=*/1,
             /*padding=*/0, rng, /*bias=*/false),
      bn3_(4 * mid_channels),
      has_projection_(stride != 1 || in_channels != 4 * mid_channels) {
  if (has_projection_) {
    proj_ = std::make_unique<Conv2D>(in_channels, 4 * mid_channels,
                                     /*kernel=*/1, stride, /*padding=*/0, rng,
                                     /*bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm>(4 * mid_channels);
  }
}

Tensor BottleneckBlock::forward(const Tensor& input, bool training) {
  Tensor main = conv1_.forward(input, training);
  main = bn1_.forward(main, training);
  main = relu1_.forward(main, training);
  main = conv2_.forward(main, training);
  main = bn2_.forward(main, training);
  main = relu2_.forward(main, training);
  main = conv3_.forward(main, training);
  main = bn3_.forward(main, training);

  Tensor skip = input;
  if (has_projection_) {
    skip = proj_->forward(input, training);
    skip = proj_bn_->forward(skip, training);
  }
  main.add_inplace(skip);
  cached_sum_ = main;
  Tensor out = main;
  for (auto& v : out.vec()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor BottleneckBlock::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  {
    const float* s = cached_sum_.data();
    float* pg = g.data();
    const std::int64_t n = g.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      if (s[i] <= 0.0f) pg[i] = 0.0f;
    }
  }
  Tensor g_main = bn3_.backward(g);
  g_main = conv3_.backward(g_main);
  g_main = relu2_.backward(g_main);
  g_main = bn2_.backward(g_main);
  g_main = conv2_.backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);
  Tensor g_skip = g;
  if (has_projection_) {
    g_skip = proj_bn_->backward(g_skip);
    g_skip = proj_->backward(g_skip);
  }
  g_main.add_inplace(g_skip);
  return g_main;
}

std::vector<ParamRef> BottleneckBlock::params() {
  std::vector<ParamRef> out;
  for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_,
                                                &bn2_, &conv3_, &bn3_}) {
    auto p = l->params();
    out.insert(out.end(), p.begin(), p.end());
  }
  if (has_projection_) {
    auto p1 = proj_->params();
    out.insert(out.end(), p1.begin(), p1.end());
    auto p2 = proj_bn_->params();
    out.insert(out.end(), p2.begin(), p2.end());
  }
  return out;
}

LayerInfo BottleneckBlock::describe(const Shape& input_shape) const {
  LayerInfo total;
  total.kind = "bottleneck";
  LayerInfo i1 = conv1_.describe(input_shape);
  LayerInfo i2 = bn1_.describe(i1.output_shape);
  LayerInfo i3 = relu1_.describe(i2.output_shape);
  LayerInfo i4 = conv2_.describe(i3.output_shape);
  LayerInfo i5 = bn2_.describe(i4.output_shape);
  LayerInfo i6 = relu2_.describe(i5.output_shape);
  LayerInfo i7 = conv3_.describe(i6.output_shape);
  LayerInfo i8 = bn3_.describe(i7.output_shape);
  for (const auto& info : {i1, i2, i3, i4, i5, i6, i7, i8}) {
    total.flops_forward += info.flops_forward;
    total.param_count += info.param_count;
    total.activation_elems += info.activation_elems;
    total.weight_reads += info.weight_reads;
  }
  if (has_projection_) {
    LayerInfo p1 = proj_->describe(input_shape);
    LayerInfo p2 = proj_bn_->describe(p1.output_shape);
    for (const auto& info : {p1, p2}) {
      total.flops_forward += info.flops_forward;
      total.param_count += info.param_count;
      total.activation_elems += info.activation_elems;
      total.weight_reads += info.weight_reads;
    }
  }
  total.flops_forward += 2.0 * static_cast<double>(shape_numel(i8.output_shape));
  total.output_shape = i8.output_shape;
  return total;
}

}  // namespace edgetune
