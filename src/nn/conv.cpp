#include "nn/conv.hpp"

#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"

namespace edgetune {

namespace {

// Workspace arena slots shared by Conv2D/Conv1D.
constexpr std::size_t kColsSlot = 0;    // im2col of last forward
constexpr std::size_t kGemmSlot = 1;    // forward GEMM accumulation scratch
constexpr std::size_t kGColsSlot = 2;   // grad_output in [rows, out_c] layout
constexpr std::size_t kDwSlot = 3;      // weight-gradient GEMM output
constexpr std::size_t kDcolsSlot = 4;   // input-gradient columns

}  // namespace

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  weight_ = Tensor::randn({out_channels, fan_in}, rng, 0.0f,
                          std::sqrt(2.0f / static_cast<float>(fan_in)));
  weight_grad_ = Tensor::zeros(weight_.shape());
  if (has_bias_) {
    bias_ = Tensor::zeros({out_channels});
    bias_grad_ = Tensor::zeros({out_channels});
  }
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 4 && input.dim(1) == in_channels_);
  cached_batch_ = input.dim(0);
  cached_geo_ = Conv2dGeometry{in_channels_, input.dim(2), input.dim(3),
                               kernel_, stride_, padding_};
  const std::int64_t oh = cached_geo_.out_h(), ow = cached_geo_.out_w();
  const std::int64_t rows = cached_batch_ * oh * ow;
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  float* cols = ws_.get(kColsSlot, rows * patch);
  im2col_into(input, cached_geo_, cols);
  // Single GEMM with the bias add and the [rows, out_c] -> [N, out_c, oh, ow]
  // transpose fused into the store epilogue.
  Tensor out({cached_batch_, out_channels_, oh, ow});
  GemmEpilogue epi;
  epi.bias = has_bias_ ? bias_.data() : nullptr;
  epi.out = out.data();
  epi.scatter_spatial = oh * ow;
  gemm(GemmLayout::kNT, rows, out_channels_, patch, cols, weight_.data(),
       ws_.get(kGemmSlot, rows * out_channels_), /*accumulate=*/false, &epi);
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::int64_t oh = cached_geo_.out_h(), ow = cached_geo_.out_w();
  assert(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_ &&
         grad_output.dim(2) == oh && grad_output.dim(3) == ow);
  const std::int64_t rows = cached_batch_ * oh * ow;
  const std::int64_t patch = in_channels_ * kernel_ * kernel_;
  // [N, out_c, oh, ow] -> [N*oh*ow, out_c]
  float* g_cols = ws_.get(kGColsSlot, rows * out_channels_);
  {
    const float* src = grad_output.data();
    for (std::int64_t n = 0; n < cached_batch_; ++n) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        for (std::int64_t p = 0; p < oh * ow; ++p) {
          g_cols[(n * oh * ow + p) * out_channels_ + c] =
              src[(n * out_channels_ + c) * oh * ow + p];
        }
      }
    }
  }
  // dW += g_cols^T * cached cols. The GEMM writes a fresh dW into scratch and
  // a separate loop accumulates, preserving the historical add_inplace
  // float-operation order.
  const float* cols = ws_.get(kColsSlot, rows * patch);
  float* dw = ws_.get(kDwSlot, out_channels_ * patch);
  gemm(GemmLayout::kTN, out_channels_, patch, rows, g_cols, cols, dw);
  float* wg = weight_grad_.data();
  for (std::int64_t i = 0; i < out_channels_ * patch; ++i) wg[i] += dw[i];
  if (has_bias_) {
    float* db = bias_grad_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        db[c] += g_cols[r * out_channels_ + c];
      }
    }
  }
  // dX = col2im(g_cols * W)
  float* dcols = ws_.get(kDcolsSlot, rows * patch);
  gemm(GemmLayout::kNN, rows, patch, out_channels_, g_cols, weight_.data(),
       dcols);
  return col2im(dcols, cached_batch_, cached_geo_);
}

std::vector<ParamRef> Conv2D::params() {
  std::vector<ParamRef> out = {{&weight_, &weight_grad_, "conv2d.weight"}};
  if (has_bias_) out.push_back({&bias_, &bias_grad_, "conv2d.bias"});
  return out;
}

LayerInfo Conv2D::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0);
  const Conv2dGeometry geo{in_channels_, input_shape.at(2), input_shape.at(3),
                           kernel_, stride_, padding_};
  const std::int64_t oh = geo.out_h(), ow = geo.out_w();
  LayerInfo info;
  info.kind = "conv2d";
  info.output_shape = {batch, out_channels_, oh, ow};
  const double patch = static_cast<double>(in_channels_ * kernel_ * kernel_);
  info.flops_forward = 2.0 * static_cast<double>(batch * oh * ow) * patch *
                       static_cast<double>(out_channels_);
  info.param_count =
      patch * static_cast<double>(out_channels_) +
      (has_bias_ ? static_cast<double>(out_channels_) : 0.0);
  info.activation_elems = static_cast<double>(batch * out_channels_ * oh * ow);
  info.weight_reads = info.param_count;
  return info;
}

Conv1D::Conv1D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const std::int64_t fan_in = in_channels * kernel;
  weight_ = Tensor::randn({out_channels, fan_in}, rng, 0.0f,
                          std::sqrt(2.0f / static_cast<float>(fan_in)));
  weight_grad_ = Tensor::zeros(weight_.shape());
  if (has_bias_) {
    bias_ = Tensor::zeros({out_channels});
    bias_grad_ = Tensor::zeros({out_channels});
  }
}

Tensor Conv1D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 3 && input.dim(1) == in_channels_);
  cached_batch_ = input.dim(0);
  cached_geo_ =
      Conv1dGeometry{in_channels_, input.dim(2), kernel_, stride_, padding_};
  const std::int64_t ol = cached_geo_.out_len();
  const std::int64_t rows = cached_batch_ * ol;
  const std::int64_t patch = in_channels_ * kernel_;
  float* cols = ws_.get(kColsSlot, rows * patch);
  im2col_1d_into(input, cached_geo_, cols);
  Tensor out({cached_batch_, out_channels_, ol});
  GemmEpilogue epi;
  epi.bias = has_bias_ ? bias_.data() : nullptr;
  epi.out = out.data();
  epi.scatter_spatial = ol;
  gemm(GemmLayout::kNT, rows, out_channels_, patch, cols, weight_.data(),
       ws_.get(kGemmSlot, rows * out_channels_), /*accumulate=*/false, &epi);
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  const std::int64_t ol = cached_geo_.out_len();
  assert(grad_output.rank() == 3 && grad_output.dim(1) == out_channels_ &&
         grad_output.dim(2) == ol);
  const std::int64_t rows = cached_batch_ * ol;
  const std::int64_t patch = in_channels_ * kernel_;
  float* g_cols = ws_.get(kGColsSlot, rows * out_channels_);
  {
    const float* src = grad_output.data();
    for (std::int64_t n = 0; n < cached_batch_; ++n) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        for (std::int64_t p = 0; p < ol; ++p) {
          g_cols[(n * ol + p) * out_channels_ + c] =
              src[(n * out_channels_ + c) * ol + p];
        }
      }
    }
  }
  const float* cols = ws_.get(kColsSlot, rows * patch);
  float* dw = ws_.get(kDwSlot, out_channels_ * patch);
  gemm(GemmLayout::kTN, out_channels_, patch, rows, g_cols, cols, dw);
  float* wg = weight_grad_.data();
  for (std::int64_t i = 0; i < out_channels_ * patch; ++i) wg[i] += dw[i];
  if (has_bias_) {
    float* db = bias_grad_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        db[c] += g_cols[r * out_channels_ + c];
      }
    }
  }
  float* dcols = ws_.get(kDcolsSlot, rows * patch);
  gemm(GemmLayout::kNN, rows, patch, out_channels_, g_cols, weight_.data(),
       dcols);
  return col2im_1d(dcols, cached_batch_, cached_geo_);
}

std::vector<ParamRef> Conv1D::params() {
  std::vector<ParamRef> out = {{&weight_, &weight_grad_, "conv1d.weight"}};
  if (has_bias_) out.push_back({&bias_, &bias_grad_, "conv1d.bias"});
  return out;
}

LayerInfo Conv1D::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0);
  const Conv1dGeometry geo{in_channels_, input_shape.at(2), kernel_, stride_,
                           padding_};
  const std::int64_t ol = geo.out_len();
  LayerInfo info;
  info.kind = "conv1d";
  info.output_shape = {batch, out_channels_, ol};
  const double patch = static_cast<double>(in_channels_ * kernel_);
  info.flops_forward = 2.0 * static_cast<double>(batch * ol) * patch *
                       static_cast<double>(out_channels_);
  info.param_count =
      patch * static_cast<double>(out_channels_) +
      (has_bias_ ? static_cast<double>(out_channels_) : 0.0);
  info.activation_elems = static_cast<double>(batch * out_channels_ * ol);
  info.weight_reads = info.param_count;
  return info;
}

}  // namespace edgetune
