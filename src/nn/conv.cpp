#include "nn/conv.hpp"

#include <cassert>
#include <cmath>

namespace edgetune {

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  weight_ = Tensor::randn({out_channels, fan_in}, rng, 0.0f,
                          std::sqrt(2.0f / static_cast<float>(fan_in)));
  weight_grad_ = Tensor::zeros(weight_.shape());
  if (has_bias_) {
    bias_ = Tensor::zeros({out_channels});
    bias_grad_ = Tensor::zeros({out_channels});
  }
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 4 && input.dim(1) == in_channels_);
  cached_batch_ = input.dim(0);
  cached_geo_ = Conv2dGeometry{in_channels_, input.dim(2), input.dim(3),
                               kernel_, stride_, padding_};
  cached_cols_ = im2col(input, cached_geo_);  // [N*oh*ow, cin*k*k]
  Tensor out_cols = matmul_nt(cached_cols_, weight_);  // [N*oh*ow, out_c]
  const std::int64_t oh = cached_geo_.out_h(), ow = cached_geo_.out_w();
  if (has_bias_) {
    const std::int64_t rows = out_cols.dim(0);
    float* po = out_cols.data();
    const float* pb = bias_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        po[r * out_channels_ + c] += pb[c];
      }
    }
  }
  // [N*oh*ow, out_c] -> [N, out_c, oh, ow]
  Tensor out({cached_batch_, out_channels_, oh, ow});
  const float* src = out_cols.data();
  float* dst = out.data();
  for (std::int64_t n = 0; n < cached_batch_; ++n) {
    for (std::int64_t p = 0; p < oh * ow; ++p) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        dst[(n * out_channels_ + c) * oh * ow + p] =
            src[(n * oh * ow + p) * out_channels_ + c];
      }
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::int64_t oh = cached_geo_.out_h(), ow = cached_geo_.out_w();
  assert(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_ &&
         grad_output.dim(2) == oh && grad_output.dim(3) == ow);
  // [N, out_c, oh, ow] -> [N*oh*ow, out_c]
  Tensor g_cols({cached_batch_ * oh * ow, out_channels_});
  {
    const float* src = grad_output.data();
    float* dst = g_cols.data();
    for (std::int64_t n = 0; n < cached_batch_; ++n) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        for (std::int64_t p = 0; p < oh * ow; ++p) {
          dst[(n * oh * ow + p) * out_channels_ + c] =
              src[(n * out_channels_ + c) * oh * ow + p];
        }
      }
    }
  }
  // dW += g_cols^T * cached_cols
  Tensor dw = matmul_tn(g_cols, cached_cols_);  // [out_c, cin*k*k]
  weight_grad_.add_inplace(dw);
  if (has_bias_) {
    const std::int64_t rows = g_cols.dim(0);
    const float* g = g_cols.data();
    float* db = bias_grad_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        db[c] += g[r * out_channels_ + c];
      }
    }
  }
  // dX = col2im(g_cols * W)
  Tensor dcols = matmul(g_cols, weight_);  // [N*oh*ow, cin*k*k]
  return col2im(dcols, cached_batch_, cached_geo_);
}

std::vector<ParamRef> Conv2D::params() {
  std::vector<ParamRef> out = {{&weight_, &weight_grad_, "conv2d.weight"}};
  if (has_bias_) out.push_back({&bias_, &bias_grad_, "conv2d.bias"});
  return out;
}

LayerInfo Conv2D::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0);
  const Conv2dGeometry geo{in_channels_, input_shape.at(2), input_shape.at(3),
                           kernel_, stride_, padding_};
  const std::int64_t oh = geo.out_h(), ow = geo.out_w();
  LayerInfo info;
  info.kind = "conv2d";
  info.output_shape = {batch, out_channels_, oh, ow};
  const double patch = static_cast<double>(in_channels_ * kernel_ * kernel_);
  info.flops_forward = 2.0 * static_cast<double>(batch * oh * ow) * patch *
                       static_cast<double>(out_channels_);
  info.param_count =
      patch * static_cast<double>(out_channels_) +
      (has_bias_ ? static_cast<double>(out_channels_) : 0.0);
  info.activation_elems = static_cast<double>(batch * out_channels_ * oh * ow);
  info.weight_reads = info.param_count;
  return info;
}

Conv1D::Conv1D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  const std::int64_t fan_in = in_channels * kernel;
  weight_ = Tensor::randn({out_channels, fan_in}, rng, 0.0f,
                          std::sqrt(2.0f / static_cast<float>(fan_in)));
  weight_grad_ = Tensor::zeros(weight_.shape());
  if (has_bias_) {
    bias_ = Tensor::zeros({out_channels});
    bias_grad_ = Tensor::zeros({out_channels});
  }
}

Tensor Conv1D::forward(const Tensor& input, bool /*training*/) {
  assert(input.rank() == 3 && input.dim(1) == in_channels_);
  cached_batch_ = input.dim(0);
  cached_geo_ =
      Conv1dGeometry{in_channels_, input.dim(2), kernel_, stride_, padding_};
  cached_cols_ = im2col_1d(input, cached_geo_);  // [N*ol, cin*k]
  Tensor out_cols = matmul_nt(cached_cols_, weight_);  // [N*ol, out_c]
  const std::int64_t ol = cached_geo_.out_len();
  if (has_bias_) {
    const std::int64_t rows = out_cols.dim(0);
    float* po = out_cols.data();
    const float* pb = bias_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        po[r * out_channels_ + c] += pb[c];
      }
    }
  }
  Tensor out({cached_batch_, out_channels_, ol});
  const float* src = out_cols.data();
  float* dst = out.data();
  for (std::int64_t n = 0; n < cached_batch_; ++n) {
    for (std::int64_t p = 0; p < ol; ++p) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        dst[(n * out_channels_ + c) * ol + p] =
            src[(n * ol + p) * out_channels_ + c];
      }
    }
  }
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  const std::int64_t ol = cached_geo_.out_len();
  assert(grad_output.rank() == 3 && grad_output.dim(1) == out_channels_ &&
         grad_output.dim(2) == ol);
  Tensor g_cols({cached_batch_ * ol, out_channels_});
  {
    const float* src = grad_output.data();
    float* dst = g_cols.data();
    for (std::int64_t n = 0; n < cached_batch_; ++n) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        for (std::int64_t p = 0; p < ol; ++p) {
          dst[(n * ol + p) * out_channels_ + c] =
              src[(n * out_channels_ + c) * ol + p];
        }
      }
    }
  }
  Tensor dw = matmul_tn(g_cols, cached_cols_);
  weight_grad_.add_inplace(dw);
  if (has_bias_) {
    const std::int64_t rows = g_cols.dim(0);
    const float* g = g_cols.data();
    float* db = bias_grad_.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        db[c] += g[r * out_channels_ + c];
      }
    }
  }
  Tensor dcols = matmul(g_cols, weight_);
  return col2im_1d(dcols, cached_batch_, cached_geo_);
}

std::vector<ParamRef> Conv1D::params() {
  std::vector<ParamRef> out = {{&weight_, &weight_grad_, "conv1d.weight"}};
  if (has_bias_) out.push_back({&bias_, &bias_grad_, "conv1d.bias"});
  return out;
}

LayerInfo Conv1D::describe(const Shape& input_shape) const {
  const std::int64_t batch = input_shape.at(0);
  const Conv1dGeometry geo{in_channels_, input_shape.at(2), kernel_, stride_,
                           padding_};
  const std::int64_t ol = geo.out_len();
  LayerInfo info;
  info.kind = "conv1d";
  info.output_shape = {batch, out_channels_, ol};
  const double patch = static_cast<double>(in_channels_ * kernel_);
  info.flops_forward = 2.0 * static_cast<double>(batch * ol) * patch *
                       static_cast<double>(out_channels_);
  info.param_count =
      patch * static_cast<double>(out_channels_) +
      (has_bias_ ? static_cast<double>(out_channels_) : 0.0);
  info.activation_elems = static_cast<double>(batch * out_channels_ * ol);
  info.weight_reads = info.param_count;
  return info;
}

}  // namespace edgetune
