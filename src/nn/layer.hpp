// Layer abstraction for the mini deep-learning library. Explicit
// forward/backward (no tape autograd): each layer caches what its backward
// pass needs, mirroring how static-graph frameworks execute.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgetune {

/// A trainable parameter: value plus accumulated gradient, owned by a layer.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

/// Static per-layer description used by the device cost model, computed
/// without executing the layer.
struct LayerInfo {
  std::string kind;          // "conv2d", "linear", ...
  Shape output_shape;        // includes the batch dimension
  double flops_forward = 0;  // multiply-adds*2 for one forward pass (batch incl.)
  double param_count = 0;    // trainable scalars
  double activation_elems = 0;  // output elements (memory traffic proxy)
  double weight_reads = 0;      // parameter elements read per forward
  double kernel_launches = 1;   // dispatches per forward (RNNs: per step)
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes outputs; `training` toggles dropout/batch-norm behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after the matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Static shape/cost propagation used by ModelStats and the cost model.
  [[nodiscard]] virtual LayerInfo describe(const Shape& input_shape) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace edgetune
