// Analytic architecture descriptions. A full-scale ResNet-50 would need
// hundreds of MB of weights to *instantiate*; the device cost model only
// needs per-layer FLOPs/bytes, so builders emit an ArchSpec analytically
// (no allocation) alongside the small executable proxy network.
//
// The info_* formulas intentionally mirror the Layer::describe()
// implementations next door; tests/models_test.cpp asserts they agree on
// proxy-scale nets. Lives in nn/ (not models/) so the device layer can
// consume ArchSpec without an upward include (layer DAG, DESIGN §5.8).
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace edgetune {

LayerInfo info_conv2d(const Shape& input, std::int64_t out_channels,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t padding, bool bias);
LayerInfo info_conv1d(const Shape& input, std::int64_t out_channels,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t padding, bool bias);
LayerInfo info_linear(const Shape& input, std::int64_t out_features);
LayerInfo info_batchnorm(const Shape& input);
LayerInfo info_relu(const Shape& input);
LayerInfo info_maxpool2d(const Shape& input, std::int64_t kernel,
                         std::int64_t stride);
LayerInfo info_maxpool1d(const Shape& input, std::int64_t kernel,
                         std::int64_t stride);
LayerInfo info_gap(const Shape& input);     // [N,C,H,W] -> [N,C]
LayerInfo info_gap1d(const Shape& input);   // [N,C,L]   -> [N,C]
LayerInfo info_flatten(const Shape& input);
LayerInfo info_dropout(const Shape& input);
LayerInfo info_embedding(const Shape& input, std::int64_t vocab,
                         std::int64_t embed);
LayerInfo info_rnn(const Shape& input, std::int64_t hidden,
                   std::int64_t stride);

/// Full-scale architecture description: the unit the Inference Tuning Server
/// keys its historical cache on and the device cost model consumes.
struct ArchSpec {
  std::string id;           // stable identity, e.g. "resnet18"
  Shape sample_shape;       // one sample, no batch dim, e.g. {3, 32, 32}
  std::int64_t num_classes = 0;
  std::vector<LayerInfo> layers;  // computed at batch == 1

  // Batch-1 totals, accumulated by finalize().
  double flops_per_sample = 0;      // forward
  double params = 0;                // trainable scalars
  double activation_elems = 0;      // forward activations written
  double weight_reads = 0;          // parameter elements read per forward
  double kernel_launches = 0;       // total dispatches per forward

  void add(LayerInfo info) {
    flops_per_sample += info.flops_forward;
    params += info.param_count;
    activation_elems += info.activation_elems;
    weight_reads += info.weight_reads;
    kernel_launches += info.kernel_launches;
    layers.push_back(std::move(info));
  }

  [[nodiscard]] const Shape& output_shape() const {
    return layers.back().output_shape;
  }

  /// Bytes of parameters (float32).
  [[nodiscard]] double param_bytes() const { return params * 4.0; }
};

}  // namespace edgetune
