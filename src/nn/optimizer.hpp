// SGD with momentum and decoupled weight decay — the paper trains with
// mini-batch stochastic gradient descent (§2.1).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace edgetune {

struct SgdOptions {
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<ParamRef> params, SgdOptions options);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  /// Zeroes gradients without updating (e.g. after a skipped batch).
  void zero_grad();

  [[nodiscard]] const SgdOptions& options() const noexcept { return options_; }
  void set_learning_rate(double lr) noexcept { options_.learning_rate = lr; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> velocity_;
  SgdOptions options_;
};

}  // namespace edgetune
