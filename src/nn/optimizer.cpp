#include "nn/optimizer.hpp"

namespace edgetune {

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(Tensor::zeros(p.value->shape()));
  }
}

void SgdOptimizer::step() {
  const auto lr = static_cast<float>(options_.learning_rate);
  const auto mu = static_cast<float>(options_.momentum);
  const auto wd = static_cast<float>(options_.weight_decay);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& value = *params_[i].value;
    Tensor& grad = *params_[i].grad;
    Tensor& vel = velocity_[i];
    float* v = vel.data();
    float* w = value.data();
    const float* g = grad.data();
    const std::int64_t n = value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      v[j] = mu * v[j] + g[j] + wd * w[j];
      w[j] -= lr * v[j];
    }
    grad.fill(0.0f);
  }
}

void SgdOptimizer::zero_grad() {
  for (auto& p : params_) p.grad->fill(0.0f);
}

}  // namespace edgetune
