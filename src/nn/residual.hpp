// Basic ResNet residual block: conv-bn-relu-conv-bn + (projected) skip, relu.
#pragma once

#include "nn/conv.hpp"
#include "nn/layers_basic.hpp"
#include "nn/norm.hpp"

namespace edgetune {

class ResidualBlock : public Layer {
 public:
  /// stride > 1 downsamples and triggers a 1x1 projection on the skip path,
  /// as does a channel-count change.
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "resblock"; }

 private:
  Conv2D conv1_;
  BatchNorm bn1_;
  ReLU relu1_;
  Conv2D conv2_;
  BatchNorm bn2_;
  bool has_projection_;
  std::unique_ptr<Conv2D> proj_;
  std::unique_ptr<BatchNorm> proj_bn_;
  Tensor cached_sum_;  // pre-final-relu activations (for backward)
};

/// Bottleneck residual block (ResNet-50 family): 1x1 reduce, 3x3, 1x1
/// expand (4x), with a projected skip on stride/width changes.
class BottleneckBlock : public Layer {
 public:
  /// `mid_channels` is the bottleneck width; output has 4*mid channels.
  BottleneckBlock(std::int64_t in_channels, std::int64_t mid_channels,
                  std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] LayerInfo describe(const Shape& input_shape) const override;
  [[nodiscard]] std::string name() const override { return "bottleneck"; }

  [[nodiscard]] std::int64_t out_channels() const noexcept {
    return 4 * mid_channels_;
  }

 private:
  std::int64_t mid_channels_;
  Conv2D conv1_;  // 1x1 reduce
  BatchNorm bn1_;
  ReLU relu1_;
  Conv2D conv2_;  // 3x3
  BatchNorm bn2_;
  ReLU relu2_;
  Conv2D conv3_;  // 1x1 expand
  BatchNorm bn3_;
  bool has_projection_;
  std::unique_ptr<Conv2D> proj_;
  std::unique_ptr<BatchNorm> proj_bn_;
  Tensor cached_sum_;
};

}  // namespace edgetune
