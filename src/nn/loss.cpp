#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace edgetune {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  assert(logits.rank() == 2);
  const std::int64_t batch = logits.dim(0), classes = logits.dim(1);
  assert(static_cast<std::int64_t>(labels.size()) == batch);

  Tensor log_probs = log_softmax_rows(logits);
  LossResult result;
  result.grad = softmax_rows(logits);

  double loss = 0.0;
  float* g = result.grad.data();
  const float* lp = log_probs.data();
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t y = labels[static_cast<std::size_t>(n)];
    assert(y >= 0 && y < classes);
    loss -= lp[n * classes + y];
    g[n * classes + y] -= 1.0f;
  }
  for (std::int64_t i = 0; i < batch * classes; ++i) g[i] *= inv_batch;
  result.loss = loss / static_cast<double>(batch);
  return result;
}

LossResult mse_loss(const Tensor& predictions, const Tensor& targets) {
  assert(predictions.numel() == targets.numel());
  const std::int64_t n = predictions.numel();
  LossResult result;
  result.grad = Tensor(predictions.shape());
  const float* p = predictions.data();
  const float* t = targets.data();
  float* g = result.grad.data();
  double loss = 0.0;
  const float scale = 2.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    loss += static_cast<double>(d) * d;
    g[i] = scale * d;
  }
  result.loss = loss / static_cast<double>(n);
  return result;
}

double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& labels) {
  assert(logits.rank() == 2);
  const std::int64_t batch = logits.dim(0), classes = logits.dim(1);
  if (batch == 0) return 0.0;
  const float* p = logits.data();
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = p + n * classes;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == labels[static_cast<std::size_t>(n)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace edgetune
