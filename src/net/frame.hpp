// Length-prefixed framing for the fleet protocol (DESIGN §5.5):
//
//   [u32 payload length, big-endian][u8 message type][payload bytes]
//
// The length covers the payload only (not the type byte). Anything
// malformed on the wire — a truncated frame, a length prefix above
// kMaxFramePayload, a closed peer — fails with kUnavailable before any
// payload allocation, so a corrupt or hostile peer can neither hang nor
// balloon the process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace edgetune {

/// Upper bound on one frame's payload. Generous for EvalRequest batches and
/// marshaled measurements (a few KB each); tiny next to memory.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

/// Writes one frame (header + payload, single buffer, one write_all).
Status write_frame(TcpStream& stream, std::uint8_t type,
                   std::string_view payload);

/// Reads one frame. Oversized length prefixes are rejected BEFORE reading
/// (or allocating) the payload; truncation and EOF map to kUnavailable.
Result<Frame> read_frame(TcpStream& stream);

}  // namespace edgetune
