// Fleet protocol messages (DESIGN §5.5). A coordinator listens; workers
// connect and PULL work:
//
//   worker                coordinator
//     | -- HELLO ------------> |   protocol version + options fingerprint
//     | <------------ WELCOME |   (or ERROR + close on mismatch)
//     | -- PULL -------------> |
//     | <-------------- BATCH |   dispatched trials (or GOODBYE: drain out)
//     | -- RESULT -----------> |   one per trial, streamed as they finish
//     | -- PULL -------------> |   ...
//
// Message bodies are JSON objects carried in one frame each (net/frame.hpp).
// This layer knows nothing of tuning types: BATCH entries and RESULT bodies
// are opaque Json marshaled by tuning/fleet.cpp via the report_io helpers,
// which keeps edgetune_net free of a dependency cycle on edgetune_core.
// Malformed bodies (non-JSON, wrong shape) decode to kUnavailable: the
// connection is dropped and the work rescheduled, like any lost worker.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "net/frame.hpp"

namespace edgetune {

/// Bumped on any wire-incompatible change; HELLO carries it and the
/// coordinator refuses mismatches.
inline constexpr int kFleetProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kPull = 3,
  kBatch = 4,
  kResult = 5,
  kGoodbye = 6,
  kError = 7,
};

/// A decoded frame: type tag plus parsed JSON body (an object; empty object
/// for bodyless types like GOODBYE).
struct Message {
  MessageType type = MessageType::kError;
  Json body;
};

/// Worker's opening handshake. The fingerprint hashes every option that
/// feeds measurement (workload, seed, budget, devices, faults, retry,
/// inference options): a worker launched with different flags would produce
/// different — silently wrong — measurements, so the coordinator refuses it.
struct HelloMessage {
  int protocol_version = kFleetProtocolVersion;
  std::string options_fingerprint;  // hex of a stable 64-bit hash
};

struct WelcomeMessage {
  int worker_id = 0;
};

struct PullMessage {
  int max_trials = 1;
};

Json hello_to_json(const HelloMessage& hello);
Result<HelloMessage> hello_from_json(const Json& body);
Json welcome_to_json(const WelcomeMessage& welcome);
Result<WelcomeMessage> welcome_from_json(const Json& body);
Json pull_to_json(const PullMessage& pull);
Result<PullMessage> pull_from_json(const Json& body);

/// Writes one message (frame type byte = MessageType, payload = dumped
/// body).
Status write_message(TcpStream& stream, MessageType type, const Json& body);

/// Reads one message; unknown type bytes and unparsable bodies are
/// kUnavailable (drop the connection, reschedule the work).
Result<Message> read_message(TcpStream& stream);

}  // namespace edgetune
