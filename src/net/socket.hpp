// Blocking IPv4 TCP socket wrappers for the distributed tuning fleet
// (DESIGN §5.5). Deliberately minimal: the fleet runs coordinator and
// workers on one host (or a trusted LAN), so there is no TLS, no
// non-blocking I/O, and no address-family generality — just loopback
// listen/connect, full-buffer read/write loops, and receive timeouts so a
// hung peer surfaces as kUnavailable instead of wedging its caller.
//
// Every failure mode maps to Status: connection errors, timeouts, EOF, and
// short transfers all come back as kUnavailable — the same transient code
// the RetryPolicy machinery (common/retry.hpp) already reschedules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace edgetune {

/// One connected stream. Move-only owner of the file descriptor.
class TcpStream {
 public:
  /// Invalid (not connected) stream; valid() is false.
  TcpStream() = default;
  /// Adopts an already-connected descriptor (accept path).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Blocking connect to host:port (host is a dotted quad or "localhost").
  static Result<TcpStream> connect(const std::string& host, int port);

  /// Receive timeout for subsequent reads; 0 restores blocking forever.
  /// A read that times out fails with kUnavailable.
  Status set_receive_timeout(double seconds);

  /// Writes exactly `len` bytes (loops over partial writes).
  Status write_all(const void* data, std::size_t len);

  /// Reads exactly `len` bytes; EOF, error, or timeout is kUnavailable.
  Status read_exact(void* data, std::size_t len);

  /// Half-close + close. Safe to call twice. A concurrent reader on the
  /// same stream object is NOT supported (close() from another thread while
  /// read_exact blocks must go through shutdown_both() instead).
  void close();

  /// Shuts down both directions without releasing the descriptor: a reader
  /// blocked in read_exact (possibly on another thread) returns
  /// kUnavailable. The descriptor itself stays owned until close() or
  /// destruction, so no fd-reuse race.
  void shutdown_both();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// A loopback listener. Move-only owner of the listening descriptor.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:port and listens. port 0 picks an ephemeral port —
  /// read the actual one from port().
  static Result<TcpListener> listen(int port);

  /// Blocking accept. Fails with kUnavailable after shutdown_listener().
  Result<TcpStream> accept();

  /// Wakes a blocked accept() (which then fails) without releasing the
  /// descriptor; lets another thread stop the accept loop race-free.
  void shutdown_listener();

  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace edgetune
