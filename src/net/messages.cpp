#include "net/messages.hpp"

namespace edgetune {

namespace {

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MessageType::kHello) &&
         type <= static_cast<std::uint8_t>(MessageType::kError);
}

}  // namespace

Json hello_to_json(const HelloMessage& hello) {
  JsonObject body;
  body.emplace("protocol_version", hello.protocol_version);
  body.emplace("options_fingerprint", hello.options_fingerprint);
  return Json(std::move(body));
}

Result<HelloMessage> hello_from_json(const Json& body) {
  if (!body.is_object() || body.find("protocol_version") == nullptr ||
      body.find("options_fingerprint") == nullptr) {
    return Status::unavailable("malformed HELLO body");
  }
  HelloMessage hello;
  hello.protocol_version =
      static_cast<int>(body.get_number("protocol_version", 0));
  hello.options_fingerprint = body.get_string("options_fingerprint", "");
  return hello;
}

Json welcome_to_json(const WelcomeMessage& welcome) {
  JsonObject body;
  body.emplace("worker_id", welcome.worker_id);
  return Json(std::move(body));
}

Result<WelcomeMessage> welcome_from_json(const Json& body) {
  if (!body.is_object() || body.find("worker_id") == nullptr) {
    return Status::unavailable("malformed WELCOME body");
  }
  WelcomeMessage welcome;
  welcome.worker_id = static_cast<int>(body.get_number("worker_id", 0));
  return welcome;
}

Json pull_to_json(const PullMessage& pull) {
  JsonObject body;
  body.emplace("max_trials", pull.max_trials);
  return Json(std::move(body));
}

Result<PullMessage> pull_from_json(const Json& body) {
  if (!body.is_object() || body.find("max_trials") == nullptr) {
    return Status::unavailable("malformed PULL body");
  }
  PullMessage pull;
  pull.max_trials = static_cast<int>(body.get_number("max_trials", 0));
  if (pull.max_trials < 1) return Status::unavailable("malformed PULL body");
  return pull;
}

Status write_message(TcpStream& stream, MessageType type, const Json& body) {
  return write_frame(stream, static_cast<std::uint8_t>(type), body.dump());
}

Result<Message> read_message(TcpStream& stream) {
  ET_ASSIGN_OR_RETURN(Frame frame, read_frame(stream));
  if (!known_type(frame.type)) {
    return Status::unavailable("unknown fleet message type " +
                               std::to_string(frame.type));
  }
  Result<Json> body = Json::parse(frame.payload);
  if (!body.ok() || !body.value().is_object()) {
    // Garbage payload: treat the peer as gone rather than crash or guess.
    return Status::unavailable("undecodable fleet message body (" +
                               std::to_string(frame.payload.size()) +
                               " bytes)");
  }
  Message message;
  message.type = static_cast<MessageType>(frame.type);
  message.body = std::move(body).value();
  return message;
}

}  // namespace edgetune
