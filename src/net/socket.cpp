#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace edgetune {

namespace {

Status errno_unavailable(const std::string& what) {
  return Status::unavailable(what + ": " + std::strerror(errno));
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Result<TcpStream> TcpStream::connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_unavailable("socket");
  TcpStream stream(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = (host == "localhost" || host.empty()) ? "127.0.0.1"
                                                               : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return Status::invalid_argument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return errno_unavailable("connect to " + ip + ":" + std::to_string(port));
  }
  // Frames are small and latency-sensitive; never wait for coalescing.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return stream;
}

Status TcpStream::set_receive_timeout(double seconds) {
  if (!valid()) return Status::unavailable("socket is closed");
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return errno_unavailable("setsockopt(SO_RCVTIMEO)");
  }
  return Status::ok();
}

Status TcpStream::write_all(const void* data, std::size_t len) {
  if (!valid()) return Status::unavailable("socket is closed");
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that died mid-write must surface as a Status,
    // not SIGPIPE the whole process.
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_unavailable("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status TcpStream::read_exact(void* data, std::size_t len) {
  if (!valid()) return Status::unavailable("socket is closed");
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd_, p, len, 0);
    if (n == 0) return Status::unavailable("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::unavailable("receive timed out");
      }
      return errno_unavailable("recv");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<TcpListener> TcpListener::listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_unavailable("socket");
  TcpListener listener;
  listener.fd_ = fd;

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return errno_unavailable("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) return errno_unavailable("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return errno_unavailable("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpStream> TcpListener::accept() {
  if (!valid()) return Status::unavailable("listener is closed");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    return errno_unavailable("accept");
  }
}

void TcpListener::shutdown_listener() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace edgetune
