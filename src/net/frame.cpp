#include "net/frame.hpp"

namespace edgetune {

Status write_frame(TcpStream& stream, std::uint8_t type,
                   std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::invalid_argument("frame payload too large: " +
                                    std::to_string(payload.size()) + " bytes");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string buffer;
  buffer.reserve(5 + payload.size());
  buffer.push_back(static_cast<char>((len >> 24) & 0xff));
  buffer.push_back(static_cast<char>((len >> 16) & 0xff));
  buffer.push_back(static_cast<char>((len >> 8) & 0xff));
  buffer.push_back(static_cast<char>(len & 0xff));
  buffer.push_back(static_cast<char>(type));
  buffer.append(payload);
  return stream.write_all(buffer.data(), buffer.size());
}

Result<Frame> read_frame(TcpStream& stream) {
  unsigned char header[5];
  if (Status status = stream.read_exact(header, sizeof(header));
      !status.is_ok()) {
    return status;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
  if (len > kMaxFramePayload) {
    // Unavailable, not invalid_argument: on the wire this means the peer is
    // corrupt or speaking another protocol — the caller should drop the
    // connection and reschedule, exactly like a lost worker.
    return Status::unavailable("frame length prefix " + std::to_string(len) +
                               " exceeds the " +
                               std::to_string(kMaxFramePayload) +
                               "-byte frame limit");
  }
  Frame frame;
  frame.type = header[4];
  frame.payload.resize(len);
  if (len > 0) {
    if (Status status = stream.read_exact(frame.payload.data(), len);
        !status.is_ok()) {
      return status;
    }
  }
  return frame;
}

}  // namespace edgetune
