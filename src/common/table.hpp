// ASCII table printer: every bench binary reports the paper's rows/series
// through this, so EXPERIMENTS.md and bench_output.txt stay consistent.
#pragma once

#include <string>
#include <vector>

namespace edgetune {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with column alignment and +---+ borders.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Descriptive statistics used by box-plot style reports (Fig 15).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};

/// Computes box statistics; returns zeros on empty input.
BoxStats box_stats(std::vector<double> samples);

}  // namespace edgetune
