// Deterministic fault injection for the trial pipeline (DESIGN §5.4).
//
// A FaultInjector holds a small plan of named fault *sites* — places in the
// pipeline that have opted into injection (trial execution, inference
// measurement, cache persistence) — each with an injection rate or a
// fail-first-N count and the StatusCode to inject. Decisions are a pure
// function of (seed, site, key, attempt): the injector derives a private RNG
// stream from `seed ^ stable_hash64(site) ^ stable_hash64(key)` (the PR-1
// per-arch pattern), so the SAME faults fire for the SAME work items no
// matter how many trial workers run, in what order they are scheduled, or
// whether a request is retried by a different thread. That makes
// parallel ≡ serial determinism testable *under failure*.
//
// Disabled injectors (the default) cost one empty-vector branch per check.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace edgetune {

/// Well-known fault sites. A site string is free-form — these are the ones
/// the library fires today.
namespace fault_site {
inline constexpr const char* kTrialTrain = "trial.train";
inline constexpr const char* kInferenceMeasure = "inference.measure";
inline constexpr const char* kCachePersist = "cache.persist";
/// Fired before every RoutineProfileStore flush (tuning/routine_tuner.hpp),
/// mirroring cache.persist for the kernel-routine profile database.
inline constexpr const char* kRoutinePersist = "routine.persist";
/// Fired by a fleet worker before evaluating a dispatched trial, keyed by
/// the trial's content key with the coordinator's dispatch attempt as the
/// attempt number: the worker drops its connection instead of answering
/// (tuning/fleet.hpp). Per-trial and content-keyed, so an injected plan
/// fires identically at any fleet size.
inline constexpr const char* kWorkerDrop = "worker.drop";
/// Fired before every trial-journal record write / batched fsync
/// (tuning/journal.hpp), keyed by the record index — the journal's commit
/// order is scheduling-independent, so injected journal faults are
/// identical at any worker count. Both are best-effort sites: a failure
/// degrades durability, never the run.
inline constexpr const char* kJournalAppend = "journal.append";
inline constexpr const char* kJournalFsync = "journal.fsync";
/// Deterministic kill point for crash testing: with
/// `site=crash.after_commit,fail_first=N`, the model server hard-aborts
/// the process (exit code 137) immediately after committing its Nth trial
/// (tuning/model_server.cpp). Unlike every other site, this is read via
/// fail_first(), not fire(): N is a commit INDEX, not a leading-attempts
/// count.
inline constexpr const char* kCrashAfterCommit = "crash.after_commit";
}  // namespace fault_site

/// One configured fault: where, how often (or how many leading attempts),
/// and what error to inject.
struct FaultSpec {
  std::string site;
  /// Injection probability per (key, attempt) decision, in [0, 1]. Ignored
  /// when fail_first > 0.
  double rate = 0;
  /// Fail the first N attempts of every key at this site (then succeed) —
  /// the canonical transient fault for exercising retry paths.
  int fail_first = 0;
  StatusCode code = StatusCode::kUnavailable;
};

/// Parses one spec of the form
///   site=trial.train,rate=0.1,code=unavailable
///   site=inference.measure,fail_first=2,code=deadline_exceeded
/// Unknown fields, missing site, or rate outside [0, 1] are errors.
Result<FaultSpec> parse_fault_spec(const std::string& text);

/// Parses a ';'-separated list of specs (one --inject-fault flag can carry a
/// whole plan). Empty input is an empty plan. Two specs for the same site
/// are rejected with kInvalidArgument: which duplicate fired used to depend
/// silently on spec order, so the plan the user thought they injected could
/// differ from the plan that ran.
Result<std::vector<FaultSpec>> parse_fault_plan(const std::string& text);

/// Inverse of status_code_name, over lower-case names ("unavailable",
/// "deadline_exceeded", "io", ...). "ok" is rejected: injecting success is
/// not a fault.
Result<StatusCode> status_code_from_name(const std::string& name);

class FaultInjector {
 public:
  /// Disabled: fire() always returns OK.
  FaultInjector() = default;
  FaultInjector(std::uint64_t seed, std::vector<FaultSpec> plan);

  FaultInjector(const FaultInjector& other);
  FaultInjector& operator=(const FaultInjector& other);

  [[nodiscard]] bool enabled() const noexcept { return !sites_.empty(); }

  /// One injection decision for `attempt` (0-based) of the work item `key`
  /// at `site`. Returns OK (no fault) or the configured error Status. Pure in
  /// (seed, site, key, attempt) — thread-safe, no decision ordering state.
  [[nodiscard]] Status fire(std::string_view site, std::string_view key,
                            int attempt = 0) const;

  /// Convenience for callers whose natural key is already a hash.
  [[nodiscard]] Status fire(std::string_view site, std::uint64_t key_hash,
                            int attempt = 0) const;

  /// Number of faults injected at `site` since construction (0 for sites not
  /// in the plan). Observability + test hook.
  [[nodiscard]] std::int64_t injected(std::string_view site) const noexcept;

  /// The configured fail_first count for `site` (0 when the site is absent
  /// or rate-based). For count-threshold sites like crash.after_commit the
  /// caller owns the counter and fires the site once when it trips —
  /// fire()'s "fail the first N attempts of a key" semantics would trigger
  /// at attempt 0, not at the Nth commit.
  [[nodiscard]] int fail_first(std::string_view site) const noexcept;

 private:
  struct Site {
    FaultSpec spec;
    std::uint64_t site_hash = 0;
    mutable std::atomic<std::int64_t> injected{0};

    explicit Site(FaultSpec s);
    Site(const Site& other)
        : spec(other.spec),
          site_hash(other.site_hash),
          injected(other.injected.load(std::memory_order_relaxed)) {}
    Site& operator=(const Site& other) {
      spec = other.spec;
      site_hash = other.site_hash;
      injected.store(other.injected.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      return *this;
    }
  };

  std::uint64_t seed_ = 0;
  std::vector<Site> sites_;
};

}  // namespace edgetune
