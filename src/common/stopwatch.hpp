// Wall-clock stopwatch for the few places where real elapsed time matters
// (pipelining/overlap assertions in the async tuning tests).
#pragma once

#include <chrono>

namespace edgetune {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace edgetune
