// Minimal leveled logger. Thread-safe, globally configurable, zero cost for
// disabled levels beyond one atomic load.
#pragma once

#include <sstream>
#include <string>

namespace edgetune {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn so tests/benches stay quiet).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ET_LOG(level)                                        \
  if (static_cast<int>(::edgetune::LogLevel::level) <        \
      static_cast<int>(::edgetune::log_level())) {           \
  } else                                                     \
    ::edgetune::detail::LogLine(::edgetune::LogLevel::level)

#define ET_LOG_DEBUG ET_LOG(kDebug)
#define ET_LOG_INFO ET_LOG(kInfo)
#define ET_LOG_WARN ET_LOG(kWarn)
#define ET_LOG_ERROR ET_LOG(kError)

}  // namespace edgetune
