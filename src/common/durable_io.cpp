#include "common/durable_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace edgetune {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::string errno_detail(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// write(2) until everything is out (short writes are legal on any fd).
Status write_all(int fd, const char* data, std::size_t len,
                 const std::string& path) {
  while (len > 0) {
    const ::ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io(errno_detail("cannot write", path));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed_crc) noexcept {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = seed_crc ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::io(errno_detail("cannot open directory", dir));
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::io(errno_detail("cannot fsync directory", dir));
  }
  ::close(fd);
  return status;
}

Status durable_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::io(errno_detail("cannot create", tmp));
  Status status = write_all(fd, bytes.data(), bytes.size(), tmp);
  // Data must be on disk BEFORE the rename publishes it: otherwise the
  // rename can commit first and a power loss leaves a truncated target.
  if (status.is_ok() && ::fsync(fd) != 0) {
    status = Status::io(errno_detail("cannot fsync", tmp));
  }
  if (::close(fd) != 0 && status.is_ok()) {
    status = Status::io(errno_detail("cannot close", tmp));
  }
  if (status.is_ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::io(errno_detail("cannot rename over", path));
  }
  if (!status.is_ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  // And the rename itself must reach disk: the directory entry is metadata
  // the file fsync above does not cover.
  return fsync_parent_dir(path);
}

}  // namespace edgetune
