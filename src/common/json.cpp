#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace edgetune {

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; degrade gracefully.
    return;
  }
  // Integers print without a fraction for readability and stable round-trips.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    ET_ASSIGN_OR_RETURN(Json value, parse_value());
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status error(const std::string& what) const {
    return Status::invalid_argument("json parse error at offset " +
                                    std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        ET_ASSIGN_OR_RETURN(std::string s, parse_string());
        return Json(std::move(s));
      }
      case 't':
        if (consume_literal("true")) return Json(true);
        return error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        return error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        return error("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<Json> parse_object() {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      ET_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      skip_ws();
      ET_ASSIGN_OR_RETURN(Json value, parse_value());
      obj.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      return error("expected ',' or '}'");
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    for (;;) {
      skip_ws();
      ET_ASSIGN_OR_RETURN(Json value, parse_value());
      arr.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      return error("expected ',' or ']'");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("short \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return error("bad \\u escape");
            }
          }
          if (value < 0x80) {
            out += static_cast<char>(value);
          } else if (value < 0x800) {
            out += static_cast<char>(0xC0 | (value >> 6));
            out += static_cast<char>(0x80 | (value & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (value >> 12));
            out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (value & 0x3F));
          }
          break;
        }
        default:
          return error("unknown escape");
      }
    }
    return error("unterminated string");
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) return error("invalid number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += as_bool() ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(as_number(), out);
      break;
    case Type::kString:
      escape_string(as_string(), out);
      break;
    case Type::kArray: {
      const auto& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& item : arr) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escape_string(key, out);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  dump_to(out, /*indent=*/2, /*depth=*/0);
  return out;
}

Result<Json> Json::parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace edgetune
