// Deterministic, seedable RNG used everywhere in the library.
//
// We deliberately avoid std::mt19937 + std::*_distribution because their
// outputs differ across standard-library implementations; reproducibility of
// tuning runs (and therefore of every benchmark table) requires bit-stable
// streams. SplitMix64 seeds Xoshiro256**, the generator recommended by its
// authors for seeding.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string>
#include <vector>

namespace edgetune {

/// SplitMix64: tiny stateless-ish generator; used for seeding and for
/// hash-mixing of configuration keys.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG with helper distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d1ce4e5b9ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    gauss_cached_ = false;
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform in [0, n). Debiased via rejection.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    if (n <= 1) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box-Muller (cached pair for speed).
  double gaussian() noexcept {
    if (gauss_cached_) {
      gauss_cached_ = false;
      return gauss_cache_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    gauss_cache_ = r * std::sin(theta);
    gauss_cached_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with rate lambda (mean 1/lambda); used for Poisson arrivals.
  double exponential(double lambda) noexcept {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / lambda;
  }

  /// true with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = bounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A fresh generator with a stream derived from this one; lets components
  /// derive independent substreams from one master seed.
  Rng split() noexcept { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double gauss_cache_ = 0.0;
  bool gauss_cached_ = false;
};

/// Stable 64-bit hash of a byte string (FNV-1a); used to key the historical
/// cache on architecture descriptions.
std::uint64_t stable_hash64(const void* data, std::size_t len) noexcept;

inline std::uint64_t stable_hash64(const std::string& s) noexcept {
  return stable_hash64(s.data(), s.size());
}

}  // namespace edgetune
