#include "common/table.hpp"

#include <algorithm>
#include <numeric>

namespace edgetune {

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

BoxStats box_stats(std::vector<double> samples) {
  BoxStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  stats.min = samples.front();
  stats.max = samples.back();
  stats.q1 = quantile(0.25);
  stats.median = quantile(0.5);
  stats.q3 = quantile(0.75);
  stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
  return stats;
}

}  // namespace edgetune
