// Minimal JSON value + parser + serializer. Used for the persistent
// historical-results database (paper §3.4) and for machine-readable bench
// reports. Supports the full JSON grammar except \u escapes beyond ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace edgetune {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  template <typename I>
    requires(std::is_integral_v<I> && !std::is_same_v<I, bool>)
  Json(I i) : value_(static_cast<double>(i)) {}      // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}        // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}       // NOLINT

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(value_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type() == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == Type::kObject;
  }

  // Typed accessors; assert on wrong type in debug builds.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(std::get<double>(value_));
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(value_);
  }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(value_);
  }
  [[nodiscard]] JsonObject& as_object() {
    return std::get<JsonObject>(value_);
  }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto& obj = as_object();
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }

  /// Convenience getters with fallbacks for optional fields.
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_number()) ? j->as_number() : fallback;
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_string()) ? j->as_string()
                                            : std::move(fallback);
  }
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const Json* j = find(key);
    return (j != nullptr && j->is_bool()) ? j->as_bool() : fallback;
  }

  /// Compact serialization (stable key order: std::map).
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

  static Result<Json> parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace edgetune
