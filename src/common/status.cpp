#include "common/status.hpp"

namespace edgetune {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kIo:
      return "IO";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace edgetune
