// Tiny declarative command-line flag parser for the CLI tools.
// Supports --name=value, --name value, and bare --flag booleans.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace edgetune {

class FlagParser {
 public:
  /// Declares a flag with a default; returns *this for chaining.
  FlagParser& define(std::string name, std::string default_value,
                     std::string help);

  /// Parses argv. Unknown flags or missing values are errors. Positional
  /// arguments are collected in order.
  Status parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Formatted flag reference for --help output.
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // declaration order for help()
  std::vector<std::string> positional_;
};

}  // namespace edgetune
