// Fixed-size worker pool. The Inference Tuning Server pipelines inference
// trials on this pool while the Model Tuning Server keeps training (Fig 6).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace edgetune {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        // Refuse after shutdown: surface as a broken promise.
        return result;
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until every queued task has finished.
  void wait_idle();

  /// Drains queued tasks and joins the workers. After shutdown, submit()
  /// refuses new work: the returned future surfaces a broken promise
  /// (std::future_error) instead of hanging forever. Idempotent; also called
  /// by the destructor. Not safe to call concurrently with itself.
  void shutdown();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace edgetune
