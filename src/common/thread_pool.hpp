// Fixed-size worker pool. The Inference Tuning Server pipelines inference
// trials on this pool while the Model Tuning Server keeps training (Fig 6).
#pragma once

#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace edgetune {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>>
      EDGETUNE_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        // Refuse after shutdown: surface as a broken promise.
        return result;
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until every queued task has finished.
  void wait_idle() EDGETUNE_EXCLUDES(mutex_);

  /// Drains queued tasks and joins the workers. After shutdown, submit()
  /// refuses new work: the returned future surfaces a broken promise
  /// (std::future_error) instead of hanging forever. Idempotent; also called
  /// by the destructor. Not safe to call concurrently with itself.
  void shutdown() EDGETUNE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] std::size_t pending() const EDGETUNE_EXCLUDES(mutex_);

 private:
  // Runs tasks with mutex_ RELEASED (the no-lock-across-callback invariant:
  // a task may submit() to this very pool without deadlocking).
  void worker_loop() EDGETUNE_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  // immutable after the constructor
  mutable Mutex mutex_;
  std::queue<std::function<void()>> tasks_ EDGETUNE_GUARDED_BY(mutex_);
  CondVar cv_;
  CondVar idle_cv_;
  std::size_t active_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  bool stopping_ EDGETUNE_GUARDED_BY(mutex_) = false;
};

}  // namespace edgetune
