// Retry with deterministic exponential backoff over *simulated* time
// (DESIGN §5.4). The tuning pipeline never sleeps for real: backoff between
// attempts is an amount of simulated seconds the caller charges to the
// trial's accounting (SimClock semantics), so a retried run finishes as fast
// as a clean one in wall time while its report honestly prices the waiting.
//
// Only transient codes are retried (kUnavailable, kDeadlineExceeded — the
// taxonomy production RPC stacks use); everything else fails fast. Jitter is
// seeded, a pure function of (seed, attempt), so same-seed runs charge
// identical backoff at any --trial-workers count.
#pragma once

#include <cstdint>
#include <utility>

#include "common/status.hpp"

namespace edgetune {

struct RetryPolicy {
  /// Total attempts including the first (1 = no retries — the bit-identical
  /// fast path: retry_call degenerates to one plain invocation).
  int max_attempts = 1;
  /// Simulated backoff before the first retry; doubles (times multiplier)
  /// per subsequent retry, capped at max_backoff_s.
  double initial_backoff_s = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 30.0;
  /// Uniform jitter as a fraction of the base backoff: the charged backoff
  /// is base * (1 - jitter + 2 * jitter * u), u drawn from the seeded
  /// stream. 0 disables jitter.
  double jitter = 0.1;
  /// Per-attempt deadline in simulated seconds (0 = unlimited). Enforced by
  /// callers that know their attempt's simulated duration: an attempt that
  /// ran longer counts as kDeadlineExceeded (and is therefore retryable).
  double attempt_deadline_s = 0;
};

/// Transient-code taxonomy: true for codes worth retrying.
[[nodiscard]] bool retryable_code(StatusCode code) noexcept;

/// Simulated backoff charged before attempt `next_attempt` (1-based retry
/// index: 1 = the first retry). Deterministic in (policy, seed, next_attempt).
[[nodiscard]] double retry_backoff_s(const RetryPolicy& policy,
                                     std::uint64_t seed, int next_attempt);

/// What a retry_call spent: attempts actually made, simulated backoff
/// charged between them, and the first error seen (OK if none).
struct RetryStats {
  int attempts = 0;
  double backoff_s = 0;
  Status first_error;
};

/// Runs `fn(attempt)` (attempt is 0-based) until it succeeds, a
/// non-retryable error occurs, or policy.max_attempts is exhausted. Returns
/// the last attempt's Result. Backoff between attempts is charged to
/// `stats->backoff_s` (simulated seconds — never a real sleep); `stats` may
/// be null.
template <typename T, typename Fn>
Result<T> retry_call(const RetryPolicy& policy, std::uint64_t seed, Fn&& fn,
                     RetryStats* stats = nullptr) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  RetryStats local;
  for (int attempt = 0;; ++attempt) {
    Result<T> result = fn(attempt);
    local.attempts = attempt + 1;
    if (result.ok()) {
      if (stats != nullptr) *stats = std::move(local);
      return result;
    }
    if (local.first_error.is_ok()) local.first_error = result.status();
    if (attempt + 1 >= max_attempts || !retryable_code(result.status().code())) {
      if (stats != nullptr) *stats = std::move(local);
      return result;
    }
    local.backoff_s += retry_backoff_s(policy, seed, attempt + 1);
  }
}

}  // namespace edgetune
