// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace edgetune {

std::vector<std::string> split(const std::string& text, char delim);
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);
std::string trim(const std::string& text);
bool starts_with(const std::string& text, const std::string& prefix);

/// Strict base-10 integer parse: the whole string must be one number.
/// Returns false (leaving *out untouched) on empty, partial, or
/// out-of-range input.
bool parse_int(const std::string& text, int* out);

/// printf-style double formatting with a fixed number of decimals.
std::string format_double(double value, int decimals);

/// "1.2 K", "3.4 M", "5.6 G" style human-readable magnitudes.
std::string human_count(double value);

}  // namespace edgetune
