// SimClock: virtual time. All device runtimes and energies in this repo are
// *simulated* seconds/Joules produced by the cost model (DESIGN.md §5), so
// minutes of paper-scale tuning execute in milliseconds of wall time.
#pragma once

#include <algorithm>
#include <cassert>

namespace edgetune {

class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time, in seconds since construction/reset.
  [[nodiscard]] double now() const noexcept { return now_s_; }

  /// Advances time by `dt` seconds (dt >= 0).
  void advance(double dt) noexcept {
    assert(dt >= 0.0);
    now_s_ += std::max(0.0, dt);
  }

  /// Jumps to an absolute time not before `now()`.
  void advance_to(double t) noexcept { now_s_ = std::max(now_s_, t); }

  void reset() noexcept { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace edgetune
