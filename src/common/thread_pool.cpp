#include "common/thread_pool.hpp"

#include <algorithm>

namespace edgetune {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!(tasks_.empty() && active_ == 0)) idle_cv_.wait(mutex_);
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return tasks_.size() + active_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!(stopping_ || !tasks_.empty())) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();  // mutex_ released: tasks may re-enter submit()
    {
      MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace edgetune
