#include "common/thread_pool.hpp"

#include <algorithm>

namespace edgetune {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return tasks_.size() + active_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace edgetune
