#include "common/retry.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace edgetune {

bool retryable_code(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

double retry_backoff_s(const RetryPolicy& policy, std::uint64_t seed,
                       int next_attempt) {
  if (next_attempt < 1) next_attempt = 1;
  const double multiplier = std::max(1.0, policy.backoff_multiplier);
  double base = std::max(0.0, policy.initial_backoff_s) *
                std::pow(multiplier, next_attempt - 1);
  if (policy.max_backoff_s > 0) base = std::min(base, policy.max_backoff_s);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0 || base == 0) return base;
  // Dedicated stream per (seed, attempt): the draw is independent of any
  // other RNG consumer, so adding retries never perturbs the search stream.
  Rng rng(seed ^ (0xd1b54a32d192ed03ULL *
                  static_cast<std::uint64_t>(next_attempt)));
  return base * (1.0 - jitter + 2.0 * jitter * rng.uniform());
}

}  // namespace edgetune
