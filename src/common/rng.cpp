#include "common/rng.hpp"

#include <string>

namespace edgetune {

std::uint64_t stable_hash64(const void* data, std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace edgetune
