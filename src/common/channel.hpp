// Bounded MPMC channel used for the asynchronous link between the Model
// Tuning Server and the Inference Tuning Server (paper §3.1: "asynchronous
// communication among the model and inference server is thus the key").
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace edgetune {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns false if the channel was closed.
  bool send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send. Returns false when full or closed.
  bool try_send(T value) {
    std::lock_guard lock(mutex_);
    if (closed_ || full_locked()) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Closes the channel: senders fail, receivers drain then get nullopt.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  [[nodiscard]] bool full_locked() const {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace edgetune
