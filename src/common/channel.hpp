// Bounded MPMC channel used for the asynchronous link between the Model
// Tuning Server and the Inference Tuning Server (paper §3.1: "asynchronous
// communication among the model and inference server is thus the key").
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.hpp"

namespace edgetune {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns false if the channel was closed.
  bool send(T value) EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!(closed_ || !full_locked())) not_full_.wait(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send. Returns false when full or closed.
  bool try_send(T value) EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || full_locked()) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> receive() EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!(closed_ || !queue_.empty())) not_empty_.wait(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Closes the channel: senders fail, receivers drain then get nullopt.
  void close() EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return queue_.size();
  }

 private:
  [[nodiscard]] bool full_locked() const EDGETUNE_REQUIRES(mutex_) {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> queue_ EDGETUNE_GUARDED_BY(mutex_);
  std::size_t capacity_;  // immutable after construction
  bool closed_ EDGETUNE_GUARDED_BY(mutex_) = false;
};

}  // namespace edgetune
