#include "common/flags.hpp"

#include <cassert>
#include <cstdlib>

#include "common/strings.hpp"

namespace edgetune {

FlagParser& FlagParser::define(std::string name, std::string default_value,
                               std::string help) {
  order_.push_back(name);
  flags_[std::move(name)] =
      Flag{default_value, std::move(default_value), std::move(help)};
  return *this;
}

Status FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::invalid_argument("unknown flag --" + name);
    }
    if (!has_value) {
      // `--flag value` unless the next token is another flag or absent;
      // bare booleans become "true".
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
  }
  return Status::ok();
}

const std::string& FlagParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && "flag not defined");
  return it->second.value;
}

double FlagParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

bool FlagParser::get_bool(const std::string& name) const {
  const std::string& v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string FlagParser::help() const {
  std::string out;
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name;
    out.append(name.size() < 18 ? 18 - name.size() : 1, ' ');
    out += flag.help + " (default: " + flag.default_value + ")\n";
  }
  return out;
}

}  // namespace edgetune
