// Status / Result<T>: exception-free error propagation across library
// boundaries (Core Guidelines E.25-adjacent: library usable when callers
// compile with -fno-exceptions).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace edgetune {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kCancelled,
  kDeadlineExceeded,
  kAlreadyExists,
  kIo,
  kResourceExhausted,
};

/// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
const char* status_code_name(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (no allocation).
/// Class-level [[nodiscard]]: every function returning Status is
/// no-discard without per-declaration annotation, so a dropped error is a
/// compile warning (-Werror in CI) in every build mode; the linter's
/// unchecked-status pass covers the configurations the compiler never
/// sees (DESIGN §5.8).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status not_found(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status out_of_range(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status failed_precondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status deadline_exceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status already_exists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status io(std::string msg) {
    return {StatusCode::kIo, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return code_ == StatusCode::kOk;
  }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  /// "OK" or "CODE_NAME: message".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error Status. `value()` asserts on error in debug builds;
/// callers must check `ok()` first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result(Status) requires an error status");
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagate errors: `ET_RETURN_IF_ERROR(expr_returning_status);`
#define ET_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::edgetune::Status et_status_ = (expr);       \
    if (!et_status_.is_ok()) return et_status_;   \
  } while (false)

// `ET_ASSIGN_OR_RETURN(auto v, expr_returning_result);`
#define ET_CONCAT_INNER(a, b) a##b
#define ET_CONCAT(a, b) ET_CONCAT_INNER(a, b)
#define ET_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  decl = std::move(tmp).value()
#define ET_ASSIGN_OR_RETURN(decl, expr) \
  ET_ASSIGN_OR_RETURN_IMPL(ET_CONCAT(et_result_, __LINE__), decl, expr)

}  // namespace edgetune
