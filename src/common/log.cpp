#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.hpp"

namespace edgetune {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes writes to stderr so concurrent log lines never interleave.
// stderr itself is the guarded resource; there is no member to mark
// EDGETUNE_GUARDED_BY, hence the lint escape.
Mutex g_emit_mutex;  // NOLINT(guarded-by)

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[edgetune %s] %s\n", level_tag(level),
               message.c_str());
}
}  // namespace detail

}  // namespace edgetune
