// Crash-durable file primitives (DESIGN §5.9).
//
// Every persistence path in the repo (historical-cache shards, routine
// profiles, the trial journal, report writing) goes through
// durable_write_file: write to a temp file, fsync the file, rename over the
// target, fsync the parent directory. The historical tmp+rename pattern
// alone survives a crash mid-write, but NOT a power loss shortly after the
// rename — without the fsyncs the filesystem may commit the rename before
// the data blocks, leaving a zero-length or garbage "database" behind. The
// `raw-persistence` lint rule flags ofstream+rename sequences that bypass
// this helper.
//
// crc32 is the record checksum of the trial journal (tuning/journal.hpp):
// the standard reflected CRC-32 (polynomial 0xEDB88320, the zlib/PNG one),
// table-driven, no dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace edgetune {

/// CRC-32 (reflected, poly 0xEDB88320, init/final xor 0xFFFFFFFF) of
/// `len` bytes. Pass a previous result as `seed_crc` to checksum a stream
/// incrementally; the default starts a fresh checksum.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed_crc = 0) noexcept;

/// Atomically and durably replaces `path` with `bytes`:
///   write `path`.tmp → fsync it → rename onto `path` → fsync parent dir.
/// After an OK return the new content survives both a process crash and a
/// power loss; on error the previous content of `path` is untouched (the
/// temp file is cleaned up best-effort).
[[nodiscard]] Status durable_write_file(const std::string& path,
                                        const std::string& bytes);

/// fsyncs the directory containing `path` ("." when `path` has no slash),
/// making a previously fsynced rename/create of that entry itself durable.
/// Exposed for the append-only journal, which syncs its parent once at
/// creation rather than per append.
[[nodiscard]] Status fsync_parent_dir(const std::string& path);

}  // namespace edgetune
