#include "common/shutdown.hpp"

#include <csignal>
#include <cstdlib>

#include <atomic>

namespace edgetune {

namespace {

std::atomic<int> g_shutdown_signal{0};

extern "C" void shutdown_signal_handler(int signal) {
  int expected = 0;
  if (!g_shutdown_signal.compare_exchange_strong(
          expected, signal, std::memory_order_relaxed)) {
    // Second signal: the graceful path is taking too long (or is stuck) —
    // honor the operator's insistence. _Exit is async-signal-safe.
    std::_Exit(128 + signal);
  }
}

}  // namespace

void install_shutdown_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() noexcept {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() noexcept {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void request_shutdown(int signal) noexcept {
  g_shutdown_signal.store(signal, std::memory_order_relaxed);
}

void clear_shutdown() noexcept {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace edgetune
