// Portable Clang Thread Safety Analysis annotations (DESIGN §5.3).
//
// Under clang, `-Wthread-safety` proves the repo's lock discipline at
// compile time: every member the annotations mark EDGETUNE_GUARDED_BY a
// mutex may only be touched while that mutex is held, functions marked
// EDGETUNE_REQUIRES must be called with it held, and EDGETUNE_EXCLUDES
// encodes the PR-1 invariant that no lock is held across user callbacks
// (e.g. `optimize()` evaluation functions). GCC has no such analysis; every
// macro expands to nothing there, so the annotated code stays portable.
//
// The analysis only understands types that carry capability attributes, so
// this header also provides drop-in `Mutex` / `MutexLock` / `CondVar`
// wrappers over the std primitives. Use them instead of raw std::mutex in
// concurrent code — `tools/edgetune_lint` enforces that every mutex member
// has at least one EDGETUNE_GUARDED_BY user.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define EDGETUNE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EDGETUNE_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define EDGETUNE_CAPABILITY(x) EDGETUNE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define EDGETUNE_SCOPED_CAPABILITY EDGETUNE_THREAD_ANNOTATION(scoped_lockable)

/// Marks a data member as protected by the given mutex: reads and writes
/// are only legal while it is held.
#define EDGETUNE_GUARDED_BY(x) EDGETUNE_THREAD_ANNOTATION(guarded_by(x))

/// Like EDGETUNE_GUARDED_BY, but guards the data a pointer member points to.
#define EDGETUNE_PT_GUARDED_BY(x) EDGETUNE_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function must be called with the listed capabilities held (and does
/// not release them).
#define EDGETUNE_REQUIRES(...) \
  EDGETUNE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define EDGETUNE_ACQUIRE(...) \
  EDGETUNE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (they must be held on
/// entry).
#define EDGETUNE_RELEASE(...) \
  EDGETUNE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability only when it returns the given
/// value: EDGETUNE_TRY_ACQUIRE(true) / EDGETUNE_TRY_ACQUIRE(true, mutex).
#define EDGETUNE_TRY_ACQUIRE(...) \
  EDGETUNE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The listed capabilities must NOT be held when the function is called.
/// This is how the no-lock-across-callback invariant is written down: a
/// method that invokes user code (an EvalFn, an optimize() callback) is
/// EDGETUNE_EXCLUDES(its mutexes), so holding one at a call site is a
/// compile error under clang.
#define EDGETUNE_EXCLUDES(...) \
  EDGETUNE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define EDGETUNE_RETURN_CAPABILITY(x) \
  EDGETUNE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Use only for
/// code the analysis cannot express (and say why in a comment).
#define EDGETUNE_NO_THREAD_SAFETY_ANALYSIS \
  EDGETUNE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace edgetune {

class CondVar;

/// std::mutex carrying the capability attribute so clang can track it.
class EDGETUNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EDGETUNE_ACQUIRE() { mutex_.lock(); }
  void unlock() EDGETUNE_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() EDGETUNE_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  // The wrapped native mutex IS the capability; there is no guarded
  // sibling member to annotate here.
  std::mutex mutex_;  // NOLINT(guarded-by)
};

/// RAII lock over Mutex (the annotated std::lock_guard / std::unique_lock).
class EDGETUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EDGETUNE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() EDGETUNE_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() takes the Mutex directly
/// (annotated EDGETUNE_REQUIRES) instead of a predicate lambda: callers
/// loop `while (!cond) cv.wait(mutex);` inside their own annotated scope,
/// which the analysis can check — a captured predicate body it could not.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires it before
  /// returning. The caller must hold `mutex` (e.g. via MutexLock).
  void wait(Mutex& mutex) EDGETUNE_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then release() the
    // unique_lock so ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait with the same ownership contract as wait(). Returns false
  /// when the wait timed out, true when notified (or woken spuriously)
  /// first — callers re-check their predicate either way. Real time, so use
  /// it only for liveness decisions (detecting lost peers, bounding
  /// shutdown), never for anything that feeds simulated accounting.
  bool wait_for_seconds(Mutex& mutex, double seconds)
      EDGETUNE_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::duration<double>(seconds));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace edgetune
