#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace edgetune {

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool parse_int(const std::string& text, int* out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = first + text.size();
  int value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return false;
  *out = value;
  return true;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string human_count(double value) {
  const char* suffixes[] = {"", " K", " M", " G", " T"};
  int idx = 0;
  double v = std::fabs(value);
  while (v >= 1000.0 && idx < 4) {
    v /= 1000.0;
    ++idx;
  }
  if (value < 0) v = -v;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f%s", v, suffixes[idx]);
  return buf;
}

}  // namespace edgetune
