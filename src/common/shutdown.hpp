// Cooperative SIGINT/SIGTERM shutdown (DESIGN §5.9).
//
// Process mains (the CLI, service hosts) install the handlers once; long
// loops in the library poll shutdown_requested() and wind down cleanly:
// stop admitting new work, flush the journal and caches through the normal
// destructor path, and exit with 128+signal so a supervisor can distinguish
// "interrupted, resume me" from real failures. A second signal while the
// first is still draining hard-exits immediately (the conventional
// double-Ctrl-C escape hatch).
//
// The flag is a plain process-wide atomic — async-signal-safe to set,
// lock-free to poll, and settable directly by tests via request_shutdown().
#pragma once

namespace edgetune {

/// Installs SIGINT and SIGTERM handlers that record the signal and, on a
/// second delivery, _Exit(128+signal) immediately. Idempotent.
void install_shutdown_signal_handlers();

/// True once a shutdown signal was delivered (or request_shutdown called).
[[nodiscard]] bool shutdown_requested() noexcept;

/// The first shutdown signal received, or 0. 128+shutdown_signal() is the
/// conventional exit code for "terminated by that signal".
[[nodiscard]] int shutdown_signal() noexcept;

/// Test/library hook: marks shutdown as requested as if `signal` had been
/// delivered. clear_shutdown() re-arms everything (tests only — a real
/// process stays shut down).
void request_shutdown(int signal) noexcept;
void clear_shutdown() noexcept;

}  // namespace edgetune
