#include "common/fault.hpp"

#include <cstdlib>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace edgetune {

namespace {

std::uint64_t hash_view(std::string_view s) noexcept {
  return stable_hash64(s.data(), s.size());
}

}  // namespace

Result<StatusCode> status_code_from_name(const std::string& name) {
  static constexpr struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"out_of_range", StatusCode::kOutOfRange},
      {"failed_precondition", StatusCode::kFailedPrecondition},
      {"internal", StatusCode::kInternal},
      {"unavailable", StatusCode::kUnavailable},
      {"cancelled", StatusCode::kCancelled},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
      {"already_exists", StatusCode::kAlreadyExists},
      {"io", StatusCode::kIo},
      {"resource_exhausted", StatusCode::kResourceExhausted},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.name) return entry.code;
  }
  return Status::invalid_argument("unknown status code '" + name +
                                  "' (want e.g. unavailable, "
                                  "deadline_exceeded, io, internal)");
}

Result<FaultSpec> parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  bool saw_rate = false;
  for (const std::string& raw : split(text, ',')) {
    const std::string field = trim(raw);
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::invalid_argument("fault spec field '" + field +
                                      "' is not key=value");
    }
    const std::string key = trim(field.substr(0, eq));
    const std::string value = trim(field.substr(eq + 1));
    if (key == "site") {
      spec.site = value;
    } else if (key == "rate") {
      char* end = nullptr;
      spec.rate = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || spec.rate < 0 ||
          spec.rate > 1) {
        return Status::invalid_argument("fault rate '" + value +
                                        "' must be a number in [0, 1]");
      }
      saw_rate = true;
    } else if (key == "fail_first") {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || n < 0) {
        return Status::invalid_argument("fault fail_first '" + value +
                                        "' must be a non-negative integer");
      }
      spec.fail_first = static_cast<int>(n);
    } else if (key == "code") {
      ET_ASSIGN_OR_RETURN(spec.code, status_code_from_name(value));
    } else {
      return Status::invalid_argument(
          "unknown fault spec field '" + key +
          "' (want site, rate, fail_first, code)");
    }
  }
  if (spec.site.empty()) {
    return Status::invalid_argument("fault spec '" + text +
                                    "' is missing site=");
  }
  if (!saw_rate && spec.fail_first == 0) {
    return Status::invalid_argument("fault spec for site '" + spec.site +
                                    "' needs rate= or fail_first=");
  }
  return spec;
}

Result<std::vector<FaultSpec>> parse_fault_plan(const std::string& text) {
  std::vector<FaultSpec> plan;
  for (const std::string& part : split(text, ';')) {
    if (trim(part).empty()) continue;
    ET_ASSIGN_OR_RETURN(FaultSpec spec, parse_fault_spec(part));
    for (const FaultSpec& existing : plan) {
      if (existing.site == spec.site) {
        return Status::invalid_argument(
            "duplicate fault spec for site \"" + spec.site +
            "\": a plan may hold one spec per site (which of two specs "
            "fired used to depend silently on their order); merge them "
            "into a single spec");
      }
    }
    plan.push_back(std::move(spec));
  }
  return plan;
}

FaultInjector::Site::Site(FaultSpec s)
    : spec(std::move(s)), site_hash(stable_hash64(spec.site)) {}

FaultInjector::FaultInjector(std::uint64_t seed, std::vector<FaultSpec> plan)
    : seed_(seed) {
  sites_.reserve(plan.size());
  for (FaultSpec& spec : plan) sites_.emplace_back(std::move(spec));
}

FaultInjector::FaultInjector(const FaultInjector& other)
    : seed_(other.seed_), sites_(other.sites_) {}

FaultInjector& FaultInjector::operator=(const FaultInjector& other) {
  seed_ = other.seed_;
  sites_ = other.sites_;
  return *this;
}

Status FaultInjector::fire(std::string_view site, std::string_view key,
                           int attempt) const {
  if (sites_.empty()) return Status::ok();
  return fire(site, hash_view(key), attempt);
}

Status FaultInjector::fire(std::string_view site, std::uint64_t key_hash,
                           int attempt) const {
  if (sites_.empty()) return Status::ok();
  const std::uint64_t site_hash = hash_view(site);
  for (const Site& s : sites_) {
    if (s.site_hash != site_hash || s.spec.site != site) continue;
    bool inject = false;
    if (s.spec.fail_first > 0) {
      inject = attempt < s.spec.fail_first;
    } else if (s.spec.rate > 0) {
      // Per-(site, key) stream; distinct attempts draw from distinct points
      // of it so a retried attempt gets an independent decision.
      Rng rng(seed_ ^ site_hash ^ key_hash ^
              (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt + 1)));
      inject = rng.uniform() < s.spec.rate;
    }
    if (inject) {
      s.injected.fetch_add(1, std::memory_order_relaxed);
      return Status(s.spec.code,
                    "injected fault at " + s.spec.site + " (attempt " +
                        std::to_string(attempt) + ")");
    }
  }
  return Status::ok();
}

int FaultInjector::fail_first(std::string_view site) const noexcept {
  for (const Site& s : sites_) {
    if (s.spec.site == site) return s.spec.fail_first;
  }
  return 0;
}

std::int64_t FaultInjector::injected(std::string_view site) const noexcept {
  for (const Site& s : sites_) {
    if (s.spec.site == site) return s.injected.load(std::memory_order_relaxed);
  }
  return 0;
}

}  // namespace edgetune
