// Machine-readable tuning reports: serialize a TuningReport to JSON (and
// back) so tuning jobs can be archived, diffed, and post-processed.
#pragma once

#include "common/json.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {

/// Full-fidelity JSON encoding of a report (config maps, trial log,
/// inference recommendation, totals).
Json report_to_json(const TuningReport& report);

/// Inverse of report_to_json. Tolerates missing optional fields.
Result<TuningReport> report_from_json(const Json& json);

/// Writes report JSON (pretty) to `path`.
Status save_report(const TuningReport& report, const std::string& path);

/// Reads a report back from `path`.
Result<TuningReport> load_report(const std::string& path);

/// Writes the trial log as CSV (one row per trial, config keys as columns)
/// for spreadsheet/plotting workflows.
Status save_trials_csv(const TuningReport& report, const std::string& path);

// --- Fleet wire marshaling (DESIGN §5.5). EvalRequests travel coordinator
// -> worker inside BATCH frames; TrialMeasurements travel back in RESULT
// frames. Numbers round-trip exactly (%.17g), so a measurement marshaled
// through the wire is bit-identical to one taken in-process — the basis of
// the fleet's byte-parity guarantee.

Json eval_request_to_json(const EvalRequest& request);
/// Malformed input decodes to kUnavailable: the coordinator treats an
/// undecodable worker like a lost one and reschedules the trial.
Result<EvalRequest> eval_request_from_json(const Json& json);

Json trial_measurement_to_json(const TrialMeasurement& measurement);
Result<TrialMeasurement> trial_measurement_from_json(const Json& json);

}  // namespace edgetune
