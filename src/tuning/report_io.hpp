// Machine-readable tuning reports: serialize a TuningReport to JSON (and
// back) so tuning jobs can be archived, diffed, and post-processed.
#pragma once

#include "common/json.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {

/// Full-fidelity JSON encoding of a report (config maps, trial log,
/// inference recommendation, totals).
Json report_to_json(const TuningReport& report);

/// Inverse of report_to_json. Tolerates missing optional fields.
Result<TuningReport> report_from_json(const Json& json);

/// Writes report JSON (pretty) to `path`.
Status save_report(const TuningReport& report, const std::string& path);

/// Reads a report back from `path`.
Result<TuningReport> load_report(const std::string& path);

/// Writes the trial log as CSV (one row per trial, config keys as columns)
/// for spreadsheet/plotting workflows.
Status save_trials_csv(const TuningReport& report, const std::string& path);

}  // namespace edgetune
