#include "tuning/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/thread_pool.hpp"
#include "tuning/billing.hpp"

namespace edgetune {

namespace {

/// Tier-2 grid over num_gpus for the hierarchical baseline: powers of two up
/// to the train device's GPU count, plus the count itself — the same values
/// the onefold space explores (model_search_space()), so the two systems
/// compare like for like on any device, not just 8-GPU servers.
std::vector<double> tier2_gpu_grid(int max_gpus) {
  std::vector<double> grid;
  for (int gpus = 1; gpus <= max_gpus; gpus *= 2) {
    grid.push_back(gpus);
  }
  if (!grid.empty() && grid.back() != max_gpus) {
    grid.push_back(max_gpus);
  }
  return grid;
}

}  // namespace

Result<TuningReport> run_tune_baseline(EdgeTuneOptions options) {
  options.inference_aware = false;
  options.tune_system_params = false;
  options.objective_mode = ObjectiveMode::kAccuracyOnly;
  options.power_cap_w = 0;
  EdgeTune tuner(std::move(options));
  ET_ASSIGN_OR_RETURN(TuningReport report, tuner.run());
  report.system = "tune";
  // Tune outputs no inference recommendation: deployment falls back to the
  // default single-sample, single-core configuration.
  Config default_inference = {{"inf_batch", 1},
                              {"cores", 1},
                              {"freq_ghz", 0.0}};
  ET_ASSIGN_OR_RETURN(
      report.inference,
      evaluate_inference_at(tuner.options(), report.best_config,
                            default_inference));
  return report;
}

Result<TuningReport> run_hyperpower_baseline(EdgeTuneOptions options,
                                             double power_cap_w) {
  options.inference_aware = false;
  options.tune_system_params = false;
  options.objective_mode = ObjectiveMode::kAccuracyOnly;
  options.search_algorithm = "tpe";
  options.power_cap_w = power_cap_w;
  // HyperPower evaluates candidates from short trainings; halve the budget.
  options.hyperband.max_resource =
      std::max(1.0, options.hyperband.max_resource / 2.0);
  EdgeTune tuner(std::move(options));
  ET_ASSIGN_OR_RETURN(TuningReport report, tuner.run());
  report.system = "hyperpower";
  return report;
}

Result<TuningReport> run_hierarchical(EdgeTuneOptions options) {
  if (!options.journal_path.empty()) {
    // Hierarchical runs TWO searches (tier 1 + tier 2); one journal path
    // cannot record both, so refuse instead of silently journaling half.
    return Status::invalid_argument(
        "the trial journal is not supported for --system hierarchical "
        "(it runs two separate searches)");
  }
  // Tier 1: hyperparameters only, system parameters fixed at defaults.
  EdgeTuneOptions tier1 = options;
  tier1.tune_system_params = false;
  EdgeTune tuner1(tier1);
  ET_ASSIGN_OR_RETURN(TuningReport report1, tuner1.run());

  // Tier 2: system parameters only, hyperparameters pinned to tier 1's best.
  // A grid over num_gpus is exhaustive and cheap.
  EdgeTuneOptions tier2 = options;
  tier2.seed = options.seed ^ 0x9e3779b9ULL;
  EdgeTune tuner2(tier2);  // reuse runner machinery
  TrialRunnerOptions runner_opts = tuner2.options().runner;
  TrialRunner runner(runner_opts);
  ET_ASSIGN_OR_RETURN(std::unique_ptr<BudgetPolicy> policy,
                      make_budget_policy(options.budget_policy));
  const TrialBudget full_budget = policy->at(options.hyperband.max_resource);

  TuningReport report = std::move(report1);
  report.system = "hierarchical";

  // The whole tier-2 grid is one EvalRequest batch through the shared
  // BatchEvalFn path: its members are independent (the same winning
  // hyperparameters at different num_gpus), so with trial_workers > 1 they
  // run concurrently on a pool exactly like a HyperBand rung — previously
  // this was a serial for-loop that bought nothing from --trial-workers.
  struct Tier2Eval {
    Status status = Status::ok();
    TrialOutcome outcome;
    std::string arch_id;
    InferenceRecommendation rec;
    double objective = std::numeric_limits<double>::infinity();
  };
  std::vector<EvalRequest> batch;
  for (double gpus : tier2_gpu_grid(options.train_device.num_gpus)) {
    Config config = report.best_config;
    config["num_gpus"] = gpus;
    batch.push_back({static_cast<int>(batch.size()), std::move(config),
                     options.hyperband.max_resource});
  }
  std::vector<Tier2Eval> evals(batch.size());

  const TrialEvalFn eval_one = [&](const EvalRequest& request) -> double {
    Tier2Eval& out = evals[static_cast<std::size_t>(request.trial_index)];
    Result<TrialOutcome> outcome = runner.run(request.config, full_budget);
    if (!outcome.ok()) {
      out.status = outcome.status();
      return out.objective;
    }
    Result<ArchSpec> arch = runner.arch_for(request.config);
    if (!arch.ok()) {
      out.status = arch.status();
      return out.objective;
    }
    out.arch_id = arch.value().id;
    Result<InferenceRecommendation> rec =
        tuner2.inference_server().tune(arch.value());
    if (!rec.ok()) {
      out.status = rec.status();
      return out.objective;
    }
    out.outcome = std::move(outcome).value();
    out.rec = std::move(rec).value();
    out.objective = tuning_objective(options.tuning_metric, out.outcome,
                                     out.rec, options.inference_aware);
    return out.objective;
  };

  const int workers = std::max(1, options.trial_workers);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1 && batch.size() > 1) {
    pool = std::make_unique<ThreadPool>(workers);
  }
  const BatchEvalFn batch_eval = pool ? parallel_batch_eval(eval_one, *pool)
                                      : serial_batch_eval(eval_one);
  batch_eval(batch);

  // Re-assign the single-flight tuning bill by content before committing:
  // the grid members all share one architecture (arch_for depends only on
  // the pinned model hyperparameters), so with trial_workers > 1 whichever
  // member happened to win the flight used to carry the whole bill — the
  // report then differed run to run and from the serial walk. After
  // resolution the earliest member pays, exactly like the serial run where
  // it probes the cache first, misses, and leads the one real search. With
  // the cache disabled there are no flights to share: every member ran its
  // own search and keeps its own observed bill.
  if (options.inference.use_cache) {
    std::vector<FlightMember> members(evals.size());
    for (std::size_t i = 0; i < evals.size(); ++i) {
      const Tier2Eval& eval = evals[i];
      FlightMember& member = members[i];
      member.arch_id = eval.arch_id;
      member.trained = eval.status.is_ok();
      member.has_rec = eval.status.is_ok();
      member.observed_tuning_s = eval.rec.tuning_time_s;
      member.observed_tuning_energy_j = eval.rec.tuning_energy_j;
    }
    const std::vector<BillingShare> shares = resolve_flight_billing(members);
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (!evals[i].status.is_ok()) continue;
      evals[i].rec.from_cache = shares[i].from_cache;
      evals[i].rec.tuning_time_s = shares[i].tuning_time_s;
      evals[i].rec.tuning_energy_j = shares[i].tuning_energy_j;
    }
  }

  // Commit in submission order. Tier-2 wall clock is the makespan of FIFO
  // list scheduling over `workers` (with 1 worker: the plain sum), and each
  // trial is charged its full span: training time PLUS the tail of the
  // inference tuning that outlives it — the stall the model server charges
  // via inference_stall_s. The seed added only train_time_s, silently
  // dropping that stall and flattering the hierarchical baseline.
  std::vector<double> worker_load(static_cast<std::size_t>(workers), 0.0);
  double best_objective = std::numeric_limits<double>::infinity();
  Config best_config = report.best_config;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Tier2Eval& eval = evals[i];
    if (!eval.status.is_ok()) return eval.status;
    const double stall_s =
        std::max(0.0, eval.rec.tuning_time_s - eval.outcome.train_time_s);
    *std::min_element(worker_load.begin(), worker_load.end()) +=
        eval.outcome.train_time_s + stall_s;
    report.tuning_energy_j +=
        eval.outcome.train_energy_j + eval.rec.tuning_energy_j;
    TrialLog log;
    log.id = static_cast<int>(report.trials.size());
    log.config = batch[i].config;
    log.resource = options.hyperband.max_resource;
    log.budget = full_budget;
    log.accuracy = eval.outcome.accuracy;
    log.duration_s = eval.outcome.train_time_s;
    log.energy_j = eval.outcome.train_energy_j;
    log.objective = eval.objective;
    log.inference_cached = eval.rec.from_cache;
    log.inference_tuning_s = eval.rec.tuning_time_s;
    log.inference_stall_s = stall_s;
    report.trials.push_back(std::move(log));
    if (eval.objective < best_objective) {
      best_objective = eval.objective;
      best_config = batch[i].config;
      report.inference = std::move(eval.rec);
    }
  }
  if (!worker_load.empty()) {
    report.tuning_runtime_s +=
        *std::max_element(worker_load.begin(), worker_load.end());
  }
  report.best_config = best_config;
  report.best_objective = best_objective;
  return report;
}

Result<InferenceRecommendation> evaluate_inference_at(
    const EdgeTuneOptions& options, const Config& model_config,
    const Config& inference_config) {
  TrialRunnerOptions runner_opts = options.runner;
  runner_opts.workload = options.workload;
  runner_opts.train_device = options.train_device;
  TrialRunner runner(runner_opts);
  ET_ASSIGN_OR_RETURN(ArchSpec arch, runner.arch_for(model_config));

  CostModel edge(options.edge_device);
  InferenceConfig inf;
  const auto get = [&](const char* key, double fallback) {
    auto it = inference_config.find(key);
    return it == inference_config.end() ? fallback : it->second;
  };
  inf.batch_size = static_cast<std::int64_t>(get("inf_batch", 1));
  inf.cores = static_cast<int>(get("cores", 1));
  inf.freq_ghz = get("freq_ghz", 0.0);
  ET_ASSIGN_OR_RETURN(CostEstimate est, edge.inference_cost(arch, inf));

  InferenceRecommendation rec;
  rec.config = inference_config;
  rec.latency_s = est.latency_s;
  rec.throughput_sps = est.throughput_sps;
  rec.energy_per_sample_j = est.energy_per_sample_j(inf.batch_size);
  return rec;
}

}  // namespace edgetune
