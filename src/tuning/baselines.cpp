#include "tuning/baselines.hpp"

#include <algorithm>
#include <cmath>

namespace edgetune {

Result<TuningReport> run_tune_baseline(EdgeTuneOptions options) {
  options.inference_aware = false;
  options.tune_system_params = false;
  options.objective_mode = ObjectiveMode::kAccuracyOnly;
  options.power_cap_w = 0;
  EdgeTune tuner(std::move(options));
  ET_ASSIGN_OR_RETURN(TuningReport report, tuner.run());
  report.system = "tune";
  // Tune outputs no inference recommendation: deployment falls back to the
  // default single-sample, single-core configuration.
  Config default_inference = {{"inf_batch", 1},
                              {"cores", 1},
                              {"freq_ghz", 0.0}};
  ET_ASSIGN_OR_RETURN(
      report.inference,
      evaluate_inference_at(tuner.options(), report.best_config,
                            default_inference));
  return report;
}

Result<TuningReport> run_hyperpower_baseline(EdgeTuneOptions options,
                                             double power_cap_w) {
  options.inference_aware = false;
  options.tune_system_params = false;
  options.objective_mode = ObjectiveMode::kAccuracyOnly;
  options.search_algorithm = "tpe";
  options.power_cap_w = power_cap_w;
  // HyperPower evaluates candidates from short trainings; halve the budget.
  options.hyperband.max_resource =
      std::max(1.0, options.hyperband.max_resource / 2.0);
  EdgeTune tuner(std::move(options));
  ET_ASSIGN_OR_RETURN(TuningReport report, tuner.run());
  report.system = "hyperpower";
  return report;
}

Result<TuningReport> run_hierarchical(EdgeTuneOptions options) {
  // Tier 1: hyperparameters only, system parameters fixed at defaults.
  EdgeTuneOptions tier1 = options;
  tier1.tune_system_params = false;
  EdgeTune tuner1(tier1);
  ET_ASSIGN_OR_RETURN(TuningReport report1, tuner1.run());

  // Tier 2: system parameters only, hyperparameters pinned to tier 1's best.
  // A grid over num_gpus is exhaustive and cheap.
  EdgeTuneOptions tier2 = options;
  tier2.seed = options.seed ^ 0x9e3779b9ULL;
  EdgeTune tuner2(tier2);  // reuse runner machinery
  TrialRunnerOptions runner_opts = tuner2.options().runner;
  TrialRunner runner(runner_opts);
  ET_ASSIGN_OR_RETURN(std::unique_ptr<BudgetPolicy> policy,
                      make_budget_policy(options.budget_policy));
  const TrialBudget full_budget = policy->at(options.hyperband.max_resource);

  TuningReport report = std::move(report1);
  report.system = "hierarchical";

  std::vector<double> gpu_options = {1, 2, 4, 8};
  const int max_gpus = options.train_device.num_gpus;
  double best_objective = std::numeric_limits<double>::infinity();
  Config best_config = report.best_config;
  for (double gpus : gpu_options) {
    if (gpus > max_gpus) continue;
    Config config = report.best_config;
    config["num_gpus"] = gpus;
    ET_ASSIGN_OR_RETURN(TrialOutcome outcome,
                        runner.run(config, full_budget));
    ET_ASSIGN_OR_RETURN(ArchSpec arch, runner.arch_for(config));
    ET_ASSIGN_OR_RETURN(InferenceRecommendation rec,
                        tuner2.inference_server().tune(arch));
    const double objective =
        tuning_objective(options.tuning_metric, outcome, rec,
                         options.inference_aware);
    report.tuning_runtime_s += outcome.train_time_s;
    report.tuning_energy_j += outcome.train_energy_j + rec.tuning_energy_j;
    TrialLog log;
    log.id = static_cast<int>(report.trials.size());
    log.config = config;
    log.resource = options.hyperband.max_resource;
    log.budget = full_budget;
    log.accuracy = outcome.accuracy;
    log.duration_s = outcome.train_time_s;
    log.energy_j = outcome.train_energy_j;
    log.objective = objective;
    report.trials.push_back(std::move(log));
    if (objective < best_objective) {
      best_objective = objective;
      best_config = config;
      report.inference = rec;
    }
  }
  report.best_config = best_config;
  report.best_objective = best_objective;
  return report;
}

Result<InferenceRecommendation> evaluate_inference_at(
    const EdgeTuneOptions& options, const Config& model_config,
    const Config& inference_config) {
  TrialRunnerOptions runner_opts = options.runner;
  runner_opts.workload = options.workload;
  runner_opts.train_device = options.train_device;
  TrialRunner runner(runner_opts);
  ET_ASSIGN_OR_RETURN(ArchSpec arch, runner.arch_for(model_config));

  CostModel edge(options.edge_device);
  InferenceConfig inf;
  const auto get = [&](const char* key, double fallback) {
    auto it = inference_config.find(key);
    return it == inference_config.end() ? fallback : it->second;
  };
  inf.batch_size = static_cast<std::int64_t>(get("inf_batch", 1));
  inf.cores = static_cast<int>(get("cores", 1));
  inf.freq_ghz = get("freq_ghz", 0.0);
  ET_ASSIGN_OR_RETURN(CostEstimate est, edge.inference_cost(arch, inf));

  InferenceRecommendation rec;
  rec.config = inference_config;
  rec.latency_s = est.latency_s;
  rec.throughput_sps = est.throughput_sps;
  rec.energy_per_sample_j = est.energy_per_sample_j(inf.batch_size);
  return rec;
}

}  // namespace edgetune
