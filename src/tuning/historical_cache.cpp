#include "tuning/historical_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"

namespace edgetune {

namespace {

Json rec_to_json(const InferenceRecommendation& rec) {
  JsonObject config;
  for (const auto& [name, value] : rec.config) config.emplace(name, value);
  JsonObject obj;
  obj.emplace("config", std::move(config));
  obj.emplace("latency_s", rec.latency_s);
  obj.emplace("throughput_sps", rec.throughput_sps);
  obj.emplace("energy_per_sample_j", rec.energy_per_sample_j);
  obj.emplace("peak_memory_bytes", rec.peak_memory_bytes);
  obj.emplace("tuning_time_s", rec.tuning_time_s);
  obj.emplace("tuning_energy_j", rec.tuning_energy_j);
  return Json(std::move(obj));
}

InferenceRecommendation rec_from_json(const Json& json) {
  InferenceRecommendation rec;
  if (const Json* config = json.find("config");
      config != nullptr && config->is_object()) {
    for (const auto& [name, value] : config->as_object()) {
      if (value.is_number()) rec.config[name] = value.as_number();
    }
  }
  rec.latency_s = json.get_number("latency_s", 0);
  rec.throughput_sps = json.get_number("throughput_sps", 0);
  rec.energy_per_sample_j = json.get_number("energy_per_sample_j", 0);
  rec.peak_memory_bytes = json.get_number("peak_memory_bytes", 0);
  rec.tuning_time_s = json.get_number("tuning_time_s", 0);
  rec.tuning_energy_j = json.get_number("tuning_energy_j", 0);
  rec.from_cache = true;
  return rec;
}

}  // namespace

HistoricalCache::HistoricalCache(std::string path, std::size_t flush_every)
    : path_(std::move(path)), flush_every_(std::max<std::size_t>(1, flush_every)) {
  std::ifstream in(path_);
  if (!in.good()) return;  // fresh database
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Json> parsed = Json::parse(buffer.str());
  if (!parsed.ok() || !parsed.value().is_object()) {
    // Quarantine, don't clobber: the next flush would overwrite whatever is
    // in the file, destroying the evidence (and any salvageable entries).
    in.close();
    const std::string quarantine = path_ + ".corrupt";
    if (std::rename(path_.c_str(), quarantine.c_str()) == 0) {
      ET_LOG_WARN << "historical cache at " << path_
                  << " is unreadable; quarantined to " << quarantine
                  << ", starting empty (" << parsed.status().to_string()
                  << ")";
    } else {
      ET_LOG_WARN << "historical cache at " << path_
                  << " is unreadable and could not be quarantined; "
                  << "starting empty (" << parsed.status().to_string() << ")";
    }
    return;
  }
  for (const auto& [key, value] : parsed.value().as_object()) {
    entries_.emplace(key, rec_from_json(value));
  }
}

std::string HistoricalCache::key(const std::string& arch_id,
                                 const std::string& device,
                                 MetricOfInterest objective) {
  return arch_id + "|" + device + "|" + metric_name(objective);
}

std::optional<InferenceRecommendation> HistoricalCache::lookup(
    const std::string& arch_id, const std::string& device,
    MetricOfInterest objective) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key(arch_id, device, objective));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  InferenceRecommendation rec = it->second;
  rec.from_cache = true;
  return rec;
}

HistoricalCache::~HistoricalCache() {
  MutexLock lock(mutex_);
  if (path_.empty() || dirty_ == 0) return;
  persist_best_effort_locked();
}

Status HistoricalCache::store(const std::string& arch_id,
                              const std::string& device,
                              MetricOfInterest objective,
                              const InferenceRecommendation& rec) {
  MutexLock lock(mutex_);
  entries_[key(arch_id, device, objective)] = rec;
  if (path_.empty()) return Status::ok();
  // Batched persistence: rewriting the whole database on every insert cost
  // O(n²) I/O across a run. Dirty entries are safe in memory until the next
  // periodic flush (or the final one in the destructor). A failed flush
  // degrades to memory-only for this batch — the entry IS stored, later
  // lookups hit it, and the next flush retries the whole file — instead of
  // converting a successful inference tune into an error for its caller.
  if (++dirty_ >= flush_every_) persist_best_effort_locked();
  return Status::ok();
}

void HistoricalCache::persist_best_effort_locked() const {
  Status status = save_locked();
  if (status.is_ok()) return;
  ++persist_failures_;
  if (!persist_warned_) {
    persist_warned_ = true;
    ET_LOG_WARN << "historical-cache flush to " << path_
                << " failed; continuing memory-only (" << status.to_string()
                << "); further failures logged at debug";
  } else {
    ET_LOG_DEBUG << "historical-cache flush to " << path_
                 << " failed again: " << status.to_string();
  }
}

std::size_t HistoricalCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t HistoricalCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::size_t HistoricalCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

void HistoricalCache::record_external_hit() const {
  MutexLock lock(mutex_);
  ++hits_;
}

std::size_t HistoricalCache::persist_failures() const {
  MutexLock lock(mutex_);
  return persist_failures_;
}

Status HistoricalCache::save() const {
  MutexLock lock(mutex_);
  if (path_.empty() || dirty_ == 0) return Status::ok();
  return save_locked();
}

Status HistoricalCache::save_locked() const {
  const std::size_t flush_number = flushes_++;
  if (Status injected = injector_.fire(fault_site::kCachePersist, path_,
                                       static_cast<int>(flush_number));
      !injected.is_ok()) {
    return injected;
  }
  JsonObject root;
  for (const auto& [key, rec] : entries_) {
    root.emplace(key, rec_to_json(rec));
  }
  // Write-to-temp + rename: truncating the database in place meant a crash
  // mid-write destroyed every previously persisted result.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      return Status::io("cannot write historical cache to " + tmp);
    }
    out << Json(std::move(root)).dump_pretty() << '\n';
    if (!out.good()) {
      return Status::io("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::io("cannot rename " + tmp + " to " + path_);
  }
  dirty_ = 0;
  return Status::ok();
}

}  // namespace edgetune
