#include "tuning/historical_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/durable_io.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace edgetune {

namespace {

Json rec_to_json(const InferenceRecommendation& rec) {
  JsonObject config;
  for (const auto& [name, value] : rec.config) config.emplace(name, value);
  JsonObject obj;
  obj.emplace("config", std::move(config));
  obj.emplace("latency_s", rec.latency_s);
  obj.emplace("throughput_sps", rec.throughput_sps);
  obj.emplace("energy_per_sample_j", rec.energy_per_sample_j);
  obj.emplace("peak_memory_bytes", rec.peak_memory_bytes);
  obj.emplace("tuning_time_s", rec.tuning_time_s);
  obj.emplace("tuning_energy_j", rec.tuning_energy_j);
  return Json(std::move(obj));
}

InferenceRecommendation rec_from_json(const Json& json) {
  InferenceRecommendation rec;
  if (const Json* config = json.find("config");
      config != nullptr && config->is_object()) {
    for (const auto& [name, value] : config->as_object()) {
      if (value.is_number()) rec.config[name] = value.as_number();
    }
  }
  rec.latency_s = json.get_number("latency_s", 0);
  rec.throughput_sps = json.get_number("throughput_sps", 0);
  rec.energy_per_sample_j = json.get_number("energy_per_sample_j", 0);
  rec.peak_memory_bytes = json.get_number("peak_memory_bytes", 0);
  rec.tuning_time_s = json.get_number("tuning_time_s", 0);
  rec.tuning_energy_j = json.get_number("tuning_energy_j", 0);
  rec.from_cache = true;
  return rec;
}

/// Loads a database file into `out`. Returns false when the file exists but
/// cannot be parsed (the caller quarantines it); true otherwise (missing
/// file = fresh database).
bool load_database_file(const std::string& path,
                        std::map<std::string, InferenceRecommendation>* out) {
  std::ifstream in(path);
  if (!in.good()) return true;  // fresh database
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Json> parsed = Json::parse(buffer.str());
  if (!parsed.ok() || !parsed.value().is_object()) {
    in.close();
    // Quarantine, don't clobber: the next flush would overwrite whatever is
    // in the file, destroying the evidence (and any salvageable entries).
    const std::string quarantine = path + ".corrupt";
    if (std::rename(path.c_str(), quarantine.c_str()) == 0) {
      ET_LOG_WARN << "historical cache at " << path
                  << " is unreadable; quarantined to " << quarantine
                  << ", starting empty (" << parsed.status().to_string()
                  << ")";
    } else {
      ET_LOG_WARN << "historical cache at " << path
                  << " is unreadable and could not be quarantined; "
                  << "starting empty (" << parsed.status().to_string() << ")";
    }
    return false;
  }
  for (const auto& [key, value] : parsed.value().as_object()) {
    (*out)[key] = rec_from_json(value);
  }
  return true;
}

/// The cache key starts with the architecture id ("arch|device|objective"),
/// so shard routing of a loaded entry only needs the prefix.
std::string arch_of_key(const std::string& key) {
  return key.substr(0, key.find('|'));
}

std::string shard_file(const std::string& base, std::size_t index,
                       std::size_t count) {
  return base + ".shard" + std::to_string(index) + "of" +
         std::to_string(count);
}

}  // namespace

HistoricalCache::HistoricalCache(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(1, shards));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

HistoricalCache::HistoricalCache(std::string path, std::size_t flush_every,
                                 std::size_t shards)
    : path_(std::move(path)),
      flush_every_(std::max<std::size_t>(1, flush_every)) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    // One shard keeps the classic single-file layout so existing cache
    // files (and byte-identical reports) are preserved; N > 1 stripes the
    // persistence too, one file per shard.
    shard->path = count == 1 ? path_ : shard_file(path_, i, count);
    shards_.push_back(std::move(shard));
  }
  load_shard_files();
}

void HistoricalCache::load_shard_files() {
  // A legacy single-file database at the base path migrates into the
  // stripes: load it first and route every entry by architecture id, then
  // let per-shard files override (they are newer). The legacy file itself
  // is left in place — migration is read-only, so rolling back to a
  // 1-shard (or pre-shard) binary still finds its data.
  if (shards_.size() > 1) {
    std::map<std::string, InferenceRecommendation> legacy;
    if (load_database_file(path_, &legacy)) {
      for (auto& [key, rec] : legacy) {
        Shard& shard = shard_for(arch_of_key(key));
        MutexLock lock(shard.mutex);
        shard.entries[key] = std::move(rec);
      }
    }
  }
  for (auto& shard : shards_) {
    std::map<std::string, InferenceRecommendation> loaded;
    if (!load_database_file(shard->path, &loaded)) continue;
    MutexLock lock(shard->mutex);
    for (auto& [key, rec] : loaded) shard->entries[key] = std::move(rec);
  }
}

HistoricalCache::Shard& HistoricalCache::shard_for(
    const std::string& arch_id) const {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[stable_hash64(arch_id) % shards_.size()];
}

std::string HistoricalCache::key(const std::string& arch_id,
                                 const std::string& device,
                                 MetricOfInterest objective) {
  return arch_id + "|" + device + "|" + metric_name(objective);
}

std::optional<InferenceRecommendation> HistoricalCache::lookup(
    const std::string& arch_id, const std::string& device,
    MetricOfInterest objective) const {
  Shard& shard = shard_for(arch_id);
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key(arch_id, device, objective));
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  InferenceRecommendation rec = it->second;
  rec.from_cache = true;
  return rec;
}

HistoricalCache::~HistoricalCache() {
  if (path_.empty()) return;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    if (shard->dirty == 0) continue;
    persist_best_effort_locked(*shard);
  }
}

Status HistoricalCache::store(const std::string& arch_id,
                              const std::string& device,
                              MetricOfInterest objective,
                              const InferenceRecommendation& rec) {
  Shard& shard = shard_for(arch_id);
  MutexLock lock(shard.mutex);
  shard.entries[key(arch_id, device, objective)] = rec;
  if (path_.empty()) return Status::ok();
  // Batched persistence: rewriting the whole database on every insert cost
  // O(n²) I/O across a run. Dirty entries are safe in memory until the next
  // periodic flush (or the final one in the destructor). A failed flush
  // degrades to memory-only for this batch — the entry IS stored, later
  // lookups hit it, and the next flush retries the whole file — instead of
  // converting a successful inference tune into an error for its caller.
  if (++shard.dirty >= flush_every_) persist_best_effort_locked(shard);
  return Status::ok();
}

void HistoricalCache::persist_best_effort_locked(Shard& s) const {
  Status status = save_shard_locked(s);
  if (status.is_ok()) {
    // Degrade loudly, recover loudly: a cache that warned once and then
    // silently healed looked permanently broken in the logs (and a re-break
    // after that was swallowed entirely) — report the recovery and re-arm
    // the warning latch.
    if (s.persist_warned) {
      ET_LOG_WARN << "historical-cache persistence to " << s.path
                  << " recovered after " << s.consecutive_failures
                  << " failed flush(es)";
      s.persist_warned = false;
    }
    s.consecutive_failures = 0;
    return;
  }
  ++s.persist_failures;
  ++s.consecutive_failures;
  if (!s.persist_warned) {
    s.persist_warned = true;
    ET_LOG_WARN << "historical-cache flush to " << s.path
                << " failed; continuing memory-only (" << status.to_string()
                << "); further failures logged at debug";
  } else {
    ET_LOG_DEBUG << "historical-cache flush to " << s.path
                 << " failed again: " << status.to_string();
  }
}

std::size_t HistoricalCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::size_t HistoricalCache::hits() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->hits;
  }
  return total;
}

std::size_t HistoricalCache::misses() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->misses;
  }
  return total;
}

void HistoricalCache::record_external_hit(const std::string& arch_id) const {
  Shard& shard = shard_for(arch_id);
  MutexLock lock(shard.mutex);
  ++shard.hits;
}

std::size_t HistoricalCache::persist_failures() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->persist_failures;
  }
  return total;
}

Status HistoricalCache::save() const {
  if (path_.empty()) return Status::ok();
  Status first_error;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    if (shard->dirty == 0) continue;
    if (Status status = save_shard_locked(*shard);
        !status.is_ok() && first_error.is_ok()) {
      first_error = status;
    }
  }
  return first_error;
}

Status HistoricalCache::save_shard_locked(Shard& s) const {
  // Fault identity is (shard file, per-shard flush index): injected
  // cache.persist outcomes are a pure function of the shard's own write
  // stream, unchanged by how many other shards exist or interleave.
  const std::size_t flush_number = s.flushes++;
  if (Status injected = injector_.fire(fault_site::kCachePersist, s.path,
                                       static_cast<int>(flush_number));
      !injected.is_ok()) {
    return injected;
  }
  JsonObject root;
  for (const auto& [key, rec] : s.entries) {
    root.emplace(key, rec_to_json(rec));
  }
  // Durable write-to-temp + fsync + rename (common/durable_io.hpp):
  // truncating the database in place meant a crash mid-write destroyed
  // every previously persisted result, and an unfsynced rename could leave
  // an empty file after power loss.
  ET_RETURN_IF_ERROR(
      durable_write_file(s.path, Json(std::move(root)).dump_pretty() + "\n"));
  s.dirty = 0;
  return Status::ok();
}

}  // namespace edgetune
