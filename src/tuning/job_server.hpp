// TuningJobServer: the service face of EdgeTune. The paper positions
// EdgeTune as a *tuning server* (like Vizier/SageMaker, §1) that users
// submit jobs to. This component is built to run always-on (DESIGN §5.7):
// admission control with a bounded queue and per-tenant quotas, priority
// scheduling, a terminal-job retention policy so a long-lived process does
// not accumulate every result ever produced, O(1) state counters, an
// optional server-wide sharded HistoricalCache shared by every job, and
// optional self-adjustment of per-job trial parallelism from the observed
// queue depth ("Towards Self-Tuning Parameter Servers" applied to our own
// server).
#pragma once

#include <deque>
#include <map>
#include <set>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "tuning/baselines.hpp"

namespace edgetune {

enum class JobState { kQueued, kRunning, kDone, kFailed };

const char* job_state_name(JobState state) noexcept;

using JobId = std::uint64_t;

/// What system a submitted job runs. kProbe is a no-op job that goes
/// through the full admission/queue/retention machinery and returns an
/// empty report — health checks and service benchmarks use it to exercise
/// the server without paying for a tuning run.
enum class JobSystem { kEdgeTune, kTune, kHyperPower, kHierarchical, kProbe };

struct JobRequest {
  EdgeTuneOptions options;
  JobSystem system = JobSystem::kEdgeTune;
  double power_cap_w = 800.0;  // HyperPower only
  /// Admission-control identity; empty means the "default" tenant. Quotas
  /// count queued + running jobs per tenant.
  std::string tenant;
  /// Higher runs first; ties dispatch FIFO in submission order.
  int priority = 0;
};

/// Configuration of the always-on service. The defaults reproduce the
/// classic one-shot job-runner behavior: unbounded queue, no quotas, every
/// result retained until waited for, fixed trial parallelism, no shared
/// cache.
struct TuningServiceOptions {
  int workers = 1;
  /// > 0 gives every job that did not ask for parallel trials itself
  /// (options.trial_workers <= 1) that many concurrent trial evaluations.
  int trial_workers_per_job = 0;
  /// Admission bound on queued (not yet running) jobs; submit() beyond it
  /// returns kResourceExhausted. 0 = unbounded.
  std::size_t max_queued = 0;
  /// Max queued + running jobs per tenant; 0 = unlimited.
  std::size_t per_tenant_quota = 0;
  /// Terminal (done/failed) results retained for wait(). Beyond this the
  /// oldest unclaimed result is evicted (its wait() then reports
  /// not_found). 0 = retain everything not yet waited for.
  std::size_t max_retained = 0;
  /// Self-tuning parallelism (DESIGN §5.7): at dispatch, a job that did not
  /// pick its own trial_workers gets budget/(1+queue_depth) of them,
  /// clamped to [1, budget] — wide when the server is idle, narrow (high
  /// job throughput) when the queue is deep. Off by default: it makes a
  /// job's makespan depend on server load, so opt in explicitly.
  bool adaptive_trial_workers = false;
  int trial_worker_budget = 4;
  /// > 0 creates a server-wide HistoricalCache with that many lock-striped
  /// shards, shared by every job that did not configure its own cache —
  /// tenants reuse each other's inference results. 0 = no shared cache
  /// (every job keeps its private one, the classic behavior).
  std::size_t shared_cache_shards = 0;
  /// Persistence path for the shared cache (empty = in-memory).
  std::string shared_cache_path;
  /// Per-job crash durability (DESIGN §5.9). When set, every admitted
  /// tuning job durably writes a manifest (its full JobRequest) under this
  /// directory and runs with a write-ahead trial journal beside it; a
  /// restarted server re-admits every manifest still on disk and resumes
  /// its journal, so admitted-but-unfinished jobs survive a crash or a
  /// supervised restart. Manifest and journal are deleted when the job
  /// reaches a terminal state (except shutdown-cancelled jobs, which are
  /// kept for the next incarnation). Probe jobs, fleet jobs, hierarchical
  /// jobs, and jobs that configured their own journal or cache are run
  /// as-is, without service-managed durability.
  std::string journal_dir;
};

/// Full-fidelity JSON encoding of a JobRequest — the journal_dir manifest
/// format. Numbers round-trip exactly (%.17g), seeds travel as decimal
/// strings (full uint64 range). Unserializable runtime state (a fleet
/// coordinator, a borrowed shared cache) is refused by job_request_to_json
/// callers: such jobs are never journaled.
Json job_request_to_json(const JobRequest& request);
Result<JobRequest> job_request_from_json(const Json& json);

/// Monotonic counters + instantaneous gauges for observability. Counters
/// only ever grow; gauges (queued/running/retained_terminal) are a snapshot.
struct TuningServiceStats {
  std::size_t submitted = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_tenant_quota = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t reaped = 0;   // results delivered via wait() and released
  std::size_t evicted = 0;  // unclaimed results dropped by max_retained
  /// Jobs re-admitted from journal_dir manifests at construction.
  std::size_t recovered = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t retained_terminal = 0;
};

/// Per-job metadata for tests and dashboards.
struct JobInfo {
  JobState state = JobState::kQueued;
  std::string tenant;
  int priority = 0;
  /// Effective trial_workers chosen at dispatch (0 until the job starts).
  int trial_workers = 0;
  /// 1-based order in which the job reached a terminal state (0 until
  /// then) — exposes the dispatch order priorities produced.
  std::uint64_t finish_seq = 0;
};

class TuningJobServer {
 public:
  /// Classic one-shot construction (see TuningServiceOptions for the
  /// semantics of the two knobs).
  explicit TuningJobServer(int workers = 1, int trial_workers_per_job = 0);
  explicit TuningJobServer(TuningServiceOptions options);
  ~TuningJobServer();

  TuningJobServer(const TuningJobServer&) = delete;
  TuningJobServer& operator=(const TuningJobServer&) = delete;

  /// Admits a job and returns its id, or kResourceExhausted when the queue
  /// is full / the tenant is at quota (the job was NOT enqueued; the caller
  /// owns backoff-and-resubmit).
  [[nodiscard]] Result<JobId> submit(JobRequest request)
      EDGETUNE_EXCLUDES(mutex_);

  /// Current state. Ids that were never submitted — or whose result has
  /// already been reaped by wait() or evicted by the retention policy —
  /// report not_found: the server deliberately keeps no tombstones, so a
  /// long-lived process cannot accumulate one per job ever submitted.
  [[nodiscard]] Result<JobState> state(JobId id) const
      EDGETUNE_EXCLUDES(mutex_);

  /// Metadata for a tracked job; not_found exactly when state(id) is.
  [[nodiscard]] Result<JobInfo> info(JobId id) const
      EDGETUNE_EXCLUDES(mutex_);

  /// Blocks until the job finishes and returns its report or failure
  /// status, then RELEASES the retained result: the first wait() per job
  /// wins, concurrent waiters all receive a copy, and later calls report
  /// not_found. Unknown/evicted ids report not_found without blocking.
  [[nodiscard]] Result<TuningReport> wait(JobId id) EDGETUNE_EXCLUDES(mutex_);

  /// Ids of every job the server still tracks (queued, running, or
  /// retained terminal), in submission order. Reaped and evicted jobs are
  /// gone — on an always-on server this is a bounded working set, not a
  /// submission history.
  [[nodiscard]] std::vector<JobId> jobs() const EDGETUNE_EXCLUDES(mutex_);

  /// Jobs not yet finished (queued + running). O(1): maintained as
  /// counters at state transitions, not a scan — pollers no longer
  /// serialize against the whole job table.
  [[nodiscard]] std::size_t unfinished() const EDGETUNE_EXCLUDES(mutex_);

  [[nodiscard]] TuningServiceStats stats() const EDGETUNE_EXCLUDES(mutex_);

  /// Stops dispatching queued jobs (admission stays open; running jobs
  /// finish). Drain/maintenance windows — and deterministic tests and
  /// benches, which use pause() to build a queue of known depth.
  void pause() EDGETUNE_EXCLUDES(mutex_);
  void resume() EDGETUNE_EXCLUDES(mutex_);

  /// The server-wide shared cache (null unless shared_cache_shards > 0).
  [[nodiscard]] const HistoricalCache* shared_cache() const noexcept {
    return shared_cache_.get();
  }

 private:
  struct Job {
    JobRequest request;  // moved out at dispatch to free the queue's memory
    JobState state = JobState::kQueued;
    std::string tenant;
    /// Service-managed durability files (journal_dir jobs only): deleted at
    /// the terminal transition, kept when the job was shutdown-cancelled so
    /// the next incarnation re-admits it.
    std::string manifest_path;
    std::string job_journal_path;
    int priority = 0;
    int trial_workers = 0;
    std::uint64_t finish_seq = 0;
    /// wait() calls currently blocked on (or copying out) this job. A job
    /// with waiters is never evicted: the last waiter out reaps it.
    int waiters = 0;
    Result<TuningReport> result{Status::unavailable("not finished")};
  };

  /// Pool task: dequeues the highest-priority pending job and runs it.
  /// Runs the whole tuning job — user-scale work — so it must hold no lock
  /// beyond the brief state transitions at entry and exit.
  void run_next() EDGETUNE_EXCLUDES(mutex_);
  static Result<TuningReport> execute(JobRequest request);
  /// Re-admits every manifest under options_.journal_dir (constructor
  /// only, before any dispatch task exists).
  void recover_journaled_jobs();
  void enforce_retention_locked() EDGETUNE_REQUIRES(mutex_);
  void release_tenant_locked(const std::string& tenant)
      EDGETUNE_REQUIRES(mutex_);

  const TuningServiceOptions options_;  // immutable after construction
  std::shared_ptr<HistoricalCache> shared_cache_;  // null or immutable ptr

  mutable Mutex mutex_;
  CondVar done_cv_;
  CondVar resume_cv_;
  std::map<JobId, Job> jobs_ EDGETUNE_GUARDED_BY(mutex_);
  /// Dispatch order: {-priority, id} so begin() is the highest priority,
  /// FIFO within it.
  std::set<std::pair<int, JobId>> pending_ EDGETUNE_GUARDED_BY(mutex_);
  /// Terminal jobs in finish order, for retention eviction. Lazily
  /// compacted: reaped ids are skipped when popped.
  std::deque<JobId> terminal_fifo_ EDGETUNE_GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> tenant_active_
      EDGETUNE_GUARDED_BY(mutex_);
  JobId next_id_ EDGETUNE_GUARDED_BY(mutex_) = 1;
  /// Filename sequence for journal_dir manifests; seeded past the largest
  /// sequence found on disk so recovered and new jobs never collide.
  std::uint64_t journal_seq_ EDGETUNE_GUARDED_BY(mutex_) = 1;
  std::uint64_t finish_counter_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::size_t queued_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::size_t running_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::size_t retained_terminal_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  bool paused_ EDGETUNE_GUARDED_BY(mutex_) = false;
  bool shutdown_ EDGETUNE_GUARDED_BY(mutex_) = false;
  TuningServiceStats counters_ EDGETUNE_GUARDED_BY(mutex_);  // monotonic part
  ThreadPool pool_;  // declared last: destroyed first, draining run_next()s
};

}  // namespace edgetune
