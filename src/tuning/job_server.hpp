// TuningJobServer: the service face of EdgeTune. The paper positions
// EdgeTune as a *tuning server* (like Vizier/SageMaker, §1) that users
// submit jobs to; this component queues jobs, runs them on a worker pool,
// and exposes state polling and blocking waits per job.
#pragma once

#include <map>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "tuning/baselines.hpp"

namespace edgetune {

enum class JobState { kQueued, kRunning, kDone, kFailed };

const char* job_state_name(JobState state) noexcept;

using JobId = std::uint64_t;

/// What system a submitted job runs.
enum class JobSystem { kEdgeTune, kTune, kHyperPower, kHierarchical };

struct JobRequest {
  EdgeTuneOptions options;
  JobSystem system = JobSystem::kEdgeTune;
  double power_cap_w = 800.0;  // HyperPower only
};

class TuningJobServer {
 public:
  /// `workers` jobs run concurrently; `trial_workers_per_job` > 0 gives
  /// every job that did not ask for parallel trials itself (options.
  /// trial_workers <= 1) that many concurrent trial evaluations per rung.
  explicit TuningJobServer(int workers = 1, int trial_workers_per_job = 0);
  ~TuningJobServer();

  TuningJobServer(const TuningJobServer&) = delete;
  TuningJobServer& operator=(const TuningJobServer&) = delete;

  /// Enqueues a job; returns immediately with its id.
  JobId submit(JobRequest request) EDGETUNE_EXCLUDES(mutex_);

  /// Current state; kQueued for unknown ids is an error.
  [[nodiscard]] Result<JobState> state(JobId id) const
      EDGETUNE_EXCLUDES(mutex_);

  /// Blocks until the job finishes; returns its report or failure status.
  [[nodiscard]] Result<TuningReport> wait(JobId id) EDGETUNE_EXCLUDES(mutex_);

  /// Ids of all jobs ever submitted, in submission order.
  [[nodiscard]] std::vector<JobId> jobs() const EDGETUNE_EXCLUDES(mutex_);

  /// Jobs not yet finished.
  [[nodiscard]] std::size_t unfinished() const EDGETUNE_EXCLUDES(mutex_);

 private:
  struct Job {
    JobState state = JobState::kQueued;
    Result<TuningReport> result{Status::unavailable("not finished")};
  };

  // Runs the whole tuning job — user-scale work — so it must hold no lock
  // beyond the brief state transitions at entry and exit.
  void run_job(JobId id, JobRequest request) EDGETUNE_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar done_cv_;
  std::map<JobId, Job> jobs_ EDGETUNE_GUARDED_BY(mutex_);
  JobId next_id_ EDGETUNE_GUARDED_BY(mutex_) = 1;
  int trial_workers_per_job_ = 0;  // immutable after construction
  ThreadPool pool_;
};

}  // namespace edgetune
