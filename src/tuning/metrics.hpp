// Objectives and trial outcome records (§4.4). The Model Tuning Server
// minimizes ratio = (train_metric * inference_metric) / accuracy; the
// Inference Tuning Server minimizes the inference metric alone.
#pragma once

#include <string>

#include "search/param.hpp"

namespace edgetune {

enum class MetricOfInterest { kRuntime, kEnergy };

const char* metric_name(MetricOfInterest metric) noexcept;

/// What one training trial produced.
struct TrialOutcome {
  double accuracy = 0;        // proxy validation accuracy in [0, 1]
  double train_time_s = 0;    // simulated full-scale training duration
  double train_energy_j = 0;  // simulated training energy
  std::string arch_id;        // architecture identity (cache key)
};

/// What the Inference Tuning Server recommends for an architecture.
struct InferenceRecommendation {
  Config config;                  // inf_batch, cores, freq_ghz
  double latency_s = 0;           // per batched call
  double throughput_sps = 0;      // samples per second
  double energy_per_sample_j = 0;
  double peak_memory_bytes = 0;   // resident memory of the deployment
  bool from_cache = false;
  double tuning_time_s = 0;       // simulated time the inference tuning took
  double tuning_energy_j = 0;     // simulated energy of the inference tuning
};

/// Model-server ratio objective (§4.4, eqs. 1 and 2). Lower is better.
/// Guards against degenerate accuracies by flooring at 1%.
double tuning_objective(MetricOfInterest metric, const TrialOutcome& trial,
                        const InferenceRecommendation& inference,
                        bool inference_aware);

/// Inference-server objective: runtime or energy of the inference phase.
double inference_objective(MetricOfInterest metric, double latency_s,
                           double energy_per_sample_j);

}  // namespace edgetune
