#include "tuning/billing.hpp"

#include <map>

namespace edgetune {

std::vector<BillingShare> resolve_flight_billing(
    const std::vector<FlightMember>& members) {
  std::vector<BillingShare> shares(members.size());

  struct Group {
    std::size_t first = 0;  // earliest member index — the serial leader
    double cost_s = 0;
    double cost_j = 0;
  };
  std::map<std::string, Group> groups;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const FlightMember& m = members[i];
    if (!m.has_rec || m.arch_id.empty()) continue;
    auto [it, inserted] = groups.emplace(m.arch_id, Group{i, 0, 0});
    Group& g = it->second;
    if (i < g.first) g.first = i;
    // At most one member observed the flight's real cost; max() recovers it
    // no matter which member that was.
    if (m.observed_tuning_s > g.cost_s) g.cost_s = m.observed_tuning_s;
    if (m.observed_tuning_energy_j > g.cost_j) {
      g.cost_j = m.observed_tuning_energy_j;
    }
  }

  for (const auto& [arch_id, g] : groups) {
    // A serial run charges the group's first-submitted member — it probes
    // the cache first, misses, and leads the one real search. If that
    // member's training failed, the serial walk discards its recommendation
    // and the cost never reaches the report; later members are plain cache
    // hits. Replicate both cases exactly.
    if (g.cost_s <= 0 && g.cost_j <= 0) continue;  // flight was a cache hit
    const FlightMember& leader = members[g.first];
    if (!leader.trained) continue;
    shares[g.first].from_cache = false;
    shares[g.first].tuning_time_s = g.cost_s;
    shares[g.first].tuning_energy_j = g.cost_j;
  }
  return shares;
}

}  // namespace edgetune
