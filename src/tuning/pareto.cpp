#include "tuning/pareto.hpp"

#include <cmath>

namespace edgetune {

bool dominates(const TrialLog& a, const TrialLog& b) noexcept {
  const bool no_worse = a.accuracy >= b.accuracy &&
                        a.duration_s <= b.duration_s &&
                        a.energy_j <= b.energy_j;
  const bool strictly_better = a.accuracy > b.accuracy ||
                               a.duration_s < b.duration_s ||
                               a.energy_j < b.energy_j;
  return no_worse && strictly_better;
}

std::vector<TrialLog> pareto_front(const std::vector<TrialLog>& trials) {
  std::vector<TrialLog> front;
  for (const TrialLog& candidate : trials) {
    if (!std::isfinite(candidate.objective)) continue;
    bool dominated = false;
    for (const TrialLog& other : trials) {
      if (!std::isfinite(other.objective)) continue;
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  return front;
}

}  // namespace edgetune
