// Persistent database of inference tuning results (§3.4): keyed by
// (architecture id, inference objective), so an architecture is never
// re-tuned — "with the cost of a small storage overhead". Thread-safe;
// optionally file-backed (JSON) so results survive across tuning jobs.
//
// Persistence is best-effort (DESIGN §5.4): the in-memory map is always
// authoritative, a failed flush degrades the cache to memory-only semantics
// for that flush (warn-once log + persist_failures() counter) instead of
// failing the tuning request that happened to trigger it, and a corrupt
// database file found at load is quarantined to `<path>.corrupt` rather
// than silently clobbered by the next flush.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/fault.hpp"
#include "common/thread_annotations.hpp"
#include "tuning/metrics.hpp"

namespace edgetune {

class HistoricalCache {
 public:
  /// In-memory only.
  HistoricalCache() = default;
  /// File-backed: loads `path` if it exists. Writes are batched — the file
  /// is rewritten after every `flush_every` stores and on destruction, not
  /// on every insert (store() used to cost O(n) I/O each, O(n²) per run) —
  /// and each rewrite goes through a temp file + rename, so a crash
  /// mid-write leaves the previous database intact instead of a truncated
  /// one.
  explicit HistoricalCache(std::string path, std::size_t flush_every = 16);
  ~HistoricalCache();

  HistoricalCache(const HistoricalCache&) = delete;
  HistoricalCache& operator=(const HistoricalCache&) = delete;

  /// Looks up a stored recommendation. The key is (architecture, edge
  /// device, objective): the same architecture tuned for two devices must
  /// not share an entry.
  [[nodiscard]] std::optional<InferenceRecommendation> lookup(
      const std::string& arch_id, const std::string& device,
      MetricOfInterest objective) const EDGETUNE_EXCLUDES(mutex_);

  /// Stores (overwrites) a recommendation; persists when file-backed. The
  /// returned Status reflects the in-memory store only — always OK today: a
  /// persistence failure is counted and logged (once), never propagated, so
  /// a flaky disk cannot turn a successful tune into an error.
  Status store(const std::string& arch_id, const std::string& device,
               MetricOfInterest objective,
               const InferenceRecommendation& rec) EDGETUNE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const EDGETUNE_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t hits() const EDGETUNE_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t misses() const EDGETUNE_EXCLUDES(mutex_);

  /// Counts a hit that was satisfied outside lookup(): a single-flight
  /// joiner receives the leader's result directly instead of probing, but a
  /// serial execution of the same requests WOULD have probed and hit — so
  /// the joiner reports one here, keeping hits()/misses() a pure function
  /// of the request content rather than of scheduling.
  void record_external_hit() const EDGETUNE_EXCLUDES(mutex_);
  /// Flush attempts that failed (I/O error or injected cache.persist fault).
  /// The cache kept serving from memory each time.
  [[nodiscard]] std::size_t persist_failures() const EDGETUNE_EXCLUDES(mutex_);

  /// Flushes pending writes to the backing file (no-op when in-memory or
  /// when nothing changed since the last flush). Unlike store(), reports the
  /// real outcome to callers that explicitly ask for durability.
  Status save() const EDGETUNE_EXCLUDES(mutex_);

  /// Installs a fault injector consulted at the cache.persist site before
  /// every flush (testing / chaos runs). Call before sharing the cache
  /// across threads.
  void set_fault_injector(FaultInjector injector) { injector_ = std::move(injector); }

 private:
  static std::string key(const std::string& arch_id,
                         const std::string& device,
                         MetricOfInterest objective);
  Status save_locked() const EDGETUNE_REQUIRES(mutex_);
  /// save_locked + degrade-on-failure bookkeeping (store/destructor path).
  void persist_best_effort_locked() const EDGETUNE_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::string path_;  // empty => in-memory; immutable after construction
  std::size_t flush_every_ = 16;  // immutable after construction
  FaultInjector injector_;        // immutable after set_fault_injector
  mutable std::size_t dirty_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable std::size_t flushes_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::map<std::string, InferenceRecommendation> entries_
      EDGETUNE_GUARDED_BY(mutex_);
  mutable std::size_t hits_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable std::size_t misses_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable std::size_t persist_failures_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable bool persist_warned_ EDGETUNE_GUARDED_BY(mutex_) = false;
};

}  // namespace edgetune
