// Persistent database of inference tuning results (§3.4): keyed by
// (architecture id, inference objective), so an architecture is never
// re-tuned — "with the cost of a small storage overhead". Thread-safe;
// optionally file-backed (JSON) so results survive across tuning jobs.
//
// Lock striping (DESIGN §5.7): the database is split into N shards keyed by
// `stable_hash64(arch_id) % N`, each with its own mutex, entry map, counters,
// and — when file-backed — its own persistence file, so thousands of
// concurrent jobs from many tenants share results without a global mutex.
// N == 1 (the default) is byte-identical to the historical single-file
// layout: one file at `path`, one lock. For N > 1 the shard files are
// `<path>.shard<i>of<N>`; a legacy single file found at `path` is loaded and
// distributed across the shards on construction (the legacy file itself is
// left untouched), so existing caches keep working after resharding.
//
// Persistence is best-effort (DESIGN §5.4): the in-memory map is always
// authoritative, a failed flush degrades the affected shard to memory-only
// semantics for that flush (warn-once log + persist_failures() counter)
// instead of failing the tuning request that happened to trigger it, a later
// successful flush logs a one-line recovery notice and re-arms the warning,
// and a corrupt database file found at load is quarantined to
// `<path>.corrupt` rather than silently clobbered by the next flush.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/thread_annotations.hpp"
#include "tuning/metrics.hpp"

namespace edgetune {

class HistoricalCache {
 public:
  /// In-memory only; `shards` stripes the lock (1 = one global lock).
  explicit HistoricalCache(std::size_t shards = 1);
  /// File-backed: loads `path` (and, for `shards` > 1, the per-shard files)
  /// if present. Writes are batched — a shard's file is rewritten after
  /// every `flush_every` stores into that shard and on destruction, not on
  /// every insert (store() used to cost O(n) I/O each, O(n²) per run) — and
  /// each rewrite goes through a temp file + rename, so a crash mid-write
  /// leaves the previous database intact instead of a truncated one.
  explicit HistoricalCache(std::string path, std::size_t flush_every = 16,
                           std::size_t shards = 1);
  ~HistoricalCache();

  HistoricalCache(const HistoricalCache&) = delete;
  HistoricalCache& operator=(const HistoricalCache&) = delete;

  /// Looks up a stored recommendation. The key is (architecture, edge
  /// device, objective): the same architecture tuned for two devices must
  /// not share an entry.
  [[nodiscard]] std::optional<InferenceRecommendation> lookup(
      const std::string& arch_id, const std::string& device,
      MetricOfInterest objective) const;

  /// Stores (overwrites) a recommendation; persists when file-backed. The
  /// returned Status reflects the in-memory store only — always OK today: a
  /// persistence failure is counted and logged (once), never propagated, so
  /// a flaky disk cannot turn a successful tune into an error.
  Status store(const std::string& arch_id, const std::string& device,
               MetricOfInterest objective, const InferenceRecommendation& rec);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

  /// Counts a hit that was satisfied outside lookup(): a single-flight
  /// joiner receives the leader's result directly instead of probing, but a
  /// serial execution of the same requests WOULD have probed and hit — so
  /// the joiner reports one here, keeping hits()/misses() a pure function
  /// of the request content rather than of scheduling. Takes the arch id so
  /// the hit lands on the shard a real probe would have touched.
  void record_external_hit(const std::string& arch_id) const;
  /// Flush attempts that failed (I/O error or injected cache.persist fault),
  /// summed over shards. The cache kept serving from memory each time.
  [[nodiscard]] std::size_t persist_failures() const;

  /// Number of lock-striped shards (1 = the classic single-file cache).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Flushes pending writes to the backing file(s) (no-op when in-memory or
  /// when nothing changed since the last flush). Unlike store(), reports the
  /// real outcome — the first shard failure — to callers that explicitly ask
  /// for durability.
  Status save() const;

  /// Installs a fault injector consulted at the cache.persist site before
  /// every flush (testing / chaos runs). Call before sharing the cache
  /// across threads.
  void set_fault_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }

 private:
  // One lock stripe: its own mutex, entries, persistence file, and counters.
  // Heap-allocated (vector of unique_ptr) because Mutex is not movable.
  struct Shard {
    mutable Mutex mutex;
    std::string path;  // empty => in-memory; immutable after construction
    mutable std::size_t dirty EDGETUNE_GUARDED_BY(mutex) = 0;
    mutable std::size_t flushes EDGETUNE_GUARDED_BY(mutex) = 0;
    std::map<std::string, InferenceRecommendation> entries
        EDGETUNE_GUARDED_BY(mutex);
    mutable std::size_t hits EDGETUNE_GUARDED_BY(mutex) = 0;
    mutable std::size_t misses EDGETUNE_GUARDED_BY(mutex) = 0;
    mutable std::size_t persist_failures EDGETUNE_GUARDED_BY(mutex) = 0;
    mutable std::size_t consecutive_failures EDGETUNE_GUARDED_BY(mutex) = 0;
    mutable bool persist_warned EDGETUNE_GUARDED_BY(mutex) = false;
  };

  static std::string key(const std::string& arch_id,
                         const std::string& device,
                         MetricOfInterest objective);
  /// The shard owning `arch_id` (stable_hash64(arch_id) % N, DESIGN §5.7).
  [[nodiscard]] Shard& shard_for(const std::string& arch_id) const;
  void load_shard_files();
  Status save_shard_locked(Shard& s) const EDGETUNE_REQUIRES(s.mutex);
  /// save_shard_locked + degrade-on-failure / recover-on-success
  /// bookkeeping (store/destructor path).
  void persist_best_effort_locked(Shard& s) const EDGETUNE_REQUIRES(s.mutex);

  std::string path_;              // base path; empty => in-memory
  std::size_t flush_every_ = 16;  // immutable after construction
  FaultInjector injector_;        // immutable after set_fault_injector
  std::vector<std::unique_ptr<Shard>> shards_;  // fixed after construction
};

}  // namespace edgetune
