// Pareto-front extraction over a tuning run's trial log (§6's
// "Multi-Objective Tuning": conflicting objectives lead to multiple Pareto
// optimal solutions). A trial dominates another if it is no worse in all
// tracked objectives (accuracy up, training time down, training energy
// down) and strictly better in at least one.
#pragma once

#include <vector>

#include "tuning/model_server.hpp"

namespace edgetune {

/// True if `a` dominates `b`.
bool dominates(const TrialLog& a, const TrialLog& b) noexcept;

/// Non-dominated subset of `trials`, in their original order. Trials with
/// non-finite objectives (terminated/skipped) are excluded.
std::vector<TrialLog> pareto_front(const std::vector<TrialLog>& trials);

}  // namespace edgetune
