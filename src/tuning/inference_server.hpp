// The Inference Tuning Server (§3.4): for every architecture the Model
// Tuning Server proposes, asynchronously tunes the inference-side parameters
// (inference batch size, CPU cores, DVFS frequency) on the emulated edge
// device, minimizing the user's inference objective. Results are memoized in
// the persistent HistoricalCache so an architecture is never re-tuned.
//
// Asynchrony is real: submit() enqueues work on a worker pool and returns a
// future, so inference tuning overlaps the training trial that requested it
// (Fig 6's pipelining).
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/fault.hpp"
#include "common/retry.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "device/cost_model.hpp"
#include "search/algorithms.hpp"
#include "tuning/historical_cache.hpp"

namespace edgetune {

struct InferenceServerOptions {
  MetricOfInterest objective = MetricOfInterest::kEnergy;
  std::string algorithm = "bohb";  // "grid" is sensible for small spaces §3.1
  std::int64_t max_batch = 100;    // paper: inference batch 1..100
  /// Optional deployment memory budget in bytes (abstract: "runtime,
  /// memory usage, and power consumption"); configs above it are rejected
  /// on top of the device's hard RAM limit. 0 disables.
  double max_memory_bytes = 0;
  int workers = 2;
  std::uint64_t seed = 17;
  std::string cache_path;          // empty => in-memory cache
  /// Lock-striped shards for the historical cache (DESIGN §5.7). 1 keeps
  /// the classic single-file single-lock layout; N > 1 stripes both the
  /// lock and the persistence files. Counters and reports are identical at
  /// any shard count.
  std::size_t cache_shards = 1;
  /// A cache owned by someone else (the always-on TuningJobServer shares
  /// one across all jobs of all tenants). Overrides cache_path/cache_shards;
  /// the server never installs its fault injector on a borrowed cache.
  std::shared_ptr<HistoricalCache> shared_cache;
  /// Ablation switch: false re-tunes every request (no historical reuse).
  bool use_cache = true;
  /// Deterministic fault plan (sites inference.measure / cache.persist fire
  /// here). Empty = injection off, zero-cost.
  std::vector<FaultSpec> faults;
  /// Retry policy for uncached tuning runs. Transient failures (injected or
  /// real) are retried with seeded-jitter exponential backoff; the backoff
  /// is charged to the recommendation's simulated tuning_time_s, never a
  /// real sleep. Default max_attempts=1 is the bit-identical fast path.
  RetryPolicy retry;
};

class InferenceTuningServer {
 public:
  InferenceTuningServer(DeviceProfile edge_device,
                        InferenceServerOptions options);

  /// Asynchronous tuning request; overlaps the caller's training trial.
  [[nodiscard]] std::future<Result<InferenceRecommendation>> submit(
      const ArchSpec& arch) EDGETUNE_EXCLUDES(inflight_mutex_);

  /// Synchronous tuning (same path, current thread). EXCLUDES encodes the
  /// PR-1 invariant: the search below runs user-visible evaluation
  /// callbacks, so no lock may be held entering it (a joiner blocking on
  /// the leader's future while holding inflight_mutex_ would deadlock every
  /// other request).
  [[nodiscard]] Result<InferenceRecommendation> tune(const ArchSpec& arch)
      EDGETUNE_EXCLUDES(inflight_mutex_);

  /// Evaluates one explicit inference configuration on the edge emulator.
  [[nodiscard]] Result<CostEstimate> evaluate(const ArchSpec& arch,
                                              const InferenceConfig& config) const;

  [[nodiscard]] const HistoricalCache& cache() const noexcept {
    return *cache_;
  }
  [[nodiscard]] const DeviceProfile& device() const noexcept {
    return cost_model_.profile();
  }
  [[nodiscard]] const InferenceServerOptions& options() const noexcept {
    return options_;
  }

  /// The inference search space: batch x cores x frequency.
  [[nodiscard]] SearchSpace search_space() const;

  /// Peak number of uncached tuning searches that ran concurrently since
  /// construction — observability for sizing `workers` (and the test hook
  /// proving pipelined submissions really overlap).
  [[nodiscard]] int peak_concurrent_tunes() const noexcept {
    return peak_tunes_.load(std::memory_order_relaxed);
  }

  /// Number of searches that actually executed (cache misses that became the
  /// single-flight leader, or every request when the cache is disabled).
  [[nodiscard]] std::int64_t uncached_tune_runs() const noexcept {
    return uncached_runs_.load(std::memory_order_relaxed);
  }
  /// Number of requests that joined an identical in-flight search instead of
  /// re-running it.
  [[nodiscard]] std::int64_t single_flight_joins() const noexcept {
    return single_flight_joins_.load(std::memory_order_relaxed);
  }
  /// Number of joins that observed their leader fail and went back to
  /// re-probe (cache, a newer flight, or leadership) instead of inheriting
  /// the leader's error.
  [[nodiscard]] std::int64_t single_flight_reprobes() const noexcept {
    return single_flight_reprobes_.load(std::memory_order_relaxed);
  }
  /// The injector consulted at this server's fault sites (test hook for
  /// injected-fault counters).
  [[nodiscard]] const FaultInjector& fault_injector() const noexcept {
    return injector_;
  }

 private:
  // Retry shell around tune_attempt: transient failures back off in
  // simulated time and re-run; the charged backoff lands in the returned
  // recommendation's tuning_time_s.
  [[nodiscard]] Result<InferenceRecommendation> tune_uncached(
      const ArchSpec& arch) EDGETUNE_EXCLUDES(inflight_mutex_);

  // Runs one actual search attempt — optimize() callbacks execute inside, so
  // the in-flight lock must be released (no mutex held across user
  // callbacks).
  [[nodiscard]] Result<InferenceRecommendation> tune_attempt(
      const ArchSpec& arch, int attempt) EDGETUNE_EXCLUDES(inflight_mutex_);

  CostModel cost_model_;
  InferenceServerOptions options_;
  FaultInjector injector_;
  std::shared_ptr<HistoricalCache> cache_;
  ThreadPool pool_;
  std::atomic<int> active_tunes_{0};
  std::atomic<int> peak_tunes_{0};
  std::atomic<std::int64_t> uncached_runs_{0};
  std::atomic<std::int64_t> single_flight_joins_{0};
  std::atomic<std::int64_t> single_flight_reprobes_{0};

  // Single-flight dedup: at most one search per architecture is in flight;
  // concurrent requests for the same architecture wait on the leader's
  // future. Leaders store to the historical cache BEFORE erasing their entry,
  // so a request that misses both the cache and this map under the lock is
  // guaranteed to become a leader, not re-run a finished search. A leader
  // that FAILS also erases its entry before publishing the error, and
  // joiners that observe a failed flight loop back to re-probe (and possibly
  // lead their own retried search) — a transient leader error is never
  // fanned out to its joiners.
  Mutex inflight_mutex_;
  std::unordered_map<std::string,
                     std::shared_future<Result<InferenceRecommendation>>>
      inflight_ EDGETUNE_GUARDED_BY(inflight_mutex_);
};

}  // namespace edgetune
