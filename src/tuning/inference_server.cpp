#include "tuning/inference_server.hpp"

#include <cmath>

#include "common/log.hpp"

namespace edgetune {

namespace {
// The Inference Tuning Server SIMULATES the edge device on the tuning
// server (§2.1: "We settle to simulate the edge devices for inference...
// EdgeTune quickly evaluates a large search space without adding an
// overhead"). Evaluating one configuration therefore costs emulator CPU
// time on the server — a small constant — not edge-device real time.
constexpr double kEmulationSecondsPerConfig = 0.05;
constexpr double kEmulationServerPowerW = 90.0;  // CPU-side share of the server
}  // namespace

InferenceTuningServer::InferenceTuningServer(DeviceProfile edge_device,
                                             InferenceServerOptions options)
    : cost_model_(std::move(edge_device)),
      options_(std::move(options)),
      injector_(options_.seed, options_.faults),
      cache_(options_.shared_cache
                 ? options_.shared_cache
                 : options_.cache_path.empty()
                       ? std::make_shared<HistoricalCache>(
                             std::max<std::size_t>(1, options_.cache_shards))
                       : std::make_shared<HistoricalCache>(
                             options_.cache_path, /*flush_every=*/16,
                             std::max<std::size_t>(1,
                                                   options_.cache_shards))),
      pool_(static_cast<std::size_t>(std::max(1, options_.workers))) {
  // A borrowed (shared) cache keeps its owner's injector: installing this
  // server's plan would redirect every co-tenant's cache.persist faults.
  if (injector_.enabled() && !options_.shared_cache) {
    cache_->set_fault_injector(injector_);
  }
}

SearchSpace InferenceTuningServer::search_space() const {
  SearchSpace space;
  space.add(ParamSpec::integer("inf_batch", 1,
                               static_cast<double>(options_.max_batch),
                               /*log_scale=*/true));
  space.add(ParamSpec::integer("cores", 1,
                               cost_model_.profile().max_cores));
  space.add(ParamSpec::categorical("freq_ghz",
                                   cost_model_.profile().freq_levels_ghz));
  return space;
}

Result<CostEstimate> InferenceTuningServer::evaluate(
    const ArchSpec& arch, const InferenceConfig& config) const {
  return cost_model_.inference_cost(arch, config);
}

std::future<Result<InferenceRecommendation>> InferenceTuningServer::submit(
    const ArchSpec& arch) {
  // Copy the spec: the caller's trial may outlive/mutate its own copy.
  return pool_.submit([this, arch] { return tune(arch); });
}

Result<InferenceRecommendation> InferenceTuningServer::tune(
    const ArchSpec& arch) {
  if (!options_.use_cache) return tune_uncached(arch);

  // Single-flight: if an identical search is already running, wait for it
  // instead of burning a second worker on the same architecture. The cache
  // lookup happens under the inflight lock so each request probes exactly
  // once per pass: leaders count one miss (and later one store — with no
  // failures, misses() stays equal to the entry count), joiners never touch
  // the cache at all. The loop is the failure path: a joiner whose leader
  // failed re-probes from the top instead of inheriting the error — the
  // cache may have been populated by a newer flight meanwhile, or this
  // request becomes the new leader and runs its own (retried) search. Each
  // failed flight retires permanently before its error is published, so
  // every pass either terminates or joins a strictly newer flight — with
  // finitely many concurrent requests the loop cannot spin forever.
  for (;;) {
    std::promise<Result<InferenceRecommendation>> promise;
    std::shared_future<Result<InferenceRecommendation>> pending;
    {
      MutexLock lock(inflight_mutex_);
      auto it = inflight_.find(arch.id);
      if (it != inflight_.end()) {
        pending = it->second;
      } else {
        // A leader stores to the cache BEFORE erasing its inflight entry, so
        // a lookup under this lock is authoritative: either the search is
        // still pending (found above) or its result is already visible here.
        if (auto cached = cache_->lookup(arch.id, cost_model_.profile().name,
                                         options_.objective)) {
          // Cache hits cost neither simulated time nor energy (§3.4).
          InferenceRecommendation rec = *cached;
          rec.tuning_time_s = 0;
          rec.tuning_energy_j = 0;
          return rec;
        }
        inflight_.emplace(arch.id, promise.get_future().share());
      }
    }
    if (pending.valid()) {
      single_flight_joins_.fetch_add(1, std::memory_order_relaxed);
      Result<InferenceRecommendation> joined = pending.get();
      if (!joined.ok()) {
        single_flight_reprobes_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // The joiner paid nothing: the one search's cost is reported by the
      // leader (and the cache, for later requests). A serial execution of
      // the same requests would have probed the cache after the leader's
      // store and hit — count that hit, so the cache counters stay a pure
      // function of request content, not of scheduling.
      cache_->record_external_hit(arch.id);
      InferenceRecommendation rec = std::move(joined).value();
      rec.from_cache = true;
      rec.tuning_time_s = 0;
      rec.tuning_energy_j = 0;
      return rec;
    }

    // Leader path: run the search, publish to the cache, then retire the
    // in-flight entry and wake the joiners. Cache-persistence failures
    // degrade inside the cache (memory stays authoritative), so a flaky
    // disk cannot fail this request or its joiners.
    Result<InferenceRecommendation> result = tune_uncached(arch);
    if (result.ok()) {
      // Always OK: the in-memory store cannot fail and persistence errors
      // degrade inside the cache. Must not early-return here regardless —
      // the inflight entry below has to retire or joiners would hang.
      Status stored = cache_->store(arch.id, cost_model_.profile().name,
                                    options_.objective, result.value());
      static_cast<void>(stored);
    }
    {
      MutexLock lock(inflight_mutex_);
      inflight_.erase(arch.id);
    }
    promise.set_value(result);
    return result;
  }
}

Result<InferenceRecommendation> InferenceTuningServer::tune_uncached(
    const ArchSpec& arch) {
  uncached_runs_.fetch_add(1, std::memory_order_relaxed);
  RetryStats stats;
  Result<InferenceRecommendation> result =
      retry_call<InferenceRecommendation>(
          options_.retry, options_.seed ^ stable_hash64(arch.id),
          [&](int attempt) { return tune_attempt(arch, attempt); }, &stats);
  // Backoff between attempts is simulated waiting, charged to the tuning
  // bill exactly like emulator time (never a real sleep).
  if (result.ok() && stats.backoff_s > 0) {
    result.value().tuning_time_s += stats.backoff_s;
  }
  return result;
}

Result<InferenceRecommendation> InferenceTuningServer::tune_attempt(
    const ArchSpec& arch, int attempt) {
  if (Status injected =
          injector_.fire(fault_site::kInferenceMeasure, arch.id, attempt);
      !injected.is_ok()) {
    return injected;
  }
  SearchSpace space = search_space();
  HyperBandOptions hb;
  hb.min_resource = 1;
  hb.max_resource = 4;
  hb.eta = 2;
  ET_ASSIGN_OR_RETURN(
      std::unique_ptr<SearchAlgorithm> algorithm,
      make_search_algorithm(options_.algorithm, space, hb,
                            /*random_trials=*/24));

  double tuning_time_s = 0;
  double tuning_energy_j = 0;
  Status eval_error;  // first hard failure inside the callback, if any

  const EvalFn eval = [&](const Config& config, double /*resource*/) {
    InferenceConfig inf;
    inf.batch_size = static_cast<std::int64_t>(config.at("inf_batch"));
    inf.cores = static_cast<int>(config.at("cores"));
    inf.freq_ghz = config.at("freq_ghz");
    Result<CostEstimate> est = cost_model_.inference_cost(arch, inf);
    if (!est.ok()) {
      if (eval_error.is_ok()) eval_error = est.status();
      return std::numeric_limits<double>::infinity();
    }
    if (options_.max_memory_bytes > 0 &&
        est.value().peak_memory_bytes > options_.max_memory_bytes) {
      return std::numeric_limits<double>::infinity();  // over budget
    }
    tuning_time_s += kEmulationSecondsPerConfig;
    tuning_energy_j += kEmulationSecondsPerConfig * kEmulationServerPowerW;
    return inference_objective(
        options_.objective, 1.0 / std::max(est.value().throughput_sps, 1e-9),
        est.value().energy_per_sample_j(inf.batch_size));
  };

  // Per-architecture deterministic stream derived from (seed, arch id):
  // concurrent submit()s neither contend on shared RNG state nor make the
  // result depend on arrival order. (A shared Rng guarded by a mutex held
  // across the whole optimize() call used to serialize every pipelined
  // tuning request — Fig 6's overlap existed only on paper.)
  Rng local(options_.seed ^ stable_hash64(arch.id));
  const int active = active_tunes_.fetch_add(1, std::memory_order_acq_rel) + 1;
  int peak = peak_tunes_.load(std::memory_order_relaxed);
  while (active > peak &&
         !peak_tunes_.compare_exchange_weak(peak, active)) {
  }
  SearchResult result = algorithm->optimize(eval, local);
  active_tunes_.fetch_sub(1, std::memory_order_acq_rel);
  if (!std::isfinite(result.best_objective)) {
    return eval_error.is_ok()
               ? Status::internal("inference tuning produced no finite result")
               : eval_error;
  }

  InferenceConfig best;
  best.batch_size =
      static_cast<std::int64_t>(result.best_config.at("inf_batch"));
  best.cores = static_cast<int>(result.best_config.at("cores"));
  best.freq_ghz = result.best_config.at("freq_ghz");
  ET_ASSIGN_OR_RETURN(CostEstimate est,
                      cost_model_.inference_cost(arch, best));

  InferenceRecommendation rec;
  rec.config = result.best_config;
  rec.latency_s = est.latency_s;
  rec.throughput_sps = est.throughput_sps;
  rec.energy_per_sample_j = est.energy_per_sample_j(best.batch_size);
  rec.peak_memory_bytes = est.peak_memory_bytes;
  rec.from_cache = false;
  rec.tuning_time_s = tuning_time_s;
  rec.tuning_energy_j = tuning_energy_j;
  return rec;
}

}  // namespace edgetune
