// TrialRunner: executes one training trial (§2.1). The proxy network is
// genuinely trained with SGD on the synthetic dataset under the trial's
// budget (epochs x data fraction), producing a real validation accuracy;
// the device cost model simultaneously prices the same work at full scale
// on the training server, producing the trial's simulated runtime/energy.
#pragma once

#include <memory>

#include "budget/budget.hpp"
#include "data/synthetic.hpp"
#include "device/cost_model.hpp"
#include "tuning/metrics.hpp"

namespace edgetune {

/// Config keys the trial runner understands.
///   model_hparam : workload-specific model hyperparameter (§5.1)
///   train_batch  : full-scale training batch size (32..512 in the paper)
///   lr           : SGD learning rate (proxy training)
///   momentum     : SGD momentum (optional; defaults to options.momentum)
///   weight_decay : decoupled L2 decay (optional; defaults to 0)
///   num_gpus     : training-system parameter (1..8; 0 => CPU training)
struct TrialRunnerOptions {
  WorkloadKind workload = WorkloadKind::kImageClassification;
  std::int64_t proxy_samples = 1600;  // synthetic dataset size
  double validation_fraction = 0.2;   // paper: 20% held out
  std::uint64_t seed = 42;
  DeviceProfile train_device;         // defaults to the Titan server
  double momentum = 0.9;

  TrialRunnerOptions();
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialRunnerOptions options);

  /// Runs one trial: builds the model for `config`, trains it under
  /// `budget`, evaluates validation accuracy, prices full-scale cost.
  /// Const and therefore safe to call from concurrent trial workers: all
  /// trial state (model, trainer, RNG derived from (seed, config)) is local
  /// to the call, and the shared dataset/cost-model members are immutable
  /// after construction.
  [[nodiscard]] Result<TrialOutcome> run(const Config& config,
                                         const TrialBudget& budget) const;

  /// The full-scale ArchSpec the given config induces (what the Inference
  /// Tuning Server receives). Cheap: no training.
  [[nodiscard]] Result<ArchSpec> arch_for(const Config& config) const;

  [[nodiscard]] const TrialRunnerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::int64_t full_scale_train_samples() const noexcept {
    return full_scale_train_samples_;
  }

 private:
  TrialRunnerOptions options_;
  std::unique_ptr<Dataset> dataset_;
  DatasetView train_view_;
  DatasetView val_view_;
  CostModel server_model_;
  std::int64_t full_scale_train_samples_;
};

}  // namespace edgetune
