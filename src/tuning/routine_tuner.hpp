// Per-device kernel routine tuning (SoftNeuro-style, DESIGN §5.6). Three
// pieces:
//
//  1. A profiler that times every registered GEMM routine on the shape
//     CLASSES an architecture dispatches (layout + power-of-two buckets of
//     m/n/k), through a RoutineTimer — analytic (the device cost model's
//     roofline, deterministic, works for devices we only simulate) or
//     measured (real gemm_with_routine timings on the host).
//  2. A RoutineProfileStore that persists those timings per (device id,
//     shape class) with the HistoricalCache discipline: batched flushes,
//     atomic tmp+rename, corrupt-file quarantine, best-effort persistence
//     behind the routine.persist fault site.
//  3. A dynamic program that assigns one routine per GEMM op across a whole
//     ArchSpec, minimizing predicted end-to-end latency INCLUDING the
//     layout-conversion edge cost between adjacent ops — the term per-op
//     greedy ignores, and the reason greedy is a lower bound only on paper.
//
// Everything here is deterministic: analytic timings are pure functions of
// (device profile, shape), buckets and DP tie-breaks are fixed, so repeated
// runs — at any trial_workers count — produce identical assignments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "device/profile.hpp"
#include "nn/arch.hpp"
#include "tensor/gemm.hpp"

namespace edgetune {

/// One GEMM dispatch site of a network, batch included.
struct RoutineOp {
  std::string layer_kind;  // "conv2d", "linear", "rnn", ...
  GemmLayout layout = GemmLayout::kNT;
  std::int64_t m = 0, n = 0, k = 0;
  std::int64_t calls = 1;  // dispatches per forward (RNNs: per step)

  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k) * static_cast<double>(calls);
  }
  /// Activation bytes this op writes (the layout-conversion edge weight).
  [[nodiscard]] double output_bytes() const {
    return 4.0 * static_cast<double>(m) * static_cast<double>(n);
  }
};

/// Profile key: layout tag + power-of-two buckets of m/n/k, e.g.
/// "nt/m1024/n16/k32". Ops in one class share profiled timings (scaled by
/// their FLOP ratio), so a profile stays small and transfers across batch
/// sizes and nearby shapes.
[[nodiscard]] std::string routine_shape_class(const RoutineOp& op);

/// The representative op a class is profiled on: each dimension rounded
/// down to its bucket's power of two. Pure function of the class.
[[nodiscard]] RoutineOp routine_class_representative(const RoutineOp& op);

/// Extracts the GEMM dispatch sites of an architecture at a given inference
/// batch, in layer order. Non-GEMM layers (pooling, activations, ...) carry
/// no routine choice and are skipped.
[[nodiscard]] std::vector<RoutineOp> routine_ops_for_arch(
    const ArchSpec& arch, std::int64_t batch);

/// Seconds per routine name for one profiled shape class.
using RoutineTimings = std::map<std::string, double>;

// --- Timers ------------------------------------------------------------------

/// Source of per-(routine, op) timings. Implementations must be pure
/// functions of (device, routine, op) for the determinism contract above;
/// MeasuredRoutineTimer is the deliberate exception for offline bench use.
class RoutineTimer {
 public:
  virtual ~RoutineTimer() = default;
  /// Stable identity of the device being timed — the profile cache key and
  /// the fleet options-fingerprint component.
  [[nodiscard]] virtual std::string device_id() const = 0;
  /// Predicted/measured seconds for ONE call of `op` under `routine`.
  [[nodiscard]] virtual double time_op(const GemmRoutineInfo& routine,
                                       const RoutineOp& op) const = 0;
  /// Seconds to convert `bytes` of activations between two routines'
  /// layout tags. Asymmetric by design: packing into a tiled layout costs
  /// more than unpacking it, and tile-to-tile repacks cost most.
  [[nodiscard]] virtual double layout_conversion_s(const std::string& from,
                                                   const std::string& to,
                                                   double bytes) const;
};

/// Deterministic roofline-style model over a DeviceProfile: single-core
/// SIMD peak scaled by a per-routine efficiency (microtile padding waste,
/// cache fit of the working set, packing and scratch traffic at the
/// device's memory bandwidth, Amdahl + fork overhead for threaded
/// routines). Absolute numbers are only relatively plausible — like the
/// rest of the device emulator, ratios are what matter.
class AnalyticRoutineTimer : public RoutineTimer {
 public:
  explicit AnalyticRoutineTimer(DeviceProfile device)
      : device_(std::move(device)) {}

  [[nodiscard]] std::string device_id() const override {
    return device_.name;
  }
  [[nodiscard]] double time_op(const GemmRoutineInfo& routine,
                               const RoutineOp& op) const override;
  /// Conversions run at the device's memory bandwidth.
  [[nodiscard]] double layout_conversion_s(const std::string& from,
                                           const std::string& to,
                                           double bytes) const override;

 private:
  DeviceProfile device_;
};

/// Wall-clock timings of gemm_with_routine on the build host (best of
/// `repetitions` runs over real buffers). Only for offline profiling /
/// benches: NOT deterministic, never used on the tuner's report path.
class MeasuredRoutineTimer : public RoutineTimer {
 public:
  explicit MeasuredRoutineTimer(int repetitions = 3)
      : repetitions_(repetitions < 1 ? 1 : repetitions) {}

  [[nodiscard]] std::string device_id() const override { return "host"; }
  [[nodiscard]] double time_op(const GemmRoutineInfo& routine,
                               const RoutineOp& op) const override;

 private:
  int repetitions_;
};

// --- Persistent profile ------------------------------------------------------

/// Per-(device id, shape class) routine timings, persisted with the
/// HistoricalCache discipline (see file header). Thread-safe.
class RoutineProfileStore {
 public:
  /// In-memory only.
  RoutineProfileStore() = default;
  /// File-backed: loads `path` if it exists; a corrupt file is quarantined
  /// to `<path>.corrupt` rather than clobbered. Writes are batched every
  /// `flush_every` stores and flushed on destruction via tmp+rename.
  explicit RoutineProfileStore(std::string path, std::size_t flush_every = 16);
  ~RoutineProfileStore();

  RoutineProfileStore(const RoutineProfileStore&) = delete;
  RoutineProfileStore& operator=(const RoutineProfileStore&) = delete;

  [[nodiscard]] std::optional<RoutineTimings> lookup(
      const std::string& device_id, const std::string& shape_class) const
      EDGETUNE_EXCLUDES(mutex_);

  /// Stores (overwrites) the timings for one shape class. Like
  /// HistoricalCache::store, the returned Status reflects the in-memory
  /// store only; persistence failures are counted, logged once, and never
  /// propagated.
  Status store(const std::string& device_id, const std::string& shape_class,
               const RoutineTimings& timings) EDGETUNE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const EDGETUNE_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t hits() const EDGETUNE_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t misses() const EDGETUNE_EXCLUDES(mutex_);
  /// Flush attempts that failed (I/O error or injected routine.persist
  /// fault); the store kept serving from memory each time.
  [[nodiscard]] std::size_t persist_failures() const
      EDGETUNE_EXCLUDES(mutex_);

  /// Flushes pending writes; reports the real outcome (callers explicitly
  /// asking for durability).
  Status save() const EDGETUNE_EXCLUDES(mutex_);

  /// Installs a fault injector consulted at the routine.persist site before
  /// every flush. Call before sharing the store across threads.
  void set_fault_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }

 private:
  static std::string key(const std::string& device_id,
                         const std::string& shape_class);
  Status save_locked() const EDGETUNE_REQUIRES(mutex_);
  void persist_best_effort_locked() const EDGETUNE_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::string path_;              // empty => in-memory
  std::size_t flush_every_ = 16;  // immutable after construction
  FaultInjector injector_;        // immutable after set_fault_injector
  mutable std::size_t dirty_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable std::size_t flushes_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::map<std::string, RoutineTimings> entries_ EDGETUNE_GUARDED_BY(mutex_);
  mutable std::size_t hits_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable std::size_t misses_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable std::size_t persist_failures_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  mutable bool persist_warned_ EDGETUNE_GUARDED_BY(mutex_) = false;
};

// --- Assignment --------------------------------------------------------------

/// One op's chosen routine in a network-wide assignment.
struct RoutineOpAssignment {
  std::string layer_kind;
  std::string shape_class;
  std::string routine;      // registry name
  double predicted_s = 0;   // op compute time under the chosen routine
};

/// Whole-network routine assignment with its predicted latencies. greedy_s
/// and fixed_blocked_s are computed under the SAME cost model (conversions
/// included), so total_s <= greedy_s <= ... is comparable.
struct RoutineAssignment {
  std::string device;   // timer device id the profile was keyed by
  std::vector<RoutineOpAssignment> ops;
  double total_s = 0;          // DP optimum, conversions included
  double conversion_s = 0;     // layout-conversion share of total_s
  double greedy_s = 0;         // per-op argmin assignment, conversions included
  double fixed_blocked_s = 0;  // every op on the default blocked routine
  std::size_t profile_hits = 0;    // shape classes served from the store
  std::size_t profile_misses = 0;  // shape classes profiled fresh
};

/// Profiles shape classes (through an optional persistent store) and runs
/// the DP assignment. Not thread-safe; create one per pass.
class RoutineTuner {
 public:
  /// `store` may be null (profile everything fresh, in memory). Both
  /// references must outlive the tuner.
  RoutineTuner(const RoutineTimer& timer, RoutineProfileStore* store)
      : timer_(timer), store_(store) {}

  /// Timings for `op`'s shape class: store lookup first, else profile the
  /// class representative under every registered routine and store that.
  [[nodiscard]] RoutineTimings profile(const RoutineOp& op);

  /// DP over ops x routines: state (op i, routine r), transition cost =
  /// op-time(i, r) + conversion(tag(r_prev) -> tag(r)); boundary
  /// conversions from/to row-major at the network edges. Ties break to the
  /// lower routine index, so the assignment is deterministic.
  [[nodiscard]] RoutineAssignment assign(const std::vector<RoutineOp>& ops);

 private:
  /// Per-op seconds under `routine`: class timing scaled by the op's FLOP
  /// ratio to the class representative, times `calls`.
  [[nodiscard]] double op_seconds(const RoutineTimings& timings,
                                  const GemmRoutineInfo& routine,
                                  const RoutineOp& op) const;

  const RoutineTimer& timer_;
  RoutineProfileStore* store_ = nullptr;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Convenience: extract ops, profile, and assign for one arch on one device.
[[nodiscard]] RoutineAssignment tune_routines_for_arch(
    const ArchSpec& arch, std::int64_t batch, const RoutineTimer& timer,
    RoutineProfileStore* store);

}  // namespace edgetune
