#include "tuning/job_server.hpp"

namespace edgetune {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

TuningJobServer::TuningJobServer(int workers, int trial_workers_per_job)
    : trial_workers_per_job_(trial_workers_per_job),
      pool_(static_cast<std::size_t>(std::max(1, workers))) {}

TuningJobServer::~TuningJobServer() {
  // ThreadPool's destructor drains queued tasks before joining; every
  // submitted job therefore reaches a terminal state.
}

JobId TuningJobServer::submit(JobRequest request) {
  JobId id;
  {
    MutexLock lock(mutex_);
    id = next_id_++;
    jobs_.emplace(id, Job{});
  }
  pool_.submit([this, id, request = std::move(request)]() mutable {
    run_job(id, std::move(request));
  });
  return id;
}

void TuningJobServer::run_job(JobId id, JobRequest request) {
  {
    MutexLock lock(mutex_);
    jobs_[id].state = JobState::kRunning;
  }
  if (trial_workers_per_job_ > 0 && request.options.trial_workers <= 1) {
    request.options.trial_workers = trial_workers_per_job_;
  }
  Result<TuningReport> result = [&]() -> Result<TuningReport> {
    // A fleet coordinator only drives the EdgeTune pipeline's batch
    // evaluator; a baseline job holding one would silently measure locally
    // while the caller believes it sharded. Refuse instead.
    if (request.options.fleet && request.system != JobSystem::kEdgeTune) {
      return Status::invalid_argument(
          "fleet execution is only supported for EdgeTune jobs");
    }
    switch (request.system) {
      case JobSystem::kEdgeTune:
        return EdgeTune(request.options).run();
      case JobSystem::kTune:
        return run_tune_baseline(request.options);
      case JobSystem::kHyperPower:
        return run_hyperpower_baseline(request.options, request.power_cap_w);
      case JobSystem::kHierarchical:
        return run_hierarchical(request.options);
    }
    return Status::invalid_argument("unknown job system");
  }();
  {
    MutexLock lock(mutex_);
    Job& job = jobs_[id];
    job.state = result.ok() ? JobState::kDone : JobState::kFailed;
    job.result = std::move(result);
  }
  done_cv_.notify_all();
}

Result<JobState> TuningJobServer::state(JobId id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id));
  }
  return it->second.state;
}

Result<TuningReport> TuningJobServer::wait(JobId id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id));
  }
  // `it` stays valid across the waits: std::map iterators are stable, and
  // finished jobs are never erased.
  while (it->second.state != JobState::kDone &&
         it->second.state != JobState::kFailed) {
    done_cv_.wait(mutex_);
  }
  return it->second.result;
}

std::vector<JobId> TuningJobServer::jobs() const {
  MutexLock lock(mutex_);
  std::vector<JobId> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

std::size_t TuningJobServer::unfinished() const {
  MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
      ++count;
    }
  }
  return count;
}

}  // namespace edgetune
