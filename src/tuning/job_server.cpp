#include "tuning/job_server.hpp"

#include <algorithm>

namespace edgetune {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

TuningJobServer::TuningJobServer(int workers, int trial_workers_per_job)
    : TuningJobServer([&] {
        TuningServiceOptions options;
        options.workers = workers;
        options.trial_workers_per_job = trial_workers_per_job;
        return options;
      }()) {}

TuningJobServer::TuningJobServer(TuningServiceOptions options)
    : options_(std::move(options)),
      pool_(static_cast<std::size_t>(std::max(1, options_.workers))) {
  if (options_.shared_cache_shards > 0) {
    shared_cache_ =
        options_.shared_cache_path.empty()
            ? std::make_shared<HistoricalCache>(options_.shared_cache_shards)
            : std::make_shared<HistoricalCache>(options_.shared_cache_path,
                                                /*flush_every=*/16,
                                                options_.shared_cache_shards);
  }
}

TuningJobServer::~TuningJobServer() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  // Unblock run_next() tasks parked behind pause(): the pool's destructor
  // (pool_ is the last member, so it is destroyed FIRST) drains every
  // queued task, and each must be able to reach its job — every admitted
  // job therefore still reaches a terminal state, paused or not.
  resume_cv_.notify_all();
}

Result<JobId> TuningJobServer::submit(JobRequest request) {
  const std::string tenant =
      request.tenant.empty() ? "default" : request.tenant;
  JobId id = 0;
  {
    MutexLock lock(mutex_);
    ++counters_.submitted;
    // Bounded admission: a server without backpressure queues unboundedly
    // and falls over later; kResourceExhausted here is the contract that
    // lets callers shed load at the edge instead.
    if (options_.max_queued > 0 && queued_ >= options_.max_queued) {
      ++counters_.rejected_queue_full;
      return Status::resource_exhausted(
          "admission queue is full (" + std::to_string(queued_) + "/" +
          std::to_string(options_.max_queued) + " queued jobs)");
    }
    if (options_.per_tenant_quota > 0) {
      auto it = tenant_active_.find(tenant);
      const std::size_t active =
          it == tenant_active_.end() ? 0 : it->second;
      if (active >= options_.per_tenant_quota) {
        ++counters_.rejected_tenant_quota;
        return Status::resource_exhausted(
            "tenant '" + tenant + "' is at its quota (" +
            std::to_string(active) + "/" +
            std::to_string(options_.per_tenant_quota) + " active jobs)");
      }
    }
    id = next_id_++;
    const int priority = request.priority;
    Job job;
    job.tenant = tenant;
    job.priority = priority;
    job.request = std::move(request);
    jobs_.emplace(id, std::move(job));
    pending_.insert({-priority, id});
    ++queued_;
    ++tenant_active_[tenant];
  }
  // One generic dispatch task per admitted job: the task picks the
  // highest-priority PENDING job at run time, so a late high-priority
  // submission overtakes earlier low-priority ones still in the queue.
  pool_.submit([this] { run_next(); });
  return id;
}

void TuningJobServer::run_next() {
  JobId id = 0;
  JobRequest request;
  int effective_trial_workers = 0;
  {
    MutexLock lock(mutex_);
    while (paused_ && !shutdown_) resume_cv_.wait(mutex_);
    if (pending_.empty()) return;  // defensive; one task per admitted job
    auto it = pending_.begin();
    id = it->second;
    pending_.erase(it);
    Job& job = jobs_.at(id);
    request = std::move(job.request);
    job.request = JobRequest{};  // release the queued options' memory now
    job.state = JobState::kRunning;
    --queued_;
    ++running_;
    if (request.options.trial_workers <= 1) {
      if (options_.adaptive_trial_workers) {
        // Self-tuning parallelism: split the trial-worker budget across
        // the work the server can see. Deep queue -> narrow jobs (total
        // throughput); idle -> one wide job (latency). Computed at
        // dispatch, under the same lock as the depth it reads.
        const auto depth = static_cast<int>(queued_);
        effective_trial_workers =
            std::clamp(options_.trial_worker_budget / (1 + depth), 1,
                       std::max(1, options_.trial_worker_budget));
      } else if (options_.trial_workers_per_job > 0) {
        effective_trial_workers = options_.trial_workers_per_job;
      }
    }
    job.trial_workers = effective_trial_workers > 0
                            ? effective_trial_workers
                            : std::max(1, request.options.trial_workers);
  }
  if (effective_trial_workers > 0) {
    request.options.trial_workers = effective_trial_workers;
  }
  // Multi-tenant result sharing: jobs that brought no cache of their own
  // read and write the server-wide sharded cache, so tenant B never
  // re-tunes an architecture tenant A already paid for. Jobs with explicit
  // cache configuration — and fleet coordinators, whose accounting must
  // not see foreign results — keep their own.
  if (shared_cache_ && request.options.inference.use_cache &&
      !request.options.fleet && !request.options.inference.shared_cache &&
      request.options.inference.cache_path.empty()) {
    request.options.inference.shared_cache = shared_cache_;
  }
  Result<TuningReport> result = execute(std::move(request));
  {
    MutexLock lock(mutex_);
    Job& job = jobs_.at(id);
    job.state = result.ok() ? JobState::kDone : JobState::kFailed;
    if (result.ok()) {
      ++counters_.completed;
    } else {
      ++counters_.failed;
    }
    job.result = std::move(result);
    job.finish_seq = ++finish_counter_;
    --running_;
    release_tenant_locked(job.tenant);
    terminal_fifo_.push_back(id);
    ++retained_terminal_;
    enforce_retention_locked();
  }
  done_cv_.notify_all();
}

Result<TuningReport> TuningJobServer::execute(JobRequest request) {
  // A fleet coordinator only drives the EdgeTune pipeline's batch
  // evaluator; a baseline job holding one would silently measure locally
  // while the caller believes it sharded. Refuse instead.
  if (request.options.fleet && request.system != JobSystem::kEdgeTune) {
    return Status::invalid_argument(
        "fleet execution is only supported for EdgeTune jobs");
  }
  switch (request.system) {
    case JobSystem::kEdgeTune:
      return EdgeTune(request.options).run();
    case JobSystem::kTune:
      return run_tune_baseline(request.options);
    case JobSystem::kHyperPower:
      return run_hyperpower_baseline(request.options, request.power_cap_w);
    case JobSystem::kHierarchical:
      return run_hierarchical(request.options);
    case JobSystem::kProbe: {
      TuningReport report;
      report.system = "probe";
      return report;
    }
  }
  return Status::invalid_argument("unknown job system");
}

void TuningJobServer::release_tenant_locked(const std::string& tenant) {
  auto it = tenant_active_.find(tenant);
  if (it == tenant_active_.end()) return;
  if (--it->second == 0) tenant_active_.erase(it);  // keep the map bounded
}

void TuningJobServer::enforce_retention_locked() {
  if (options_.max_retained == 0) return;
  // Evict oldest-finished first. Ids already reaped by wait() are lazy
  // tombstones in the fifo — skipped and dropped here. A job a waiter is
  // currently copying out of is skipped (its waiter reaps it), so the
  // retained count can transiently exceed the bound by the number of
  // in-flight wait()s, never by unclaimed results.
  std::deque<JobId> being_delivered;
  while (retained_terminal_ > options_.max_retained &&
         !terminal_fifo_.empty()) {
    const JobId victim = terminal_fifo_.front();
    terminal_fifo_.pop_front();
    auto it = jobs_.find(victim);
    if (it == jobs_.end()) continue;  // already reaped via wait()
    if (it->second.waiters > 0) {
      being_delivered.push_back(victim);
      continue;
    }
    jobs_.erase(it);
    --retained_terminal_;
    ++counters_.evicted;
  }
  for (auto it = being_delivered.rbegin(); it != being_delivered.rend();
       ++it) {
    terminal_fifo_.push_front(*it);
  }
}

Result<JobState> TuningJobServer::state(JobId id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id) +
                             " (never submitted, already waited for, or "
                             "evicted by the retention policy)");
  }
  return it->second.state;
}

Result<JobInfo> TuningJobServer::info(JobId id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id) +
                             " (never submitted, already waited for, or "
                             "evicted by the retention policy)");
  }
  JobInfo info;
  info.state = it->second.state;
  info.tenant = it->second.tenant;
  info.priority = it->second.priority;
  info.trial_workers = it->second.trial_workers;
  info.finish_seq = it->second.finish_seq;
  return info;
}

Result<TuningReport> TuningJobServer::wait(JobId id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id) +
                             " (never submitted, already waited for, or "
                             "evicted by the retention policy)");
  }
  // `it` stays valid across the waits: std::map erase only invalidates the
  // erased iterator, and a job with registered waiters is neither evicted
  // (enforce_retention_locked skips it) nor reaped by anyone but the last
  // of those waiters.
  ++it->second.waiters;
  while (it->second.state != JobState::kDone &&
         it->second.state != JobState::kFailed) {
    done_cv_.wait(mutex_);
  }
  Result<TuningReport> result = it->second.result;  // copy: shared delivery
  if (--it->second.waiters == 0) {
    // Reap on delivery: the result has been handed out, so the server
    // stops retaining it — the fix for the historical "finished jobs are
    // never erased" leak. The id's entry in terminal_fifo_ becomes a lazy
    // tombstone.
    jobs_.erase(it);
    --retained_terminal_;
    ++counters_.reaped;
  }
  return result;
}

std::vector<JobId> TuningJobServer::jobs() const {
  MutexLock lock(mutex_);
  std::vector<JobId> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

std::size_t TuningJobServer::unfinished() const {
  MutexLock lock(mutex_);
  return queued_ + running_;
}

TuningServiceStats TuningJobServer::stats() const {
  MutexLock lock(mutex_);
  TuningServiceStats stats = counters_;
  stats.queued = queued_;
  stats.running = running_;
  stats.retained_terminal = retained_terminal_;
  return stats;
}

void TuningJobServer::pause() {
  MutexLock lock(mutex_);
  paused_ = true;
}

void TuningJobServer::resume() {
  {
    MutexLock lock(mutex_);
    paused_ = false;
  }
  resume_cv_.notify_all();
}

}  // namespace edgetune
