#include "tuning/job_server.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/durable_io.hpp"
#include "common/log.hpp"
#include "common/shutdown.hpp"
#include "device/profile_io.hpp"

namespace edgetune {

namespace {

// --- JobRequest manifest marshaling (DESIGN §5.9). Full fidelity: a
// recovered job must re-run with exactly the options it was admitted with,
// or its journal fingerprint will (correctly) refuse to resume.

Json retry_to_json(const RetryPolicy& retry) {
  JsonObject obj;
  obj["max_attempts"] = retry.max_attempts;
  obj["initial_backoff_s"] = retry.initial_backoff_s;
  obj["backoff_multiplier"] = retry.backoff_multiplier;
  obj["max_backoff_s"] = retry.max_backoff_s;
  obj["jitter"] = retry.jitter;
  obj["attempt_deadline_s"] = retry.attempt_deadline_s;
  return Json(std::move(obj));
}

RetryPolicy retry_from_json(const Json& json) {
  RetryPolicy retry;
  retry.max_attempts =
      static_cast<int>(json.get_number("max_attempts", retry.max_attempts));
  retry.initial_backoff_s =
      json.get_number("initial_backoff_s", retry.initial_backoff_s);
  retry.backoff_multiplier =
      json.get_number("backoff_multiplier", retry.backoff_multiplier);
  retry.max_backoff_s = json.get_number("max_backoff_s", retry.max_backoff_s);
  retry.jitter = json.get_number("jitter", retry.jitter);
  retry.attempt_deadline_s =
      json.get_number("attempt_deadline_s", retry.attempt_deadline_s);
  return retry;
}

Json faults_to_json(const std::vector<FaultSpec>& faults) {
  JsonArray array;
  array.reserve(faults.size());
  for (const FaultSpec& spec : faults) {
    JsonObject obj;
    obj["site"] = spec.site;
    obj["rate"] = spec.rate;
    obj["fail_first"] = spec.fail_first;
    obj["code"] = static_cast<int>(spec.code);
    array.push_back(Json(std::move(obj)));
  }
  return Json(std::move(array));
}

std::vector<FaultSpec> faults_from_json(const Json* json) {
  std::vector<FaultSpec> faults;
  if (json == nullptr || !json->is_array()) return faults;
  for (const Json& entry : json->as_array()) {
    FaultSpec spec;
    spec.site = entry.get_string("site", "");
    spec.rate = entry.get_number("rate", 0);
    spec.fail_first = static_cast<int>(entry.get_number("fail_first", 0));
    spec.code = static_cast<StatusCode>(
        static_cast<int>(entry.get_number("code", 0)));
    faults.push_back(std::move(spec));
  }
  return faults;
}

std::uint64_t seed_from_json(const Json& json, const std::string& key,
                             std::uint64_t fallback) {
  const Json* j = json.find(key);
  if (j == nullptr || !j->is_string()) return fallback;
  return std::strtoull(j->as_string().c_str(), nullptr, 10);
}

Json options_to_json(const EdgeTuneOptions& o) {
  JsonObject obj;
  obj["workload"] = static_cast<int>(o.workload);
  obj["search_algorithm"] = o.search_algorithm;
  obj["budget_policy"] = o.budget_policy;
  obj["hyperband_min"] = o.hyperband.min_resource;
  obj["hyperband_max"] = o.hyperband.max_resource;
  obj["hyperband_eta"] = o.hyperband.eta;
  obj["hyperband_brackets"] = o.hyperband.max_brackets;
  obj["random_trials"] = o.random_trials;
  obj["trial_workers"] = o.trial_workers;
  obj["intra_op_threads"] = o.intra_op_threads;
  obj["objective_mode"] = static_cast<int>(o.objective_mode);
  obj["tuning_metric"] = static_cast<int>(o.tuning_metric);
  obj["target_accuracy"] = o.target_accuracy;
  obj["inference_aware"] = o.inference_aware;
  obj["tune_system_params"] = o.tune_system_params;
  obj["tune_extended_hparams"] = o.tune_extended_hparams;
  obj["power_cap_w"] = o.power_cap_w;
  obj["faults"] = faults_to_json(o.faults);
  obj["trial_retry"] = retry_to_json(o.trial_retry);
  obj["max_trial_failure_fraction"] = o.max_trial_failure_fraction;
  obj["train_device"] = profile_to_json(o.train_device);
  obj["edge_device"] = profile_to_json(o.edge_device);
  JsonArray extra;
  extra.reserve(o.extra_edge_devices.size());
  for (const DeviceProfile& device : o.extra_edge_devices) {
    extra.push_back(profile_to_json(device));
  }
  obj["extra_edge_devices"] = Json(std::move(extra));
  obj["routine_tuning"] = o.routine_tuning;
  obj["routine_profile_path"] = o.routine_profile_path;
  obj["journal_path"] = o.journal_path;
  obj["seed"] = std::to_string(o.seed);
  JsonObject inference;
  inference["objective"] = static_cast<int>(o.inference.objective);
  inference["algorithm"] = o.inference.algorithm;
  inference["max_batch"] = o.inference.max_batch;
  inference["max_memory_bytes"] = o.inference.max_memory_bytes;
  inference["workers"] = o.inference.workers;
  inference["seed"] = std::to_string(o.inference.seed);
  inference["cache_path"] = o.inference.cache_path;
  inference["cache_shards"] = o.inference.cache_shards;
  inference["use_cache"] = o.inference.use_cache;
  inference["faults"] = faults_to_json(o.inference.faults);
  inference["retry"] = retry_to_json(o.inference.retry);
  obj["inference"] = Json(std::move(inference));
  JsonObject runner;
  runner["proxy_samples"] = o.runner.proxy_samples;
  runner["validation_fraction"] = o.runner.validation_fraction;
  runner["seed"] = std::to_string(o.runner.seed);
  runner["momentum"] = o.runner.momentum;
  obj["runner"] = Json(std::move(runner));
  return Json(std::move(obj));
}

Result<EdgeTuneOptions> options_from_json(const Json& json) {
  if (!json.is_object()) {
    return Status::invalid_argument("job manifest options are not an object");
  }
  EdgeTuneOptions o;
  const int workload = static_cast<int>(json.get_number("workload", 0));
  if (workload < 0 || workload > static_cast<int>(WorkloadKind::kDetection)) {
    return Status::invalid_argument("job manifest holds unknown workload " +
                                    std::to_string(workload));
  }
  o.workload = static_cast<WorkloadKind>(workload);
  o.search_algorithm = json.get_string("search_algorithm", o.search_algorithm);
  o.budget_policy = json.get_string("budget_policy", o.budget_policy);
  o.hyperband.min_resource =
      json.get_number("hyperband_min", o.hyperband.min_resource);
  o.hyperband.max_resource =
      json.get_number("hyperband_max", o.hyperband.max_resource);
  o.hyperband.eta = json.get_number("hyperband_eta", o.hyperband.eta);
  o.hyperband.max_brackets = static_cast<int>(
      json.get_number("hyperband_brackets", o.hyperband.max_brackets));
  o.random_trials =
      static_cast<int>(json.get_number("random_trials", o.random_trials));
  o.trial_workers =
      static_cast<int>(json.get_number("trial_workers", o.trial_workers));
  o.intra_op_threads = static_cast<int>(
      json.get_number("intra_op_threads", o.intra_op_threads));
  o.objective_mode = static_cast<ObjectiveMode>(static_cast<int>(
      json.get_number("objective_mode", static_cast<int>(o.objective_mode))));
  o.tuning_metric = static_cast<MetricOfInterest>(static_cast<int>(
      json.get_number("tuning_metric", static_cast<int>(o.tuning_metric))));
  o.target_accuracy = json.get_number("target_accuracy", o.target_accuracy);
  o.inference_aware = json.get_bool("inference_aware", o.inference_aware);
  o.tune_system_params =
      json.get_bool("tune_system_params", o.tune_system_params);
  o.tune_extended_hparams =
      json.get_bool("tune_extended_hparams", o.tune_extended_hparams);
  o.power_cap_w = json.get_number("power_cap_w", o.power_cap_w);
  o.faults = faults_from_json(json.find("faults"));
  if (const Json* retry = json.find("trial_retry")) {
    o.trial_retry = retry_from_json(*retry);
  }
  o.max_trial_failure_fraction = json.get_number(
      "max_trial_failure_fraction", o.max_trial_failure_fraction);
  if (const Json* device = json.find("train_device")) {
    ET_ASSIGN_OR_RETURN(o.train_device, profile_from_json(*device));
  }
  if (const Json* device = json.find("edge_device")) {
    ET_ASSIGN_OR_RETURN(o.edge_device, profile_from_json(*device));
  }
  if (const Json* extra = json.find("extra_edge_devices");
      extra != nullptr && extra->is_array()) {
    for (const Json& device : extra->as_array()) {
      ET_ASSIGN_OR_RETURN(DeviceProfile profile, profile_from_json(device));
      o.extra_edge_devices.push_back(std::move(profile));
    }
  }
  o.routine_tuning = json.get_bool("routine_tuning", o.routine_tuning);
  o.routine_profile_path =
      json.get_string("routine_profile_path", o.routine_profile_path);
  o.journal_path = json.get_string("journal_path", o.journal_path);
  o.seed = seed_from_json(json, "seed", o.seed);
  if (const Json* inference = json.find("inference")) {
    InferenceServerOptions& i = o.inference;
    i.objective = static_cast<MetricOfInterest>(static_cast<int>(
        inference->get_number("objective", static_cast<int>(i.objective))));
    i.algorithm = inference->get_string("algorithm", i.algorithm);
    i.max_batch = static_cast<std::int64_t>(
        inference->get_number("max_batch", static_cast<double>(i.max_batch)));
    i.max_memory_bytes =
        inference->get_number("max_memory_bytes", i.max_memory_bytes);
    i.workers = static_cast<int>(inference->get_number("workers", i.workers));
    i.seed = seed_from_json(*inference, "seed", i.seed);
    i.cache_path = inference->get_string("cache_path", i.cache_path);
    i.cache_shards = static_cast<std::size_t>(inference->get_number(
        "cache_shards", static_cast<double>(i.cache_shards)));
    i.use_cache = inference->get_bool("use_cache", i.use_cache);
    i.faults = faults_from_json(inference->find("faults"));
    if (const Json* retry = inference->find("retry")) {
      i.retry = retry_from_json(*retry);
    }
  }
  if (const Json* runner = json.find("runner")) {
    o.runner.proxy_samples = static_cast<std::int64_t>(runner->get_number(
        "proxy_samples", static_cast<double>(o.runner.proxy_samples)));
    o.runner.validation_fraction = runner->get_number(
        "validation_fraction", o.runner.validation_fraction);
    o.runner.seed = seed_from_json(*runner, "seed", o.runner.seed);
    o.runner.momentum = runner->get_number("momentum", o.runner.momentum);
  }
  return o;
}

/// True when the service can manage crash durability for this job: the
/// journal layer supports its system and it brought no conflicting
/// journal/cache/fleet configuration of its own.
bool journalable(const JobRequest& request) {
  if (request.system == JobSystem::kProbe ||
      request.system == JobSystem::kHierarchical) {
    return false;
  }
  return request.options.journal_path.empty() && !request.options.fleet &&
         !request.options.resume &&
         request.options.inference.cache_path.empty() &&
         request.options.inference.shared_cache == nullptr;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

Json job_request_to_json(const JobRequest& request) {
  JsonObject obj;
  obj["system"] = static_cast<int>(request.system);
  obj["power_cap_w"] = request.power_cap_w;
  obj["tenant"] = request.tenant;
  obj["priority"] = request.priority;
  obj["options"] = options_to_json(request.options);
  return Json(std::move(obj));
}

Result<JobRequest> job_request_from_json(const Json& json) {
  if (!json.is_object()) {
    return Status::invalid_argument("job manifest is not a JSON object");
  }
  JobRequest request;
  const int system = static_cast<int>(json.get_number("system", 0));
  if (system < 0 || system > static_cast<int>(JobSystem::kProbe)) {
    return Status::invalid_argument("job manifest holds unknown system " +
                                    std::to_string(system));
  }
  request.system = static_cast<JobSystem>(system);
  request.power_cap_w = json.get_number("power_cap_w", request.power_cap_w);
  request.tenant = json.get_string("tenant", "");
  request.priority = static_cast<int>(json.get_number("priority", 0));
  const Json* options = json.find("options");
  if (options == nullptr) {
    return Status::invalid_argument("job manifest is missing options");
  }
  ET_ASSIGN_OR_RETURN(request.options, options_from_json(*options));
  return request;
}

TuningJobServer::TuningJobServer(int workers, int trial_workers_per_job)
    : TuningJobServer([&] {
        TuningServiceOptions options;
        options.workers = workers;
        options.trial_workers_per_job = trial_workers_per_job;
        return options;
      }()) {}

TuningJobServer::TuningJobServer(TuningServiceOptions options)
    : options_(std::move(options)),
      pool_(static_cast<std::size_t>(std::max(1, options_.workers))) {
  if (options_.shared_cache_shards > 0) {
    shared_cache_ =
        options_.shared_cache_path.empty()
            ? std::make_shared<HistoricalCache>(options_.shared_cache_shards)
            : std::make_shared<HistoricalCache>(options_.shared_cache_path,
                                                /*flush_every=*/16,
                                                options_.shared_cache_shards);
  }
  if (!options_.journal_dir.empty()) {
    ::mkdir(options_.journal_dir.c_str(), 0755);  // EEXIST is the usual case
    recover_journaled_jobs();
  }
}

void TuningJobServer::recover_journaled_jobs() {
  // Scan for job-<seq>.manifest.json files, sorted by name so recovered
  // jobs re-enter the queue in their original admission order.
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(options_.journal_dir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.size() > 14 && name.rfind(".manifest.json") ==
                                  name.size() - 14) {
        names.push_back(name);
      }
    }
    ::closedir(dir);
  }
  std::sort(names.begin(), names.end());
  std::vector<JobId> recovered;
  {
    MutexLock lock(mutex_);
    for (const std::string& name : names) {
      const std::string manifest_path = options_.journal_dir + "/" + name;
      // Keep journal_seq_ past every sequence on disk, parseable or not.
      if (name.rfind("job-", 0) == 0) {
        const std::uint64_t seq =
            std::strtoull(name.c_str() + 4, nullptr, 10);
        if (seq >= journal_seq_) journal_seq_ = seq + 1;
      }
      std::ifstream in(manifest_path);
      std::ostringstream buffer;
      if (in.good()) buffer << in.rdbuf();
      Result<Json> parsed = Json::parse(buffer.str());
      Result<JobRequest> request =
          parsed.ok() ? job_request_from_json(parsed.value())
                      : Result<JobRequest>(parsed.status());
      if (!request.ok()) {
        // Left in place as evidence: a manifest the server itself durably
        // wrote should never be unreadable.
        ET_LOG_WARN << "journal_dir manifest " << manifest_path
                    << " is unreadable, skipping: "
                    << request.status().to_string();
        continue;
      }
      // Resume exactly when the crashed incarnation got far enough to
      // write journal records; otherwise start the journal fresh.
      request.value().options.resume =
          file_exists(request.value().options.journal_path);
      const JobId id = next_id_++;
      Job job;
      job.tenant = request.value().tenant.empty() ? "default"
                                                  : request.value().tenant;
      job.priority = request.value().priority;
      job.manifest_path = manifest_path;
      job.job_journal_path = request.value().options.journal_path;
      job.request = std::move(request).value();
      pending_.insert({-job.priority, id});
      ++queued_;
      ++tenant_active_[job.tenant];
      ++counters_.recovered;
      jobs_.emplace(id, std::move(job));
      recovered.push_back(id);
    }
  }
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    pool_.submit([this] { run_next(); });
  }
}

TuningJobServer::~TuningJobServer() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  // Unblock run_next() tasks parked behind pause(): the pool's destructor
  // (pool_ is the last member, so it is destroyed FIRST) drains every
  // queued task, and each must be able to reach its job — every admitted
  // job therefore still reaches a terminal state, paused or not.
  resume_cv_.notify_all();
}

Result<JobId> TuningJobServer::submit(JobRequest request) {
  if (shutdown_requested()) {
    // Graceful shutdown: admission closes first so the queue drains (or is
    // journaled for the next incarnation) instead of growing.
    return Status::unavailable("server is shutting down; admission is closed");
  }
  const std::string tenant =
      request.tenant.empty() ? "default" : request.tenant;
  JobId id = 0;
  std::string manifest_path;
  std::string manifest_text;
  {
    MutexLock lock(mutex_);
    ++counters_.submitted;
    // Bounded admission: a server without backpressure queues unboundedly
    // and falls over later; kResourceExhausted here is the contract that
    // lets callers shed load at the edge instead.
    if (options_.max_queued > 0 && queued_ >= options_.max_queued) {
      ++counters_.rejected_queue_full;
      return Status::resource_exhausted(
          "admission queue is full (" + std::to_string(queued_) + "/" +
          std::to_string(options_.max_queued) + " queued jobs)");
    }
    if (options_.per_tenant_quota > 0) {
      auto it = tenant_active_.find(tenant);
      const std::size_t active =
          it == tenant_active_.end() ? 0 : it->second;
      if (active >= options_.per_tenant_quota) {
        ++counters_.rejected_tenant_quota;
        return Status::resource_exhausted(
            "tenant '" + tenant + "' is at its quota (" +
            std::to_string(active) + "/" +
            std::to_string(options_.per_tenant_quota) + " active jobs)");
      }
    }
    id = next_id_++;
    const int priority = request.priority;
    Job job;
    job.tenant = tenant;
    job.priority = priority;
    if (!options_.journal_dir.empty() && journalable(request)) {
      // Service-managed crash durability: give the job a journal beside a
      // durable manifest of its full request. The manifest is written
      // before this submit() returns, so an admitted job survives a crash
      // from the caller's first moment of believing it was admitted.
      const std::uint64_t seq = journal_seq_++;
      const std::string stem =
          options_.journal_dir + "/job-" + std::to_string(seq);
      manifest_path = stem + ".manifest.json";
      request.options.journal_path = stem + ".journal";
      job.manifest_path = manifest_path;
      job.job_journal_path = request.options.journal_path;
      manifest_text = job_request_to_json(request).dump_pretty() + "\n";
    }
    job.request = std::move(request);
    jobs_.emplace(id, std::move(job));
    pending_.insert({-priority, id});
    ++queued_;
    ++tenant_active_[tenant];
  }
  if (!manifest_path.empty()) {
    // Best-effort, like every durability feature: a job whose manifest
    // could not be written still runs (and still journals in-process); it
    // just will not survive a service restart.
    if (Status written = durable_write_file(manifest_path, manifest_text);
        !written.is_ok()) {
      ET_LOG_WARN << "job manifest write failed (job will not survive a "
                     "restart): "
                  << written.message();
    }
  }
  // One generic dispatch task per admitted job: the task picks the
  // highest-priority PENDING job at run time, so a late high-priority
  // submission overtakes earlier low-priority ones still in the queue.
  pool_.submit([this] { run_next(); });
  return id;
}

void TuningJobServer::run_next() {
  JobId id = 0;
  JobRequest request;
  int effective_trial_workers = 0;
  {
    MutexLock lock(mutex_);
    while (paused_ && !shutdown_) resume_cv_.wait(mutex_);
    if (pending_.empty()) return;  // defensive; one task per admitted job
    auto it = pending_.begin();
    id = it->second;
    pending_.erase(it);
    Job& job = jobs_.at(id);
    request = std::move(job.request);
    job.request = JobRequest{};  // release the queued options' memory now
    job.state = JobState::kRunning;
    --queued_;
    ++running_;
    if (request.options.trial_workers <= 1) {
      if (options_.adaptive_trial_workers) {
        // Self-tuning parallelism: split the trial-worker budget across
        // the work the server can see. Deep queue -> narrow jobs (total
        // throughput); idle -> one wide job (latency). Computed at
        // dispatch, under the same lock as the depth it reads.
        const auto depth = static_cast<int>(queued_);
        effective_trial_workers =
            std::clamp(options_.trial_worker_budget / (1 + depth), 1,
                       std::max(1, options_.trial_worker_budget));
      } else if (options_.trial_workers_per_job > 0) {
        effective_trial_workers = options_.trial_workers_per_job;
      }
    }
    job.trial_workers = effective_trial_workers > 0
                            ? effective_trial_workers
                            : std::max(1, request.options.trial_workers);
  }
  if (effective_trial_workers > 0) {
    request.options.trial_workers = effective_trial_workers;
  }
  // Multi-tenant result sharing: jobs that brought no cache of their own
  // read and write the server-wide sharded cache, so tenant B never
  // re-tunes an architecture tenant A already paid for. Jobs with explicit
  // cache configuration — and fleet coordinators, whose accounting must
  // not see foreign results — keep their own.
  // Journaled jobs are excluded too: resume parity requires a run-private
  // cache (EdgeTune refuses the combination outright).
  if (shared_cache_ && request.options.inference.use_cache &&
      !request.options.fleet && !request.options.inference.shared_cache &&
      request.options.inference.cache_path.empty() &&
      request.options.journal_path.empty()) {
    request.options.inference.shared_cache = shared_cache_;
  }
  Result<TuningReport> result = execute(std::move(request));
  std::string cleanup_manifest;
  std::string cleanup_journal;
  {
    MutexLock lock(mutex_);
    Job& job = jobs_.at(id);
    job.state = result.ok() ? JobState::kDone : JobState::kFailed;
    if (result.ok()) {
      ++counters_.completed;
    } else {
      ++counters_.failed;
    }
    // A shutdown-cancelled job is unfinished, not failed-for-good: its
    // manifest and journal stay on disk so the next incarnation re-admits
    // and resumes it. Every other terminal job releases its files.
    const bool keep_files =
        !result.ok() && result.status().code() == StatusCode::kCancelled;
    if (!keep_files) {
      cleanup_manifest = std::move(job.manifest_path);
      cleanup_journal = std::move(job.job_journal_path);
      job.manifest_path.clear();
      job.job_journal_path.clear();
    }
    job.result = std::move(result);
    job.finish_seq = ++finish_counter_;
    --running_;
    release_tenant_locked(job.tenant);
    terminal_fifo_.push_back(id);
    ++retained_terminal_;
    enforce_retention_locked();
  }
  if (!cleanup_manifest.empty()) std::remove(cleanup_manifest.c_str());
  if (!cleanup_journal.empty()) std::remove(cleanup_journal.c_str());
  done_cv_.notify_all();
}

Result<TuningReport> TuningJobServer::execute(JobRequest request) {
  // A fleet coordinator only drives the EdgeTune pipeline's batch
  // evaluator; a baseline job holding one would silently measure locally
  // while the caller believes it sharded. Refuse instead.
  if (request.options.fleet && request.system != JobSystem::kEdgeTune) {
    return Status::invalid_argument(
        "fleet execution is only supported for EdgeTune jobs");
  }
  switch (request.system) {
    case JobSystem::kEdgeTune:
      return EdgeTune(request.options).run();
    case JobSystem::kTune:
      return run_tune_baseline(request.options);
    case JobSystem::kHyperPower:
      return run_hyperpower_baseline(request.options, request.power_cap_w);
    case JobSystem::kHierarchical:
      return run_hierarchical(request.options);
    case JobSystem::kProbe: {
      TuningReport report;
      report.system = "probe";
      return report;
    }
  }
  return Status::invalid_argument("unknown job system");
}

void TuningJobServer::release_tenant_locked(const std::string& tenant) {
  auto it = tenant_active_.find(tenant);
  if (it == tenant_active_.end()) return;
  if (--it->second == 0) tenant_active_.erase(it);  // keep the map bounded
}

void TuningJobServer::enforce_retention_locked() {
  if (options_.max_retained == 0) return;
  // Evict oldest-finished first. Ids already reaped by wait() are lazy
  // tombstones in the fifo — skipped and dropped here. A job a waiter is
  // currently copying out of is skipped (its waiter reaps it), so the
  // retained count can transiently exceed the bound by the number of
  // in-flight wait()s, never by unclaimed results.
  std::deque<JobId> being_delivered;
  while (retained_terminal_ > options_.max_retained &&
         !terminal_fifo_.empty()) {
    const JobId victim = terminal_fifo_.front();
    terminal_fifo_.pop_front();
    auto it = jobs_.find(victim);
    if (it == jobs_.end()) continue;  // already reaped via wait()
    if (it->second.waiters > 0) {
      being_delivered.push_back(victim);
      continue;
    }
    jobs_.erase(it);
    --retained_terminal_;
    ++counters_.evicted;
  }
  for (auto it = being_delivered.rbegin(); it != being_delivered.rend();
       ++it) {
    terminal_fifo_.push_front(*it);
  }
}

Result<JobState> TuningJobServer::state(JobId id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id) +
                             " (never submitted, already waited for, or "
                             "evicted by the retention policy)");
  }
  return it->second.state;
}

Result<JobInfo> TuningJobServer::info(JobId id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id) +
                             " (never submitted, already waited for, or "
                             "evicted by the retention policy)");
  }
  JobInfo info;
  info.state = it->second.state;
  info.tenant = it->second.tenant;
  info.priority = it->second.priority;
  info.trial_workers = it->second.trial_workers;
  info.finish_seq = it->second.finish_seq;
  return info;
}

Result<TuningReport> TuningJobServer::wait(JobId id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("unknown job " + std::to_string(id) +
                             " (never submitted, already waited for, or "
                             "evicted by the retention policy)");
  }
  // `it` stays valid across the waits: std::map erase only invalidates the
  // erased iterator, and a job with registered waiters is neither evicted
  // (enforce_retention_locked skips it) nor reaped by anyone but the last
  // of those waiters.
  ++it->second.waiters;
  while (it->second.state != JobState::kDone &&
         it->second.state != JobState::kFailed) {
    done_cv_.wait(mutex_);
  }
  Result<TuningReport> result = it->second.result;  // copy: shared delivery
  if (--it->second.waiters == 0) {
    // Reap on delivery: the result has been handed out, so the server
    // stops retaining it — the fix for the historical "finished jobs are
    // never erased" leak. The id's entry in terminal_fifo_ becomes a lazy
    // tombstone.
    jobs_.erase(it);
    --retained_terminal_;
    ++counters_.reaped;
  }
  return result;
}

std::vector<JobId> TuningJobServer::jobs() const {
  MutexLock lock(mutex_);
  std::vector<JobId> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

std::size_t TuningJobServer::unfinished() const {
  MutexLock lock(mutex_);
  return queued_ + running_;
}

TuningServiceStats TuningJobServer::stats() const {
  MutexLock lock(mutex_);
  TuningServiceStats stats = counters_;
  stats.queued = queued_;
  stats.running = running_;
  stats.retained_terminal = retained_terminal_;
  return stats;
}

void TuningJobServer::pause() {
  MutexLock lock(mutex_);
  paused_ = true;
}

void TuningJobServer::resume() {
  {
    MutexLock lock(mutex_);
    paused_ = false;
  }
  resume_cv_.notify_all();
}

}  // namespace edgetune
