#include "tuning/model_server.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/log.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "tensor/gemm.hpp"

namespace edgetune {

namespace {

/// First evaluation failure across concurrent trials (first-writer-wins).
class ErrorSlot {
 public:
  void note(const Status& status) EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (first_.is_ok()) first_ = status;
  }

  [[nodiscard]] Status first() const EDGETUNE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return first_;
  }

 private:
  mutable Mutex mutex_;
  Status first_ EDGETUNE_GUARDED_BY(mutex_);
};

}  // namespace

EdgeTuneOptions::EdgeTuneOptions()
    : train_device(device_titan_server()), edge_device(device_rpi3b()) {}

ParamSpec workload_model_hparam_spec(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return ParamSpec::categorical("model_hparam", {18, 34, 50});
    case WorkloadKind::kSpeech:
      return ParamSpec::categorical("model_hparam", {32, 64, 128});
    case WorkloadKind::kNlp:
      return ParamSpec::integer("model_hparam", 1, 32, /*log_scale=*/true);
    case WorkloadKind::kDetection:
      return ParamSpec::real("model_hparam", 0.1, 0.5);
  }
  return ParamSpec::real("model_hparam", 0, 1);
}

EdgeTune::EdgeTune(EdgeTuneOptions options)
    : options_([&] {
        EdgeTuneOptions o = std::move(options);
        o.runner.workload = o.workload;
        o.runner.train_device = o.train_device;
        if (o.runner.seed == TrialRunnerOptions{}.seed) {
          o.runner.seed = o.seed;
        }
        // One --inject-fault plan covers the whole pipeline: forward it to
        // the inference server's sites unless that server was configured
        // with its own plan explicitly.
        if (o.inference.faults.empty()) o.inference.faults = o.faults;
        return o;
      }()),
      fault_injector_(options_.seed, options_.faults),
      runner_(options_.runner),
      inference_server_(options_.edge_device, options_.inference) {
  // Process-wide: the kernel substrate has one pool shared by every layer.
  set_intra_op_threads(options_.intra_op_threads);
}

SearchSpace EdgeTune::model_search_space() const {
  SearchSpace space;
  space.add(workload_model_hparam_spec(options_.workload));
  // Training hyperparameters (§5.1: batch 32..512 across all workloads).
  space.add(ParamSpec::integer("train_batch", 32, 512, /*log_scale=*/true));
  space.add(ParamSpec::real("lr", 0.01, 0.2, /*log_scale=*/true));
  if (options_.tune_extended_hparams) {
    space.add(ParamSpec::real("momentum", 0.0, 0.95));
    space.add(ParamSpec::real("weight_decay", 1e-6, 1e-2, /*log_scale=*/true));
  }
  if (options_.tune_system_params) {
    const int gpus = options_.train_device.num_gpus;
    if (gpus >= 8) {
      space.add(ParamSpec::categorical("num_gpus", {1, 2, 4, 8}));
    } else if (gpus >= 1) {
      space.add(ParamSpec::integer("num_gpus", 1, gpus));
    }
  }
  return space;
}

Result<TuningReport> EdgeTune::run() {
  ET_ASSIGN_OR_RETURN(std::unique_ptr<BudgetPolicy> policy,
                      make_budget_policy(options_.budget_policy));
  SearchSpace space = model_search_space();
  ET_ASSIGN_OR_RETURN(
      std::unique_ptr<SearchAlgorithm> algorithm,
      make_search_algorithm(options_.search_algorithm, space,
                            options_.hyperband, options_.random_trials,
                            /*batch_size=*/std::max(1, options_.trial_workers)));

  TuningReport report;
  report.system = options_.inference_aware ? "edgetune" : "tune";
  if (options_.power_cap_w > 0) report.system = "hyperpower";

  // --- Parallel trial-execution engine. Trials within one batch (a
  // HyperBand rung, or a grid/random candidate set) are independent and run
  // concurrently on a shared pool. Everything a trial touches is either
  // per-trial local, immutable (runner_), internally synchronized
  // (inference_server_), or one of the atomics below; the report itself is
  // only mutated at batch commit, on the search thread.
  const int workers = std::max(1, options_.trial_workers);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);

  ErrorSlot eval_error;
  const auto note_error = [&](const Status& status) {
    eval_error.note(status);
  };
  std::atomic<bool> target_reached{false};
  std::atomic<double> best_accuracy{0.0};  // incumbent; killed trials excluded

  // What one evaluation produced, staged until batch commit.
  struct TrialEval {
    double objective = std::numeric_limits<double>::infinity();
    bool logged = false;  // only target-accuracy skips leave no log entry
    TrialLog log;
    double inference_energy_j = 0;
    double wall_s = 0;  // simulated span (duration + stall + retry backoff)
  };

  // `incumbent_override` >= 0 freezes the HyperPower unpromising-kill
  // incumbent for this evaluation; < 0 reads the live atomic. The parallel
  // path passes a snapshot taken at batch start so concurrent trials are
  // only compared against results that had completed when they started —
  // completion order inside a batch then cannot change the simulated
  // accounting, keeping same-seed parallel runs deterministic. The serial
  // path reads live, byte-identical to the historical loop.
  const auto eval_one = [&](const Config& config, double resource,
                            double incumbent_override) -> TrialEval {
    TrialEval out;
    // Target-accuracy early stop: skip remaining scheduled trials for free.
    // Checked per trial, so a serial run still skips the rest of a rung;
    // parallel trials already in flight run to completion.
    if (target_reached.load(std::memory_order_acquire)) return out;
    const TrialBudget budget = policy->at(resource);

    // Kick off inference tuning *before* the training trial so the two
    // overlap (Alg. 1 lines 5-6; Fig 6).
    std::future<Result<InferenceRecommendation>> inference_future;
    if (options_.inference_aware) {
      Result<ArchSpec> arch = runner_.arch_for(config);
      if (!arch.ok()) {
        note_error(arch.status());
        return out;
      }
      inference_future = inference_server_.submit(arch.value());
    }

    // Fault/retry identity of this trial. Content-keyed (config + resource),
    // NOT order-keyed: injected faults and backoff jitter are then pure
    // functions of the seed and the work item, identical at any
    // --trial-workers count and any completion order.
    const std::string trial_key =
        config_to_string(config) + "|r=" + format_double(resource, 6);
    const std::uint64_t trial_seed = options_.seed ^ stable_hash64(trial_key);

    TrialLog& log = out.log;
    log.config = config;
    log.resource = resource;
    log.budget = budget;

    RetryStats retry;
    Result<TrialOutcome> outcome = retry_call<TrialOutcome>(
        options_.trial_retry, trial_seed,
        [&](int attempt) -> Result<TrialOutcome> {
          if (Status injected = fault_injector_.fire(fault_site::kTrialTrain,
                                                     trial_key, attempt);
              !injected.is_ok()) {
            return injected;
          }
          Result<TrialOutcome> run = runner_.run(config, budget);
          const double deadline = options_.trial_retry.attempt_deadline_s;
          if (run.ok() && deadline > 0 &&
              run.value().train_time_s > deadline) {
            return Status::deadline_exceeded(
                "trial exceeded per-attempt deadline (" +
                format_double(run.value().train_time_s, 1) + "s > " +
                format_double(deadline, 1) + "s simulated)");
          }
          return run;
        },
        &retry);
    log.attempts = retry.attempts;
    log.retry_backoff_s = retry.backoff_s;

    if (!outcome.ok()) {
      // Permanent failure (retries exhausted or a non-retryable code):
      // a first-class log entry with the final status. The search sees an
      // infinite objective and moves on; the failure-budget check in run()
      // decides whether the job as a whole survives.
      note_error(outcome.status());
      if (inference_future.valid()) inference_future.wait();
      log.status = outcome.status();
      log.objective = std::numeric_limits<double>::infinity();
      out.logged = true;
      out.wall_s = retry.backoff_s;  // attempts failed at t=0, only backoff
      return out;
    }
    const TrialOutcome& trial = outcome.value();

    InferenceRecommendation rec;
    if (options_.inference_aware) {
      Result<InferenceRecommendation> rec_result = inference_future.get();
      if (!rec_result.ok()) {
        // The trial trained but its inference tune failed permanently
        // (single-flight joiners re-probe and inference retries happen
        // inside the server, so this is rare). Charge the training cost.
        note_error(rec_result.status());
        log.status = rec_result.status();
        log.accuracy = trial.accuracy;
        log.duration_s = trial.train_time_s;
        log.energy_j = trial.train_energy_j;
        log.objective = std::numeric_limits<double>::infinity();
        out.logged = true;
        out.wall_s = trial.train_time_s + retry.backoff_s;
        return out;
      }
      rec = std::move(rec_result).value();
    }

    // --- Accounting (simulated time/energy). The inference server runs
    // pipelined with the trial; only the excess beyond the trial duration
    // stalls the model server (§3.3).
    log.accuracy = trial.accuracy;
    log.duration_s = trial.train_time_s;
    log.energy_j = trial.train_energy_j;
    log.inference_cached = rec.from_cache;
    log.inference_tuning_s = rec.tuning_time_s;
    log.inference_stall_s =
        std::max(0.0, rec.tuning_time_s - trial.train_time_s);

    bool power_capped = false;
    if (options_.power_cap_w > 0 && trial.train_time_s > 0) {
      const double avg_power_w = trial.train_energy_j / trial.train_time_s;
      power_capped = avg_power_w > options_.power_cap_w;
    }
    // HyperPower-mode early termination (§6: "early termination of the
    // training at the objective evaluation"): a trial whose learning curve
    // is clearly below the incumbent is killed partway through.
    const double incumbent =
        incumbent_override >= 0
            ? incumbent_override
            : best_accuracy.load(std::memory_order_acquire);
    const bool unpromising = options_.power_cap_w > 0 && incumbent > 0 &&
                             trial.accuracy < 0.9 * incumbent;

    double objective = std::numeric_limits<double>::infinity();
    switch (options_.objective_mode) {
      case ObjectiveMode::kRatio:
        objective = tuning_objective(options_.tuning_metric, trial, rec,
                                     options_.inference_aware);
        break;
      case ObjectiveMode::kAccuracyOnly:
        objective = 1.0 - trial.accuracy;
        break;
    }
    if (power_capped) {
      // Over-cap trials are terminated almost immediately.
      objective = std::numeric_limits<double>::infinity();
      log.duration_s *= 0.3;
      log.energy_j *= 0.3;
      log.inference_stall_s = 0;
    } else if (unpromising) {
      log.duration_s *= 0.4;
      log.energy_j *= 0.4;
    }
    log.objective = objective;
    out.objective = objective;
    out.logged = true;
    out.inference_energy_j = rec.tuning_energy_j;
    out.wall_s = log.duration_s + log.inference_stall_s + retry.backoff_s;

    if (!power_capped) {
      // A power-capped trial was killed at ~30% progress: its accuracy is
      // hypothetical, so it must neither become the incumbent nor trigger
      // the target-accuracy early stop.
      double seen = best_accuracy.load(std::memory_order_relaxed);
      while (trial.accuracy > seen &&
             !best_accuracy.compare_exchange_weak(seen, trial.accuracy)) {
      }
      if (options_.target_accuracy > 0 &&
          trial.accuracy >= options_.target_accuracy) {
        target_reached.store(true, std::memory_order_release);
      }
    }
    return out;
  };

  const BatchEvalFn batch_eval =
      [&](const std::vector<EvalRequest>& batch) -> std::vector<double> {
    std::vector<TrialEval> evals(batch.size());
    if (pool && batch.size() > 1) {
      const double incumbent = best_accuracy.load(std::memory_order_acquire);
      std::vector<std::future<void>> pending;
      pending.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        pending.push_back(pool->submit([&, incumbent, i] {
          evals[i] = eval_one(batch[i].config, batch[i].resource, incumbent);
        }));
      }
      for (std::future<void>& f : pending) f.get();
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        evals[i] = eval_one(batch[i].config, batch[i].resource, -1.0);
      }
    }

    // Commit in submission order, single-threaded: the trial log is append-
    // ordered no matter which worker finished first, and the batch's wall
    // clock is the makespan of FIFO list scheduling over `workers` — the
    // max over concurrent trials, not their sum (with 1 worker this reduces
    // to the plain serial sum).
    std::vector<double> worker_load(static_cast<std::size_t>(workers), 0.0);
    std::vector<double> objectives;
    objectives.reserve(batch.size());
    for (TrialEval& eval : evals) {
      objectives.push_back(eval.objective);
      if (!eval.logged) continue;
      eval.log.id = static_cast<int>(report.trials.size());
      *std::min_element(worker_load.begin(), worker_load.end()) += eval.wall_s;
      report.tuning_energy_j += eval.log.energy_j + eval.inference_energy_j;
      if (eval.log.failed()) ++report.failed_trials;
      if (eval.log.attempts > 1) ++report.retried_trials;
      report.retry_backoff_s += eval.log.retry_backoff_s;
      report.trials.push_back(std::move(eval.log));
    }
    report.tuning_runtime_s +=
        *std::max_element(worker_load.begin(), worker_load.end());
    return objectives;
  };

  Rng rng(options_.seed);
  SearchResult result = algorithm->optimize_batch(batch_eval, rng);
  report.best_accuracy = best_accuracy.load();
  report.first_error = eval_error.first();
  if (!std::isfinite(result.best_objective)) {
    return report.first_error.is_ok()
               ? Status::internal("tuning produced no finite objective")
               : report.first_error;
  }
  // Failure budget: graceful degradation tolerated isolated permanent
  // failures above; a failure fraction beyond the budget means the run's
  // conclusions can't be trusted, so surface the aggregated error instead
  // of a report.
  if (report.failed_trials > 0 && !report.trials.empty()) {
    const double failed_fraction =
        static_cast<double>(report.failed_trials) /
        static_cast<double>(report.trials.size());
    if (failed_fraction > options_.max_trial_failure_fraction) {
      return Status(report.first_error.code(),
                    std::to_string(report.failed_trials) + " of " +
                        std::to_string(report.trials.size()) +
                        " trials failed (budget " +
                        format_double(options_.max_trial_failure_fraction, 2) +
                        "); first error: " + report.first_error.to_string());
    }
  }
  report.best_config = result.best_config;
  report.best_objective = result.best_objective;

  // Final inference recommendation for the winning architecture — EdgeTune's
  // headline output. For the winning config this is (almost always) a cache
  // hit; baselines pay for it here since they never tuned inference.
  ET_ASSIGN_OR_RETURN(ArchSpec best_arch,
                      runner_.arch_for(report.best_config));
  ET_ASSIGN_OR_RETURN(report.inference, inference_server_.tune(best_arch));

  // Cross-device recommendations for the winner (§1's multi-device story).
  for (const DeviceProfile& device : options_.extra_edge_devices) {
    InferenceServerOptions per_device_options = options_.inference;
    per_device_options.cache_path.clear();  // keyed per device, but keep
                                            // ad-hoc servers self-contained
    InferenceTuningServer extra(device, per_device_options);
    ET_ASSIGN_OR_RETURN(InferenceRecommendation rec, extra.tune(best_arch));
    report.per_device.emplace(device.name, std::move(rec));
  }

  report.cache_hits = inference_server_.cache().hits();
  report.cache_misses = inference_server_.cache().misses();
  return report;
}

}  // namespace edgetune
