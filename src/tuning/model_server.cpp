#include "tuning/model_server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "common/log.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/shutdown.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tuning/billing.hpp"
#include "tuning/fleet.hpp"
#include "tuning/journal.hpp"

namespace edgetune {

EdgeTuneOptions::EdgeTuneOptions()
    : train_device(device_titan_server()), edge_device(device_rpi3b()) {}

ParamSpec workload_model_hparam_spec(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return ParamSpec::categorical("model_hparam", {18, 34, 50});
    case WorkloadKind::kSpeech:
      return ParamSpec::categorical("model_hparam", {32, 64, 128});
    case WorkloadKind::kNlp:
      return ParamSpec::integer("model_hparam", 1, 32, /*log_scale=*/true);
    case WorkloadKind::kDetection:
      return ParamSpec::real("model_hparam", 0.1, 0.5);
  }
  return ParamSpec::real("model_hparam", 0, 1);
}

EdgeTuneOptions normalize_options(EdgeTuneOptions options) {
  EdgeTuneOptions o = std::move(options);
  o.runner.workload = o.workload;
  o.runner.train_device = o.train_device;
  if (o.runner.seed == TrialRunnerOptions{}.seed) {
    o.runner.seed = o.seed;
  }
  // One --inject-fault plan covers the whole pipeline: forward it to
  // the inference server's sites unless that server was configured
  // with its own plan explicitly.
  if (o.inference.faults.empty()) o.inference.faults = o.faults;
  return o;
}

EdgeTune::EdgeTune(EdgeTuneOptions options)
    : options_(normalize_options(std::move(options))),
      fault_injector_(options_.seed, options_.faults),
      runner_(options_.runner),
      inference_server_(options_.edge_device, options_.inference) {
  // Process-wide: the kernel substrate has one pool shared by every layer.
  set_intra_op_threads(options_.intra_op_threads);
}

EdgeTune::~EdgeTune() = default;

std::size_t EdgeTune::journal_fsync_failures() const noexcept {
  return journal_ ? journal_->fsync_failures() : 0;
}

SearchSpace EdgeTune::model_search_space() const {
  SearchSpace space;
  space.add(workload_model_hparam_spec(options_.workload));
  // Training hyperparameters (§5.1: batch 32..512 across all workloads).
  space.add(ParamSpec::integer("train_batch", 32, 512, /*log_scale=*/true));
  space.add(ParamSpec::real("lr", 0.01, 0.2, /*log_scale=*/true));
  if (options_.tune_extended_hparams) {
    space.add(ParamSpec::real("momentum", 0.0, 0.95));
    space.add(ParamSpec::real("weight_decay", 1e-6, 1e-2, /*log_scale=*/true));
  }
  if (options_.tune_system_params) {
    const int gpus = options_.train_device.num_gpus;
    if (gpus >= 8) {
      space.add(ParamSpec::categorical("num_gpus", {1, 2, 4, 8}));
    } else if (gpus >= 1) {
      space.add(ParamSpec::integer("num_gpus", 1, gpus));
    }
  }
  return space;
}

TrialMeasurement EdgeTune::measure_one(const EvalRequest& request) {
  TrialMeasurement m;
  Result<std::unique_ptr<BudgetPolicy>> policy =
      make_budget_policy(options_.budget_policy);
  if (!policy.ok()) {
    m.setup_status = policy.status();
    return m;
  }
  const TrialBudget budget = policy.value()->at(request.resource);

  // Kick off inference tuning *before* the training trial so the two
  // overlap (Alg. 1 lines 5-6; Fig 6).
  std::future<Result<InferenceRecommendation>> inference_future;
  if (options_.inference_aware) {
    Result<ArchSpec> arch = runner_.arch_for(request.config);
    if (!arch.ok()) {
      m.setup_status = arch.status();
      return m;
    }
    m.arch_id = arch.value().id;
    m.inference_attempted = true;
    inference_future = inference_server_.submit(arch.value());
  }

  // Fault/retry identity of this trial. Content-keyed (config + resource),
  // NOT order-keyed: injected faults and backoff jitter are then pure
  // functions of the seed and the work item, identical at any
  // --trial-workers count, any completion order, and on any fleet worker.
  const std::string trial_key = trial_content_key(request);
  const std::uint64_t trial_seed = options_.seed ^ stable_hash64(trial_key);

  RetryStats retry;
  Result<TrialOutcome> outcome = retry_call<TrialOutcome>(
      options_.trial_retry, trial_seed,
      [&](int attempt) -> Result<TrialOutcome> {
        if (Status injected = fault_injector_.fire(fault_site::kTrialTrain,
                                                   trial_key, attempt);
            !injected.is_ok()) {
          return injected;
        }
        Result<TrialOutcome> run = runner_.run(request.config, budget);
        const double deadline = options_.trial_retry.attempt_deadline_s;
        if (run.ok() && deadline > 0 && run.value().train_time_s > deadline) {
          return Status::deadline_exceeded(
              "trial exceeded per-attempt deadline (" +
              format_double(run.value().train_time_s, 1) + "s > " +
              format_double(deadline, 1) + "s simulated)");
        }
        return run;
      },
      &retry);
  m.attempts = retry.attempts;
  m.retry_backoff_s = retry.backoff_s;
  m.train_status = outcome.ok() ? Status::ok() : outcome.status();
  if (outcome.ok()) m.outcome = std::move(outcome).value();

  // Harvest the pipelined inference result even when training failed: the
  // accounting walk needs every member's observation to re-assign the
  // flight's cost by content (billing.hpp) — the scheduling-dependent
  // flight leader may well be a trial whose training failed.
  if (inference_future.valid()) {
    Result<InferenceRecommendation> rec = inference_future.get();
    m.inference_status = rec.ok() ? Status::ok() : rec.status();
    if (rec.ok()) m.rec = std::move(rec).value();
  }
  return m;
}

Result<TuningReport> EdgeTune::run() {
  if (options_.fleet && !options_.inference_aware) {
    return Status::invalid_argument(
        "fleet execution requires inference-aware tuning (--system edgetune)");
  }
  if (options_.fleet && options_.inference.shared_cache) {
    // Fleet workers keep independent caches and the report's counters come
    // from the serial replay; a cache shared with other jobs would leak
    // their results into this run's recommendations nondeterministically.
    return Status::invalid_argument(
        "fleet execution does not support a shared historical cache");
  }
  const bool journaling = !options_.journal_path.empty();
  if (!journaling && options_.resume) {
    return Status::invalid_argument(
        "resume requires a journal path (--journal)");
  }
  if (journaling && options_.fleet) {
    return Status::invalid_argument(
        "the trial journal is not supported in fleet mode; run the "
        "journaled job single-process (fleet measurement is already "
        "loss-tolerant on its own)");
  }
  if (journaling && (!options_.inference.cache_path.empty() ||
                     options_.inference.shared_cache != nullptr)) {
    // A crashed run's persistent/shared cache mutations would survive into
    // the resumed run: a re-measured tail trial could hit an entry the
    // uninterrupted run paid a miss for, breaking byte parity.
    return Status::invalid_argument(
        "the trial journal requires a run-private in-memory cache "
        "(drop --cache-file / the shared service cache)");
  }
  journal_.reset();
  replay_.clear();
  replay_cursor_ = 0;
  journal_replayed_ = 0;
  journal_measured_ = 0;
  journal_append_failures_ = 0;
  journal_error_ = Status::ok();
  journal_disabled_ = false;
  interrupted_ = false;
  if (journaling) {
    if (options_.resume) {
      ET_ASSIGN_OR_RETURN(journal_,
                          TrialJournal::resume(options_.journal_path, options_,
                                               fault_injector_, &replay_));
    } else {
      ET_ASSIGN_OR_RETURN(journal_,
                          TrialJournal::create(options_.journal_path, options_,
                                               fault_injector_));
    }
  }
  // Deterministic kill point: commit index to hard-abort at (0 = disabled).
  const int crash_after =
      fault_injector_.fail_first(fault_site::kCrashAfterCommit);
  std::size_t commits = 0;

  ET_ASSIGN_OR_RETURN(std::unique_ptr<BudgetPolicy> policy,
                      make_budget_policy(options_.budget_policy));
  SearchSpace space = model_search_space();
  ET_ASSIGN_OR_RETURN(
      std::unique_ptr<SearchAlgorithm> algorithm,
      make_search_algorithm(options_.search_algorithm, space,
                            options_.hyperband, options_.random_trials,
                            /*batch_size=*/std::max(1, options_.trial_workers)));

  TuningReport report;
  report.system = options_.inference_aware ? "edgetune" : "tune";
  if (options_.power_cap_w > 0) report.system = "hyperpower";

  // --- Measure/account split (DESIGN §5.5). Measuring a trial (the retried
  // training run plus the pipelined inference request) is expensive,
  // thread-safe, and content-pure, so trials of one batch (a HyperBand rung
  // or a grid/random candidate set) run on a local pool or a remote fleet
  // in any order. Every accounting DECISION — billing, incumbent,
  // target-accuracy stop, error ordering, cache counters, wall clock — is
  // made afterwards in a single-threaded commit walk over the batch in
  // submission order, so the report is a pure function of (options, seed):
  // byte-identical serial, parallel, and distributed.
  const int workers = std::max(1, options_.trial_workers);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1 && !options_.fleet) pool = std::make_unique<ThreadPool>(workers);

  struct CommitState {
    bool target_reached = false;
    double best_accuracy = 0;  // incumbent; killed trials excluded
    // Serial-replay cache counters: what the historical cache would have
    // seen had the batches executed serially. Independent of scheduling and
    // of where measurements ran; equal to the live counters on a serial run.
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    Status first_error;  // first failure in commit order
    // Canonical per-architecture recommendation in cache-hit form (what a
    // serial run's final cache probe returns): lets a fleet coordinator
    // report the winner without ever having tuned locally.
    std::map<std::string, InferenceRecommendation> canonical;
  } state;
  const auto note_error = [&state](const Status& status) {
    if (state.first_error.is_ok()) state.first_error = status;
  };
  const auto power_capped = [this](const TrialOutcome& trial) {
    return options_.power_cap_w > 0 && trial.train_time_s > 0 &&
           trial.train_energy_j / trial.train_time_s > options_.power_cap_w;
  };
  // Does this measurement trigger the target-accuracy stop? Mirrors the
  // success path of the commit walk: only a fully successful trial counts,
  // and a power-capped trial's accuracy is hypothetical (it was killed at
  // ~30% progress), so it must neither become the incumbent nor stop the
  // run.
  const auto triggers_target = [&](const TrialMeasurement& m) {
    if (options_.target_accuracy <= 0) return false;
    if (!m.setup_status.is_ok() || !m.train_status.is_ok()) return false;
    if (m.inference_attempted && !m.inference_status.is_ok()) return false;
    if (power_capped(m.outcome)) return false;
    return m.outcome.accuracy >= options_.target_accuracy;
  };

  const BatchEvalFn batch_eval =
      [&](const std::vector<EvalRequest>& batch) -> std::vector<double> {
    // --- Measure.
    std::vector<TrialMeasurement> meas(batch.size());
    std::vector<char> replayed(batch.size(), 0);
    if (shutdown_requested()) interrupted_ = true;
    if (interrupted_ || !journal_error_.is_ok()) {
      // A shutdown signal or a journal replay error poisons the rest of the
      // search: return all-infinite objectives without measuring so the
      // algorithm winds down, and let run() surface the real status.
      return std::vector<double>(batch.size(),
                                 std::numeric_limits<double>::infinity());
    }
    // Serial measurement honors a shutdown signal between trials; commits
    // from this cut onward are abandoned (never accounted, never
    // journaled), so a resumed run re-measures exactly from the cut.
    std::size_t measured_upto = batch.size();
    if (!state.target_reached) {
      // Replay prefix (resume): trials the crashed run already committed
      // are served from the journal instead of re-measured. Commit order is
      // deterministic and committed trials form a prefix of each batch, so
      // the journal's record sequence must equal this search's own request
      // sequence — validated per record via the content key.
      bool reached = false;
      for (std::size_t i = 0;
           i < batch.size() && replay_cursor_ < replay_.size() && !reached;
           ++i) {
        const JournalRecord& record = replay_[replay_cursor_];
        const std::string key = trial_content_key(batch[i]);
        if (record.key != key) {
          journal_error_ = Status::failed_precondition(
              "journal " + options_.journal_path + ": record " +
              std::to_string(replay_cursor_) + " holds trial '" + record.key +
              "' where this search schedules '" + key +
              "': the journal was written by a different run");
          return std::vector<double>(batch.size(),
                                     std::numeric_limits<double>::infinity());
        }
        meas[i] = record.measurement;
        replayed[i] = 1;
        ++replay_cursor_;
        ++journal_replayed_;
        if (triggers_target(meas[i])) reached = true;
      }
      if (options_.fleet) {
        meas = options_.fleet->measure_batch(batch);
      } else if (pool && batch.size() > 1) {
        std::vector<std::future<void>> pending;
        pending.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (replayed[i] != 0) continue;
          pending.push_back(
              pool->submit([&, i] { meas[i] = measure_one(batch[i]); }));
        }
        for (std::future<void>& f : pending) f.get();
      } else {
        // Serial fast path: measuring in commit order lets trials behind a
        // target-accuracy trigger skip at zero cost. The commit walk below
        // recomputes the same prefix, so parallel and fleet runs (which
        // measure eagerly) account the identical trial set.
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (replayed[i] != 0 || reached) continue;
          if (shutdown_requested()) {
            interrupted_ = true;
            measured_upto = i;
            break;
          }
          meas[i] = measure_one(batch[i]);
          if (triggers_target(meas[i])) reached = true;
        }
      }
    }
    // Pool and fleet paths measure the whole batch; a signal that arrived
    // meanwhile still stops the search here, after everything measured was
    // committed — the journal then holds the full batch and resume replays
    // it without re-measuring.
    if (shutdown_requested()) interrupted_ = true;

    // --- Account, step 1: the serially-executed prefix. Trials a serial
    // run would never have reached (target already hit) are discarded
    // unread, wherever they were measured.
    std::vector<char> executed(batch.size(), 0);
    {
      bool reached = state.target_reached;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (reached) continue;
        if (i >= measured_upto) break;
        executed[i] = 1;
        if (triggers_target(meas[i])) reached = true;
      }
      state.target_reached = reached;
    }

    // --- Account, step 2: content-based single-flight billing (the PR 6
    // headline fix) and the flight-group map the replay counters need. With
    // the cache disabled there are no flights: every request ran its own
    // search and reports its own observation.
    const bool flights = options_.inference.use_cache;
    std::vector<FlightMember> members(batch.size());
    struct Group {
      std::size_t first;  // earliest executed member — the serial leader
      double cost_s;
    };
    std::map<std::string, Group> groups;
    if (flights) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (executed[i] == 0) continue;
        const TrialMeasurement& m = meas[i];
        FlightMember& member = members[i];
        member.arch_id = m.arch_id;
        member.trained = m.setup_status.is_ok() && m.train_status.is_ok();
        member.has_rec = m.inference_attempted && m.inference_status.is_ok();
        if (member.has_rec) {
          // An architecture committed in an earlier batch is a cache hit in
          // the serial replay no matter what this measurement observed:
          // fleet workers keep independent caches, so a re-encounter (a
          // HyperBand promotion, say) may have been freshly tuned on a
          // worker that had not seen it yet. The serial run already paid
          // for it once; zero the observation.
          const bool seen_before = state.canonical.count(m.arch_id) > 0;
          member.observed_tuning_s = seen_before ? 0 : m.rec.tuning_time_s;
          member.observed_tuning_energy_j =
              seen_before ? 0 : m.rec.tuning_energy_j;
          auto [it, inserted] = groups.emplace(m.arch_id, Group{i, 0});
          if (member.observed_tuning_s > it->second.cost_s) {
            it->second.cost_s = member.observed_tuning_s;
          }
        }
      }
    }
    const std::vector<BillingShare> shares = resolve_flight_billing(members);

    // --- Account, step 3: emit logs and totals in submission order. The
    // batch's wall clock is the makespan of FIFO list scheduling over
    // `workers` — the max over concurrent trials, not their sum (with 1
    // worker this reduces to the plain serial sum).
    std::vector<double> worker_load(static_cast<std::size_t>(workers), 0.0);
    std::vector<double> objectives(batch.size(),
                                   std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (executed[i] == 0) continue;
      const TrialMeasurement& m = meas[i];
      // Journal the committed trial BEFORE its accounting is applied: after
      // a crash anywhere past this append, a resumed run replays the
      // identical measurement instead of re-measuring. An append failure
      // disables journaling for the rest of the run — the journal stays a
      // valid resumable prefix (holes would poison replay) and tuning
      // itself never fails over durability.
      if (journal_ && replayed[i] == 0) {
        ++journal_measured_;
        if (!journal_disabled_) {
          const Status appended =
              journal_->append_trial(trial_content_key(batch[i]), m);
          if (!appended.is_ok()) {
            journal_disabled_ = true;
            ++journal_append_failures_;
            ET_LOG_WARN << "trial journal disabled for the rest of the run: "
                        << appended.message();
          }
        }
      }
      ++commits;
      if (crash_after > 0 && commits == static_cast<std::size_t>(crash_after)) {
        // Deterministic kill point (crash.after_commit): hard-abort the
        // whole process after the Nth commit. Replayed commits count, so
        // "kill at N" composes with resume the way an operator expects.
        const Status fired = fault_injector_.fire(
            fault_site::kCrashAfterCommit, std::to_string(commits), 0);
        if (journal_) {
          const Status synced = journal_->sync();
          if (!synced.is_ok()) {
            ET_LOG_WARN << "journal sync before crash-point abort failed: "
                        << synced.message();
          }
        }
        ET_LOG_WARN << "crash.after_commit: hard-aborting after commit "
                    << commits << " (" << fired.message() << ")";
        std::_Exit(kCrashExitCode);
      }
      if (!m.setup_status.is_ok()) {
        note_error(m.setup_status);
        continue;  // no log entry; the objective stays infinite
      }
      // Replay the serial cache-counter walk: the first member of a paying
      // flight group misses, every other member hits, and a failed flight
      // is one miss per member (each becomes its own re-probing leader).
      if (flights && m.inference_attempted) {
        if (!m.inference_status.is_ok()) {
          ++state.cache_misses;
        } else {
          const Group& group = groups.at(m.arch_id);
          if (group.cost_s > 0 && group.first == i) {
            ++state.cache_misses;
          } else {
            ++state.cache_hits;
          }
          if (state.canonical.find(m.arch_id) == state.canonical.end()) {
            InferenceRecommendation canonical = m.rec;
            canonical.from_cache = true;
            canonical.tuning_time_s = 0;
            canonical.tuning_energy_j = 0;
            state.canonical.emplace(m.arch_id, std::move(canonical));
          }
        }
      }

      TrialLog log;
      log.config = batch[i].config;
      log.resource = batch[i].resource;
      log.budget = policy->at(batch[i].resource);
      log.attempts = m.attempts;
      log.retry_backoff_s = m.retry_backoff_s;
      double wall_s = 0;
      double inference_energy_j = 0;
      if (!m.train_status.is_ok()) {
        // Permanent failure (retries exhausted or a non-retryable code): a
        // first-class log entry with the final status. The search sees an
        // infinite objective and moves on; the failure-budget check in
        // run() decides whether the job as a whole survives.
        note_error(m.train_status);
        log.status = m.train_status;
        log.objective = std::numeric_limits<double>::infinity();
        wall_s = m.retry_backoff_s;  // attempts failed at t=0, only backoff
      } else if (m.inference_attempted && !m.inference_status.is_ok()) {
        // The trial trained but its inference tune failed permanently
        // (single-flight joiners re-probe and inference retries happen
        // inside the server, so this is rare). Charge the training cost.
        note_error(m.inference_status);
        log.status = m.inference_status;
        log.accuracy = m.outcome.accuracy;
        log.duration_s = m.outcome.train_time_s;
        log.energy_j = m.outcome.train_energy_j;
        log.objective = std::numeric_limits<double>::infinity();
        wall_s = m.outcome.train_time_s + m.retry_backoff_s;
      } else {
        const TrialOutcome& trial = m.outcome;
        // What this trial reports for the inference side: its billed share
        // of the flight's cost, not whatever it happened to observe.
        BillingShare share;
        if (!m.inference_attempted) {
          share.from_cache = false;  // no request: default-recommendation log
        } else if (flights) {
          share = shares[i];
        } else {
          share = BillingShare{m.rec.from_cache, m.rec.tuning_time_s,
                               m.rec.tuning_energy_j};
        }
        // Simulated time/energy: the inference server runs pipelined with
        // the trial; only the excess beyond the trial duration stalls the
        // model server (§3.3).
        log.accuracy = trial.accuracy;
        log.duration_s = trial.train_time_s;
        log.energy_j = trial.train_energy_j;
        log.inference_cached = share.from_cache;
        log.inference_tuning_s = share.tuning_time_s;
        log.inference_stall_s =
            std::max(0.0, share.tuning_time_s - trial.train_time_s);

        const bool capped = power_capped(trial);
        // HyperPower-mode early termination (§6: "early termination of the
        // training at the objective evaluation"): a trial whose learning
        // curve is clearly below the incumbent is killed partway through.
        // The incumbent is the serial-walk live value — commit order, not
        // completion order — so parallel runs kill exactly the trials a
        // serial run kills.
        const bool unpromising = options_.power_cap_w > 0 &&
                                 state.best_accuracy > 0 &&
                                 trial.accuracy < 0.9 * state.best_accuracy;
        double objective = std::numeric_limits<double>::infinity();
        switch (options_.objective_mode) {
          case ObjectiveMode::kRatio:
            objective = tuning_objective(options_.tuning_metric, trial, m.rec,
                                         options_.inference_aware);
            break;
          case ObjectiveMode::kAccuracyOnly:
            objective = 1.0 - trial.accuracy;
            break;
        }
        if (capped) {
          // Over-cap trials are terminated almost immediately.
          objective = std::numeric_limits<double>::infinity();
          log.duration_s *= 0.3;
          log.energy_j *= 0.3;
          log.inference_stall_s = 0;
        } else if (unpromising) {
          log.duration_s *= 0.4;
          log.energy_j *= 0.4;
        }
        log.objective = objective;
        objectives[i] = objective;
        inference_energy_j = share.tuning_energy_j;
        wall_s = log.duration_s + log.inference_stall_s + m.retry_backoff_s;
        if (!capped && trial.accuracy > state.best_accuracy) {
          state.best_accuracy = trial.accuracy;
        }
      }
      log.id = static_cast<int>(report.trials.size());
      *std::min_element(worker_load.begin(), worker_load.end()) += wall_s;
      report.tuning_energy_j += log.energy_j + inference_energy_j;
      if (log.failed()) ++report.failed_trials;
      if (log.attempts > 1) ++report.retried_trials;
      report.retry_backoff_s += log.retry_backoff_s;
      report.trials.push_back(std::move(log));
    }
    report.tuning_runtime_s +=
        *std::max_element(worker_load.begin(), worker_load.end());
    return objectives;
  };

  Rng rng(options_.seed);
  SearchResult result = algorithm->optimize_batch(batch_eval, rng);
  if (interrupted_) {
    if (journal_) {
      const Status synced = journal_->sync();
      if (!synced.is_ok()) {
        ET_LOG_WARN << "journal sync on shutdown failed: " << synced.message();
      }
    }
    return Status::cancelled(
        std::string("tuning interrupted by shutdown signal") +
        (journal_ ? "; resume from the journal to continue" : ""));
  }
  if (!journal_error_.is_ok()) return journal_error_;
  if (journal_ && replay_cursor_ < replay_.size()) {
    return Status::failed_precondition(
        "journal " + options_.journal_path + " holds " +
        std::to_string(replay_.size()) +
        " records but this search committed only " +
        std::to_string(replay_cursor_) +
        " trials: the journal was written by a different run");
  }
  report.best_accuracy = state.best_accuracy;
  report.first_error = state.first_error;
  if (!std::isfinite(result.best_objective)) {
    return report.first_error.is_ok()
               ? Status::internal("tuning produced no finite objective")
               : report.first_error;
  }
  // Failure budget: graceful degradation tolerated isolated permanent
  // failures above; a failure fraction beyond the budget means the run's
  // conclusions can't be trusted, so surface the aggregated error instead
  // of a report.
  if (report.failed_trials > 0 && !report.trials.empty()) {
    const double failed_fraction =
        static_cast<double>(report.failed_trials) /
        static_cast<double>(report.trials.size());
    if (failed_fraction > options_.max_trial_failure_fraction) {
      return Status(report.first_error.code(),
                    std::to_string(report.failed_trials) + " of " +
                        std::to_string(report.trials.size()) +
                        " trials failed (budget " +
                        format_double(options_.max_trial_failure_fraction, 2) +
                        "); first error: " + report.first_error.to_string());
    }
  }
  report.best_config = result.best_config;
  report.best_objective = result.best_objective;

  // Final inference recommendation for the winning architecture — EdgeTune's
  // headline output. For the winning config this is (almost always) a cache
  // hit; baselines pay for it here since they never tuned inference.
  ET_ASSIGN_OR_RETURN(ArchSpec best_arch,
                      runner_.arch_for(report.best_config));
  if (options_.fleet) {
    // The coordinator never tuned locally: report the canonical record from
    // the committed trials — exactly what a serial run's final cache probe
    // returns. The winning config's trial was fully successful (a finite
    // objective requires it), so the record exists.
    auto it = state.canonical.find(best_arch.id);
    if (it == state.canonical.end()) {
      return Status::internal(
          "fleet run holds no recommendation for winning architecture " +
          best_arch.id);
    }
    report.inference = it->second;
  } else if (journal_replayed_ > 0 && options_.inference.use_cache &&
             state.canonical.count(best_arch.id) > 0) {
    // A resumed run's live cache never saw the replayed trials, so the
    // final probe could MISS where the uninterrupted run HIT. The canonical
    // record is byte-identical to what a serial run's final cache probe
    // returns (the fleet branch above rides the same equivalence), so
    // serving it restores parity.
    report.inference = state.canonical.at(best_arch.id);
  } else {
    ET_ASSIGN_OR_RETURN(report.inference, inference_server_.tune(best_arch));
  }

  // Cross-device recommendations for the winner (§1's multi-device story).
  for (const DeviceProfile& device : options_.extra_edge_devices) {
    InferenceServerOptions per_device_options = options_.inference;
    per_device_options.cache_path.clear();  // keyed per device, but keep
                                            // ad-hoc servers self-contained
    per_device_options.shared_cache.reset();
    InferenceTuningServer extra(device, per_device_options);
    ET_ASSIGN_OR_RETURN(InferenceRecommendation rec, extra.tune(best_arch));
    report.per_device.emplace(device.name, std::move(rec));
  }

  // Kernel-routine pass (DESIGN §5.6): profile the GEMM routine registry on
  // the edge device's analytic cost model and DP-assign routines across the
  // winning architecture at its recommended inference batch. Runs after the
  // search (on its result, never inside trial measurement) and is a pure
  // function of (edge device, winning arch, batch), so it cannot perturb
  // trials and is identical at any trial_workers count or fleet size.
  if (options_.routine_tuning) {
    std::unique_ptr<RoutineProfileStore> profile_store;
    if (!options_.routine_profile_path.empty()) {
      profile_store =
          std::make_unique<RoutineProfileStore>(options_.routine_profile_path);
      profile_store->set_fault_injector(fault_injector_);
    }
    std::int64_t inference_batch = 1;
    if (auto it = report.inference.config.find("inf_batch");
        it != report.inference.config.end() && it->second >= 1) {
      inference_batch = std::llround(it->second);
    }
    AnalyticRoutineTimer timer(options_.edge_device);
    report.routines = tune_routines_for_arch(best_arch, inference_batch,
                                             timer, profile_store.get());
    report.routines_enabled = true;
  }

  // Report the serial-replay counters, closed out with the final probe
  // above: deterministic at any --trial-workers count and any fleet size,
  // and equal to the live cache counters on a serial run.
  if (options_.inference.use_cache) {
    if (report.inference.from_cache) {
      ++state.cache_hits;
    } else {
      ++state.cache_misses;
    }
  }
  report.cache_hits = state.cache_hits;
  report.cache_misses = state.cache_misses;
  if (journal_) {
    // Close out durability for the tail records below the batched-fsync
    // threshold. Best-effort, like every journal degradation.
    const Status synced = journal_->sync();
    if (!synced.is_ok()) {
      ET_LOG_WARN << "final journal sync failed: " << synced.message();
    }
  }
  return report;
}

}  // namespace edgetune
