#include "tuning/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <algorithm>
#include <cstring>

#include "common/durable_io.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "device/profile_io.hpp"
#include "tuning/fleet.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {

namespace {

constexpr const char* kMagic = "edgetune-journal";
constexpr int kVersion = 1;
/// Frame sanity cap: a length prefix beyond this is garbage (a torn length
/// word), not a record — real payloads are a few hundred bytes.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

std::string errno_text() {
  return std::strerror(errno) != nullptr ? std::strerror(errno) : "unknown";
}

/// EINTR-safe full write at the current file offset.
Status write_all_fd(int fd, const char* data, std::size_t len,
                    const std::string& path) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io("journal " + path + ": write failed: " + errno_text());
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

void put_u32_be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t get_u32_be(const char* p) noexcept {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

/// Frames one payload: [len][crc][payload].
std::string frame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  put_u32_be(out, static_cast<std::uint32_t>(payload.size()));
  put_u32_be(out, crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

Json header_json(const EdgeTuneOptions& options) {
  JsonObject obj;
  obj["magic"] = kMagic;
  obj["version"] = kVersion;
  obj["fingerprint"] = journal_fingerprint(options);
  // Decimal string, not a JSON number: seeds use the full uint64 range and
  // doubles hold only 2^53 (same convention as measurement_fingerprint).
  obj["seed"] = std::to_string(options.seed);
  return Json(std::move(obj));
}

/// Splits `bytes` into the payloads of every intact record. Recovery is
/// torn-tail tolerant BY CONSTRUCTION: parsing stops at the first frame that
/// is short, oversized, or fails its CRC, and `*good_end` is the offset just
/// past the last intact record — a crash mid-append loses at most the record
/// being written.
std::vector<std::string> split_records(const std::string& bytes,
                                       std::size_t* good_end) {
  std::vector<std::string> payloads;
  std::size_t off = 0;
  while (off + 8 <= bytes.size()) {
    const std::uint32_t len = get_u32_be(bytes.data() + off);
    if (len > kMaxRecordBytes || off + 8 + len > bytes.size()) break;
    const std::uint32_t want = get_u32_be(bytes.data() + off + 4);
    if (crc32(bytes.data() + off + 8, len) != want) break;
    payloads.emplace_back(bytes.data() + off + 8, len);
    off += 8 + len;
  }
  *good_end = off;
  return payloads;
}

Status validate_header(const std::string& payload,
                       const EdgeTuneOptions& options,
                       const std::string& path) {
  Result<Json> parsed = Json::parse(payload);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return Status::failed_precondition("journal " + path +
                                       ": header record is not valid JSON");
  }
  const Json& h = parsed.value();
  if (h.get_string("magic", "") != kMagic) {
    return Status::failed_precondition("journal " + path +
                                       ": not an edgetune trial journal");
  }
  const int version = static_cast<int>(h.get_number("version", 0));
  if (version != kVersion) {
    return Status::failed_precondition(
        "journal " + path + ": version " + std::to_string(version) +
        " is not the supported version " + std::to_string(kVersion));
  }
  const std::string want_fp = journal_fingerprint(options);
  const std::string got_fp = h.get_string("fingerprint", "");
  const std::string want_seed = std::to_string(options.seed);
  const std::string got_seed = h.get_string("seed", "");
  if (got_fp != want_fp || got_seed != want_seed) {
    return Status::failed_precondition(
        "journal " + path + ": header (fingerprint " + got_fp + ", seed " +
        got_seed + ") does not match this run (fingerprint " + want_fp +
        ", seed " + want_seed +
        "): resuming under different options or seed would splice two "
        "different searches into one report; re-run with the original "
        "flags, or delete the journal to start over");
  }
  return Status::ok();
}

Result<JournalRecord> decode_record(const std::string& payload,
                                    std::size_t index,
                                    const std::string& path) {
  Result<Json> parsed = Json::parse(payload);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return Status::failed_precondition("journal " + path + ": record " +
                                       std::to_string(index) +
                                       " is not valid JSON");
  }
  const Json* key = parsed.value().find("key");
  const Json* m = parsed.value().find("m");
  if (key == nullptr || !key->is_string() || m == nullptr) {
    return Status::failed_precondition("journal " + path + ": record " +
                                       std::to_string(index) +
                                       " is missing key/measurement");
  }
  JournalRecord record;
  record.key = key->as_string();
  ET_ASSIGN_OR_RETURN(record.measurement, trial_measurement_from_json(*m));
  return record;
}

/// Reads the whole file through fd. Size is unknown in advance only for
/// special files; journals are regular, but a simple read loop covers both.
Result<std::string> read_file_fd(int fd, const std::string& path) {
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io("journal " + path + ": read failed: " + errno_text());
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  return bytes;
}

/// Shared recovery: open, read, validate header, decode intact records.
/// `good_end` lets resume() truncate the torn tail it stopped at.
Result<std::vector<JournalRecord>> recover(int fd, const std::string& path,
                                           const EdgeTuneOptions& options,
                                           std::size_t* good_end) {
  ET_ASSIGN_OR_RETURN(const std::string bytes, read_file_fd(fd, path));
  std::vector<std::string> payloads = split_records(bytes, good_end);
  if (payloads.empty()) {
    return Status::failed_precondition(
        "journal " + path +
        ": no intact header record (empty or torn at the very start); "
        "delete it to start over");
  }
  ET_RETURN_IF_ERROR(validate_header(payloads.front(), options, path));
  std::vector<JournalRecord> records;
  records.reserve(payloads.size() - 1);
  for (std::size_t i = 1; i < payloads.size(); ++i) {
    ET_ASSIGN_OR_RETURN(JournalRecord record,
                        decode_record(payloads[i], i - 1, path));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

std::string journal_fingerprint(const EdgeTuneOptions& options) {
  // Everything measurement_fingerprint covers, plus the search/report-side
  // options it excludes on purpose (a fleet worker may differ in them; a
  // resumed run must not). trial_workers is report-shaping: it drives TPE's
  // constant-liar batching and the makespan accounting.
  //
  // Journal-layer fault sites are excluded first: crash.after_commit kills
  // the process and journal.append/journal.fsync perturb journal IO — none
  // of them change what a trial measures, and the whole point of a crash
  // drill is to resume WITHOUT the kill switch still armed.
  // Canonicalize first: raw options and the constructor-normalized form the
  // model server actually runs with must fingerprint identically, or a
  // journal written inside run() would refuse its own flags read back by a
  // tool (normalize_options is idempotent, so running it again is safe).
  EdgeTuneOptions measured = normalize_options(options);
  const auto strip_journal_sites = [](std::vector<FaultSpec>& plan) {
    plan.erase(
        std::remove_if(plan.begin(), plan.end(),
                       [](const FaultSpec& spec) {
                         return spec.site == fault_site::kCrashAfterCommit ||
                                spec.site == fault_site::kJournalAppend ||
                                spec.site == fault_site::kJournalFsync;
                       }),
        plan.end());
  };
  strip_journal_sites(measured.faults);
  // EdgeTune's option normalization mirrors an empty inference fault plan
  // from the trial-level one, so the crash spec leaks in there too.
  strip_journal_sites(measured.inference.faults);
  JsonObject obj;
  obj["measurement"] = measurement_fingerprint(measured);
  obj["search_algorithm"] = options.search_algorithm;
  obj["hyperband_min"] = options.hyperband.min_resource;
  obj["hyperband_max"] = options.hyperband.max_resource;
  obj["hyperband_eta"] = options.hyperband.eta;
  obj["hyperband_brackets"] = options.hyperband.max_brackets;
  obj["random_trials"] = options.random_trials;
  obj["trial_workers"] = options.trial_workers;
  obj["objective_mode"] = static_cast<int>(options.objective_mode);
  obj["tuning_metric"] = static_cast<int>(options.tuning_metric);
  obj["target_accuracy"] = options.target_accuracy;
  obj["tune_system_params"] = options.tune_system_params;
  obj["tune_extended_hparams"] = options.tune_extended_hparams;
  obj["power_cap_w"] = options.power_cap_w;
  obj["max_trial_failure_fraction"] = options.max_trial_failure_fraction;
  obj["routine_tuning"] = options.routine_tuning;
  obj["routine_profile_path"] = options.routine_profile_path;
  JsonArray extra;
  extra.reserve(options.extra_edge_devices.size());
  for (const DeviceProfile& device : options.extra_edge_devices) {
    extra.push_back(profile_to_json(device));
  }
  obj["extra_edge_devices"] = Json(std::move(extra));
  // Full device profiles: measurement_fingerprint's device summary omits a
  // few fields (e.g. num_gpus) that a custom device file could change.
  obj["train_device"] = profile_to_json(options.train_device);
  obj["edge_device"] = profile_to_json(options.edge_device);

  const std::string text = Json(std::move(obj)).dump();
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    stable_hash64(text.data(), text.size())));
  return std::string(buf);
}

TrialJournal::TrialJournal(int fd, std::string path, std::size_t records,
                           FaultInjector injector)
    : fd_(fd),
      path_(std::move(path)),
      records_(records),
      injector_(std::move(injector)) {}

TrialJournal::~TrialJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<TrialJournal>> TrialJournal::create(
    const std::string& path, const EdgeTuneOptions& options,
    const FaultInjector& injector) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::io("journal " + path + ": open failed: " + errno_text());
  }
  std::unique_ptr<TrialJournal> journal(
      new TrialJournal(fd, path, 0, injector));
  const std::string header = frame(header_json(options).dump());
  ET_RETURN_IF_ERROR(write_all_fd(fd, header.data(), header.size(), path));
  // The header is durable before any trial runs: a journal that exists
  // always identifies its run, so a resume can never misread whose records
  // it is replaying.
  if (::fsync(fd) != 0) {
    return Status::io("journal " + path + ": fsync failed: " + errno_text());
  }
  ET_RETURN_IF_ERROR(fsync_parent_dir(path));
  return journal;
}

Result<std::unique_ptr<TrialJournal>> TrialJournal::resume(
    const std::string& path, const EdgeTuneOptions& options,
    const FaultInjector& injector, std::vector<JournalRecord>* replay) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return Status::not_found("journal " + path +
                             ": open failed: " + errno_text() +
                             " (resume requires an existing journal)");
  }
  std::size_t good_end = 0;
  Result<std::vector<JournalRecord>> records =
      recover(fd, path, options, &good_end);
  if (!records.ok()) {
    ::close(fd);
    return records.status();
  }
  // Drop the torn tail so appends continue a clean record sequence.
  if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    const std::string detail = errno_text();
    ::close(fd);
    return Status::io("journal " + path +
                      ": truncating torn tail failed: " + detail);
  }
  *replay = std::move(records.value());
  return std::unique_ptr<TrialJournal>(
      new TrialJournal(fd, path, replay->size(), injector));
}

Result<std::vector<JournalRecord>> TrialJournal::read_all(
    const std::string& path, const EdgeTuneOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::not_found("journal " + path +
                             ": open failed: " + errno_text());
  }
  std::size_t good_end = 0;
  Result<std::vector<JournalRecord>> records =
      recover(fd, path, options, &good_end);
  ::close(fd);
  return records;
}

Status TrialJournal::append_trial(const std::string& key,
                            const TrialMeasurement& measurement) {
  ET_RETURN_IF_ERROR(injector_.fire(fault_site::kJournalAppend,
                                    std::to_string(records_)));
  JsonObject obj;
  obj["key"] = key;
  obj["m"] = trial_measurement_to_json(measurement);
  const std::string framed = frame(Json(std::move(obj)).dump());
  ET_RETURN_IF_ERROR(write_all_fd(fd_, framed.data(), framed.size(), path_));
  ++records_;
  if (++unsynced_ >= kFsyncEvery) {
    // Best-effort batched durability: an fsync failure costs power-loss
    // protection for recent records, never the run (warned + counted; the
    // records themselves are already in the page cache).
    const Status synced = sync();
    if (!synced.is_ok()) {
      if (fsync_failures_ == 1) {
        ET_LOG_WARN << "journal " << path_
                    << ": batched fsync failed (continuing unsynced): "
                    << synced.message();
      }
    }
  }
  return Status::ok();
}

Status TrialJournal::sync() {
  unsynced_ = 0;
  const std::size_t index = sync_index_++;
  Status status =
      injector_.fire(fault_site::kJournalFsync, std::to_string(index));
  if (status.is_ok() && ::fsync(fd_) != 0) {
    status = Status::io("journal " + path_ +
                        ": fsync failed: " + errno_text());
  }
  if (!status.is_ok()) ++fsync_failures_;
  return status;
}

}  // namespace edgetune
