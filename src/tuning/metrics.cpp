#include "tuning/metrics.hpp"

#include <algorithm>

namespace edgetune {

const char* metric_name(MetricOfInterest metric) noexcept {
  switch (metric) {
    case MetricOfInterest::kRuntime:
      return "runtime";
    case MetricOfInterest::kEnergy:
      return "energy";
  }
  return "?";
}

double tuning_objective(MetricOfInterest metric, const TrialOutcome& trial,
                        const InferenceRecommendation& inference,
                        bool inference_aware) {
  const double accuracy = std::max(trial.accuracy, 0.01);
  double train_metric = 0;
  double inf_metric = 1.0;
  switch (metric) {
    case MetricOfInterest::kRuntime:
      train_metric = trial.train_time_s;
      // Per-sample inference time keeps the ratio comparable across batch
      // sizes.
      if (inference_aware) {
        inf_metric = 1.0 / std::max(inference.throughput_sps, 1e-9);
      }
      break;
    case MetricOfInterest::kEnergy:
      train_metric = trial.train_energy_j;
      if (inference_aware) inf_metric = inference.energy_per_sample_j;
      break;
  }
  return train_metric * inf_metric / accuracy;
}

double inference_objective(MetricOfInterest metric, double latency_s,
                           double energy_per_sample_j) {
  switch (metric) {
    case MetricOfInterest::kRuntime:
      return latency_s;
    case MetricOfInterest::kEnergy:
      return energy_per_sample_j;
  }
  return latency_s;
}

}  // namespace edgetune
