// The write-ahead trial journal (DESIGN §5.9).
//
// An append-only, CRC-checksummed record log of every trial the model
// server COMMITS, written before the trial's accounting is applied. Because
// the report is a pure function of (options, seed) and measurements are
// content-pure (DESIGN §5.5), a crashed run can be resumed exactly: replay
// the journaled measurements through the same commit walk, re-measure only
// the missing tail, and the final report is byte-identical to the
// uninterrupted run.
//
// On-disk format — a header record followed by trial records, all framed
//
//   [u32 BE payload length][u32 BE CRC-32 of payload][payload JSON]
//
// with the same %.17g JSON number marshaling as report_io / net/messages,
// so doubles round-trip bit-exactly. The header carries a fingerprint over
// every report-shaping option plus the seed; resuming against different
// options is refused (kFailedPrecondition) instead of silently producing a
// franken-report. Recovery is torn-tail tolerant: the first record with a
// short frame or CRC mismatch ends the journal — everything before it
// replays, the tail is truncated, and appends continue from there.
//
// Appends hit the page cache immediately (raw write(2), no userspace
// buffering), so records survive a process kill the instant append()
// returns; fsync — which only matters for power loss — is batched every
// kFsyncEvery records. Both paths carry fault sites (journal.append /
// journal.fsync) keyed by record index, which is scheduling-independent:
// injected journal faults are identical at any --trial-workers count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {

/// Exit code of the deterministic crash.after_commit kill point (and of a
/// SIGKILLed process): distinct from 1 (failure) and 2 (usage) so crash
/// harnesses can tell "aborted as planned" from "actually broke".
inline constexpr int kCrashExitCode = 137;

/// One committed trial: its content key (trial_content_key of the request,
/// validated against the resumed search's own sequence during replay) and
/// the raw measurement.
struct JournalRecord {
  std::string key;
  TrialMeasurement measurement;
};

/// Stable hex fingerprint over every option that shapes the report: the
/// measurement fingerprint (fleet.hpp) plus the search/report-side options
/// it deliberately excludes (algorithm, HyperBand shape, trial_workers,
/// objective mode, target accuracy, power cap, extra devices, ...). Two
/// runs with equal journal fingerprints and seeds commit the identical
/// trial sequence, which is exactly what replay assumes.
std::string journal_fingerprint(const EdgeTuneOptions& options);

class TrialJournal {
 public:
  ~TrialJournal();
  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  /// Starts a fresh journal at `path` (truncating any previous one) and
  /// durably writes the header record before returning: a journal that
  /// exists always identifies its run.
  static Result<std::unique_ptr<TrialJournal>> create(
      const std::string& path, const EdgeTuneOptions& options,
      const FaultInjector& injector);

  /// Opens an existing journal for resume: validates the header against
  /// `options` (fingerprint + seed mismatch → kFailedPrecondition), reads
  /// every intact record into `*replay`, truncates a torn tail, and
  /// positions the journal to append after the last good record.
  static Result<std::unique_ptr<TrialJournal>> resume(
      const std::string& path, const EdgeTuneOptions& options,
      const FaultInjector& injector, std::vector<JournalRecord>* replay);

  /// Read-only variant of resume's recovery (no truncation, no append
  /// position): the records an on-disk journal would replay. Test and
  /// tooling hook.
  static Result<std::vector<JournalRecord>> read_all(
      const std::string& path, const EdgeTuneOptions& options);

  /// Appends one committed trial. The record is in the OS page cache when
  /// this returns (kill-safe); every kFsyncEvery appends it is also
  /// fsynced (power-loss-safe). An error means the record was NOT written —
  /// the caller must stop appending (a journal with holes would refuse to
  /// replay) but may well keep tuning: journaling is best-effort.
  [[nodiscard]] Status append_trial(const std::string& key,
                              const TrialMeasurement& measurement);

  /// Forces an fsync now (end of run, shutdown signal, crash site).
  [[nodiscard]] Status sync();

  /// Records in the journal right now (replayed + appended).
  [[nodiscard]] std::size_t records() const noexcept { return records_; }
  /// fsync failures so far (best-effort: counted and warned, never fatal).
  [[nodiscard]] std::size_t fsync_failures() const noexcept {
    return fsync_failures_;
  }

  /// Batched-fsync cadence, exposed for tests that target journal.fsync.
  static constexpr std::size_t kFsyncEvery = 8;

 private:
  TrialJournal(int fd, std::string path, std::size_t records,
               FaultInjector injector);

  int fd_;
  std::string path_;
  std::size_t records_;            // next record index == fault key
  std::size_t unsynced_ = 0;       // appends since the last fsync
  std::size_t sync_index_ = 0;     // journal.fsync fault key
  std::size_t fsync_failures_ = 0;
  FaultInjector injector_;
};

}  // namespace edgetune
