// Deterministic single-flight billing (DESIGN §5.5).
//
// The inference server dedupes concurrent tuning requests for one
// architecture into a single flight; exactly one requester observes the
// flight's cost (nonzero tuning_time_s on its recommendation). WHICH
// requester that is depends on thread scheduling, so charging the observer
// made same-seed parallel reports differ run to run — and differ from the
// serial run, where the first-submitted requester is always the one that
// misses the cache and pays.
//
// resolve_flight_billing() re-assigns the observed cost by CONTENT: within
// each batch, trials are grouped by architecture and the whole group's cost
// is charged to the member the serial walk would have charged — the
// earliest-committed member, provided it trained successfully (a serial run
// discards the recommendation of a trial whose training failed, so its cost
// never reaches the report). Every other member is reported as a cache hit
// with zero cost, exactly like a serial joiner. The resolution is a pure
// function of the batch's contents, so any execution — serial, local pool,
// or a remote fleet — produces byte-identical accounting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edgetune {

/// One batch member's observation, in batch commit order. Members whose
/// architecture could not even be derived are not flight members: pass
/// has_rec = false and an empty arch_id; they receive the default share.
struct FlightMember {
  std::string arch_id;
  /// Training succeeded — the member's log carries inference fields at all.
  bool trained = false;
  /// The inference flight produced a recommendation for this member.
  bool has_rec = false;
  /// Cost fields as observed on the member's recommendation (nonzero only
  /// on the scheduling-dependent flight leader; zero on joiners and cache
  /// hits).
  double observed_tuning_s = 0;
  double observed_tuning_energy_j = 0;
};

/// What the member's trial log should report after resolution.
struct BillingShare {
  bool from_cache = true;
  double tuning_time_s = 0;
  double tuning_energy_j = 0;
};

/// Resolves billing for one committed batch; returns one share per member,
/// in input order. Within each arch group the group's cost (max over the
/// members' observations — at most one is nonzero) is charged to the
/// earliest member iff that member trained successfully; everyone else is a
/// zero-cost cache hit. A group whose flight was itself a cache hit
/// (observed cost zero everywhere: the architecture was tuned in an earlier
/// batch or preloaded from the persistent cache) stays all-hit.
std::vector<BillingShare> resolve_flight_billing(
    const std::vector<FlightMember>& members);

}  // namespace edgetune
