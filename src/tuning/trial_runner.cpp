#include "tuning/trial_runner.hpp"

#include <algorithm>
#include <cmath>

#include "data/trainer.hpp"
#include "models/models.hpp"

namespace edgetune {

TrialRunnerOptions::TrialRunnerOptions()
    : train_device(device_titan_server()) {}

TrialRunner::TrialRunner(TrialRunnerOptions options)
    : options_(std::move(options)),
      dataset_(make_workload_data(options_.workload, options_.proxy_samples,
                                  options_.seed)),
      server_model_(options_.train_device),
      full_scale_train_samples_(
          workload_info(options_.workload).train_samples) {
  Rng split_rng(options_.seed ^ 0x5917u);
  auto [train, val] =
      DatasetView::all(*dataset_).split(1.0 - options_.validation_fraction,
                                        split_rng);
  train_view_ = std::move(train);
  val_view_ = std::move(val);
}

Result<ArchSpec> TrialRunner::arch_for(const Config& config) const {
  auto it = config.find("model_hparam");
  if (it == config.end()) {
    return Status::invalid_argument("config missing model_hparam");
  }
  Rng rng(options_.seed);  // weights irrelevant for the spec
  ET_ASSIGN_OR_RETURN(BuiltModel model,
                      build_workload_model(options_.workload, it->second, rng));
  return std::move(model.arch);
}

Result<TrialOutcome> TrialRunner::run(const Config& config,
                                      const TrialBudget& budget) const {
  const auto get = [&](const char* key, double fallback) {
    auto it = config.find(key);
    return it == config.end() ? fallback : it->second;
  };
  const double model_hparam = get("model_hparam", 0);
  if (config.find("model_hparam") == config.end()) {
    return Status::invalid_argument("config missing model_hparam");
  }
  const auto train_batch = static_cast<std::int64_t>(get("train_batch", 128));
  const double lr = get("lr", 0.05);
  const int num_gpus = static_cast<int>(get("num_gpus", 1));
  if (train_batch < 1) {
    return Status::invalid_argument("train_batch must be >= 1");
  }

  // Deterministic per-(config, budget) model initialization.
  Rng model_rng(options_.seed ^ config_hash(config));
  ET_ASSIGN_OR_RETURN(
      BuiltModel model,
      build_workload_model(options_.workload, model_hparam, model_rng));

  // Duration budgets (§2.2): fit as many whole epochs as the simulated time
  // cap allows on the training server; at least one epoch always runs.
  TrialBudget effective_budget = budget;
  if (budget.time_cap_s > 0) {
    TrainConfig probe;
    probe.batch_size = train_batch;
    probe.num_gpus = num_gpus;
    const auto cap_samples = static_cast<std::int64_t>(std::max(
        1.0, budget.data_fraction *
                 static_cast<double>(full_scale_train_samples_)));
    ET_ASSIGN_OR_RETURN(
        CostEstimate probe_cost,
        server_model_.train_epoch_cost(model.arch, probe, cap_samples));
    const auto fitting = static_cast<int>(budget.time_cap_s /
                                          std::max(probe_cost.latency_s, 1e-9));
    effective_budget.epochs =
        std::clamp(fitting, 1, budget.epochs);
  }

  // --- Real proxy training under the trial budget. ---
  // The full-scale batch is mapped onto a proxy batch: same relative size,
  // bounded so the proxy dataset still yields several steps per epoch.
  TrainerOptions trainer_options;
  trainer_options.batch_size =
      std::clamp<std::int64_t>(train_batch / 16, 4, 64);
  trainer_options.epochs = effective_budget.epochs;
  trainer_options.sgd.learning_rate = lr;
  trainer_options.sgd.momentum = get("momentum", options_.momentum);
  trainer_options.sgd.weight_decay = get("weight_decay", 0.0);
  DatasetView budget_view =
      train_view_.fraction(effective_budget.data_fraction);
  Trainer trainer(*model.net, trainer_options, model_rng);
  // Per-epoch validation is skipped inside the trial (the tuner only needs
  // the final number); evaluate once afterwards.
  Result<TrainingHistory> history = trainer.fit(budget_view, DatasetView{});
  if (!history.ok()) return history.status();
  const double val_accuracy = Trainer::evaluate(*model.net, val_view_);

  // --- Full-scale cost on the training server (simulated). ---
  TrainConfig train_config;
  train_config.batch_size = train_batch;
  train_config.num_gpus = num_gpus;
  const auto budget_samples = static_cast<std::int64_t>(std::max(
      1.0, budget.data_fraction *
               static_cast<double>(full_scale_train_samples_)));
  ET_ASSIGN_OR_RETURN(
      CostEstimate epoch_cost,
      server_model_.train_epoch_cost(model.arch, train_config,
                                     budget_samples));

  TrialOutcome outcome;
  outcome.accuracy = val_accuracy;
  outcome.train_time_s = epoch_cost.latency_s * effective_budget.epochs;
  outcome.train_energy_j = epoch_cost.energy_j * effective_budget.epochs;
  outcome.arch_id = model.arch.id;
  return outcome;
}

}  // namespace edgetune
