#include "tuning/routine_tuner.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/durable_io.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"

namespace edgetune {

namespace {

std::int64_t pow2_floor(std::int64_t v) {
  if (v <= 1) return 1;
  return static_cast<std::int64_t>(
      std::bit_floor(static_cast<std::uint64_t>(v)));
}

const char* layout_tag(GemmLayout layout) {
  switch (layout) {
    case GemmLayout::kNN:
      return "nn";
    case GemmLayout::kTN:
      return "tn";
    case GemmLayout::kNT:
      return "nt";
  }
  return "nn";
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Conversion-factor table shared by every timer. Asymmetric on purpose:
/// packing activations INTO a tiled layout is a strided scatter (read +
/// write, cache-hostile) while unpacking is a streaming gather, and a
/// tile-to-tile repack does both. This asymmetry is what separates DP from
/// per-op greedy: greedy happily picks a routine whose cheap op time is
/// eaten twice by the conversions around it.
double conversion_factor(const std::string& from, const std::string& to) {
  if (from == to) return 0.0;
  const bool from_rm = from == "rowmajor";
  const bool to_rm = to == "rowmajor";
  if (from_rm && !to_rm) return 2.0;   // pack
  if (!from_rm && to_rm) return 1.0;   // unpack
  return 2.5;                          // tile-to-tile repack
}

}  // namespace

std::string routine_shape_class(const RoutineOp& op) {
  std::ostringstream out;
  out << layout_tag(op.layout) << "/m" << pow2_floor(op.m) << "/n"
      << pow2_floor(op.n) << "/k" << pow2_floor(op.k);
  return out.str();
}

RoutineOp routine_class_representative(const RoutineOp& op) {
  RoutineOp rep = op;
  rep.m = pow2_floor(op.m);
  rep.n = pow2_floor(op.n);
  rep.k = pow2_floor(op.k);
  rep.calls = 1;
  return rep;
}

std::vector<RoutineOp> routine_ops_for_arch(const ArchSpec& arch,
                                            std::int64_t batch) {
  const std::int64_t b = std::max<std::int64_t>(1, batch);
  std::vector<RoutineOp> ops;
  for (const LayerInfo& layer : arch.layers) {
    // ArchSpec layers are described at batch == 1; scale the GEMM row
    // dimension (and RNN per-step calls are batch-independent). Inference
    // lowers every one of these through gemm() with the kNT layout (weights
    // stored [n, k]): conv via im2col, linear directly, RNNs per step.
    if (layer.kind == "conv2d" || layer.kind == "conv1d") {
      const Shape& out = layer.output_shape;  // {1, outC, spatial...}
      std::int64_t spatial = 1;
      for (std::size_t d = 2; d < out.size(); ++d) spatial *= out[d];
      const std::int64_t n = out.at(1);
      if (spatial < 1 || n < 1) continue;
      const double rows1 = static_cast<double>(spatial);
      const std::int64_t k = std::max<std::int64_t>(
          1, std::llround(layer.flops_forward /
                          (2.0 * rows1 * static_cast<double>(n))));
      ops.push_back({layer.kind, GemmLayout::kNT, b * spatial, n, k, 1});
    } else if (layer.kind == "linear") {
      const std::int64_t n = layer.output_shape.at(1);
      if (n < 1) continue;
      const std::int64_t k = std::max<std::int64_t>(
          1,
          std::llround(layer.flops_forward / (2.0 * static_cast<double>(n))));
      ops.push_back({layer.kind, GemmLayout::kNT, b, n, k, 1});
    } else if (layer.kind == "rnn") {
      // Two GEMMs per step (input and recurrent projection); per-step
      // flops = 2*(embed*hidden + hidden*hidden) recovers embed.
      const std::int64_t hidden = layer.output_shape.at(1);
      const std::int64_t steps = std::max<std::int64_t>(
          1, std::llround(layer.kernel_launches / 2.0));
      if (hidden < 1) continue;
      const double per_step =
          layer.flops_forward / (2.0 * static_cast<double>(steps));
      const std::int64_t embed = std::max<std::int64_t>(
          1, std::llround(per_step / static_cast<double>(hidden) -
                          static_cast<double>(hidden)));
      ops.push_back({layer.kind, GemmLayout::kNT, b, hidden, embed, steps});
      ops.push_back({layer.kind, GemmLayout::kNT, b, hidden, hidden, steps});
    }
  }
  return ops;
}

// --- Timers ------------------------------------------------------------------

double RoutineTimer::layout_conversion_s(const std::string& from,
                                         const std::string& to,
                                         double bytes) const {
  // Nominal 4 GB/s conversion bandwidth for timers without a device model.
  return conversion_factor(from, to) * bytes / 4e9;
}

double AnalyticRoutineTimer::time_op(const GemmRoutineInfo& routine,
                                     const RoutineOp& op) const {
  const double m = static_cast<double>(op.m);
  const double n = static_cast<double>(op.n);
  const double k = static_cast<double>(op.k);
  const double flops = 2.0 * m * n * k;  // one call
  const double peak = device_.flops_per_cycle_per_core *
                      device_.base_freq_ghz * 1e9;  // single core
  const double bw = device_.mem_bandwidth_gbs * 1e9;
  const double overhead_s = device_.per_layer_overhead_s;

  if (routine.id == GemmRoutineId::kNaiveIkj) {
    // Loop nest: no packing or padding. kNN/kTN vectorize the fmaf row
    // update; kNT is a scalar dot (rounded adds serialize the reduction).
    const double eff = op.layout == GemmLayout::kNT ? 0.08 : 0.72;
    const double b_bytes = k * n * 4.0;
    double traffic;
    if (b_bytes <= device_.cache_bytes) {
      traffic = (m * k + k * n + m * n) * 4.0;  // stream each operand once
    } else {
      traffic = m * k * 4.0 + m * b_bytes + m * n * 4.0;  // B per row
    }
    return flops / (peak * eff) + traffic / bw + overhead_s;
  }

  const GemmTiling& t = routine.tiling;
  const double mr = static_cast<double>(routine.microtile_rows);
  // Zero-padded partial microtiles burn real FLOPs.
  const double pad =
      (std::ceil(m / mr) * mr / m) * (std::ceil(n / 16.0) * 16.0 / n);
  // Wide microtiles amortize B-sliver loads over more FMAs.
  double eff = routine.microtile_rows == 16 ? 0.88 : 0.80;
  // A-block + B-sliver + C-tile working set vs the device cache.
  const double ws_bytes =
      static_cast<double>(t.mc * t.kc + t.kc * 16 + t.mc * 16) * 4.0;
  if (ws_bytes > device_.cache_bytes) eff *= device_.cache_bytes / ws_bytes;
  double compute_s = flops * pad / (peak * eff);

  // Packing traffic (read + write): A repacked once per column panel, B
  // packed once; plus C scratch passes for every extra k-block.
  const double a_bytes = m * k * 4.0 * static_cast<double>(ceil_div(op.n, t.nc));
  const double b_bytes = k * n * 4.0;
  const double k_passes = static_cast<double>(ceil_div(op.k, t.kc));
  const double c_bytes = (2.0 * k_passes - 1.0) * m * n * 4.0;
  const double traffic_s = (2.0 * (a_bytes + b_bytes) + c_bytes) / bw;

  // Thread gate, mirroring blocked_gemm's modes on this device's cores.
  double fork_s = 0.0;
  bool threaded = false;
  switch (routine.threads) {
    case GemmThreadMode::kNever:
      break;
    case GemmThreadMode::kAuto:
      threaded = op.m > t.mc && flops >= 2e6;
      break;
    case GemmThreadMode::kAlways:
      threaded = op.m > t.mc;
      break;
    case GemmThreadMode::kCutoff:
      threaded = op.m > t.mc && op.m * op.n >= kGemmSmallShapeCells;
      break;
  }
  if (threaded && device_.max_cores > 1) {
    const double cores = std::min<double>(
        device_.max_cores, static_cast<double>(ceil_div(op.m, t.mc)));
    compute_s *= (1.0 - device_.serial_fraction) / cores +
                 device_.serial_fraction;
    fork_s = device_.per_layer_overhead_s * cores;  // fork/join per call
  }
  return compute_s + traffic_s + fork_s + overhead_s;
}

double AnalyticRoutineTimer::layout_conversion_s(const std::string& from,
                                                 const std::string& to,
                                                 double bytes) const {
  return conversion_factor(from, to) * bytes /
         (device_.mem_bandwidth_gbs * 1e9);
}

double MeasuredRoutineTimer::time_op(const GemmRoutineInfo& routine,
                                     const RoutineOp& op) const {
  const std::size_t a_elems = static_cast<std::size_t>(op.m * op.k);
  const std::size_t b_elems = static_cast<std::size_t>(op.k * op.n);
  const std::size_t c_elems = static_cast<std::size_t>(op.m * op.n);
  std::vector<float> a(a_elems), b(b_elems), c(c_elems);
  for (std::size_t i = 0; i < a_elems; ++i) {
    a[i] = static_cast<float>((i % 23) + 1) * 0.25f;
  }
  for (std::size_t i = 0; i < b_elems; ++i) {
    b[i] = static_cast<float>((i % 19) + 1) * 0.125f;
  }
  gemm_with_routine(routine.id, op.layout, op.m, op.n, op.k, a.data(),
                    b.data(), c.data());  // warm caches and scratch
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repetitions_; ++rep) {
    Stopwatch timer;
    gemm_with_routine(routine.id, op.layout, op.m, op.n, op.k, a.data(),
                      b.data(), c.data());
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

// --- Persistent profile ------------------------------------------------------

namespace {

Json timings_to_json(const RoutineTimings& timings) {
  JsonObject obj;
  for (const auto& [routine, seconds] : timings) obj.emplace(routine, seconds);
  return Json(std::move(obj));
}

RoutineTimings timings_from_json(const Json& json) {
  RoutineTimings timings;
  if (!json.is_object()) return timings;
  for (const auto& [routine, seconds] : json.as_object()) {
    if (seconds.is_number()) timings[routine] = seconds.as_number();
  }
  return timings;
}

}  // namespace

RoutineProfileStore::RoutineProfileStore(std::string path,
                                         std::size_t flush_every)
    : path_(std::move(path)),
      flush_every_(std::max<std::size_t>(1, flush_every)) {
  std::ifstream in(path_);
  if (!in.good()) return;  // fresh profile
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Json> parsed = Json::parse(buffer.str());
  if (!parsed.ok() || !parsed.value().is_object()) {
    // Quarantine, don't clobber: the next flush would overwrite whatever is
    // in the file, destroying the evidence (and any salvageable timings).
    in.close();
    const std::string quarantine = path_ + ".corrupt";
    if (std::rename(path_.c_str(), quarantine.c_str()) == 0) {
      ET_LOG_WARN << "routine profile at " << path_
                  << " is unreadable; quarantined to " << quarantine
                  << ", starting empty (" << parsed.status().to_string()
                  << ")";
    } else {
      ET_LOG_WARN << "routine profile at " << path_
                  << " is unreadable and could not be quarantined; "
                  << "starting empty (" << parsed.status().to_string() << ")";
    }
    return;
  }
  for (const auto& [key, value] : parsed.value().as_object()) {
    entries_.emplace(key, timings_from_json(value));
  }
}

RoutineProfileStore::~RoutineProfileStore() {
  MutexLock lock(mutex_);
  if (path_.empty() || dirty_ == 0) return;
  persist_best_effort_locked();
}

std::string RoutineProfileStore::key(const std::string& device_id,
                                     const std::string& shape_class) {
  return device_id + "|" + shape_class;
}

std::optional<RoutineTimings> RoutineProfileStore::lookup(
    const std::string& device_id, const std::string& shape_class) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key(device_id, shape_class));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

Status RoutineProfileStore::store(const std::string& device_id,
                                  const std::string& shape_class,
                                  const RoutineTimings& timings) {
  MutexLock lock(mutex_);
  entries_[key(device_id, shape_class)] = timings;
  if (path_.empty()) return Status::ok();
  if (++dirty_ >= flush_every_) persist_best_effort_locked();
  return Status::ok();
}

void RoutineProfileStore::persist_best_effort_locked() const {
  Status status = save_locked();
  if (status.is_ok()) return;
  ++persist_failures_;
  if (!persist_warned_) {
    persist_warned_ = true;
    ET_LOG_WARN << "routine-profile flush to " << path_
                << " failed; continuing memory-only (" << status.to_string()
                << "); further failures logged at debug";
  } else {
    ET_LOG_DEBUG << "routine-profile flush to " << path_
                 << " failed again: " << status.to_string();
  }
}

std::size_t RoutineProfileStore::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t RoutineProfileStore::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::size_t RoutineProfileStore::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

std::size_t RoutineProfileStore::persist_failures() const {
  MutexLock lock(mutex_);
  return persist_failures_;
}

Status RoutineProfileStore::save() const {
  MutexLock lock(mutex_);
  if (path_.empty() || dirty_ == 0) return Status::ok();
  return save_locked();
}

Status RoutineProfileStore::save_locked() const {
  const std::size_t flush_number = flushes_++;
  if (Status injected = injector_.fire(fault_site::kRoutinePersist, path_,
                                       static_cast<int>(flush_number));
      !injected.is_ok()) {
    return injected;
  }
  JsonObject root;
  for (const auto& [key, timings] : entries_) {
    root.emplace(key, timings_to_json(timings));
  }
  // Durable write-to-temp + fsync + rename, like HistoricalCache: a crash
  // mid-write leaves the previous profile intact, and the rename is only
  // published once the new bytes are on stable storage.
  ET_RETURN_IF_ERROR(
      durable_write_file(path_, Json(std::move(root)).dump_pretty() + "\n"));
  dirty_ = 0;
  return Status::ok();
}

// --- Assignment --------------------------------------------------------------

RoutineTimings RoutineTuner::profile(const RoutineOp& op) {
  const std::string cls = routine_shape_class(op);
  if (store_ != nullptr) {
    if (std::optional<RoutineTimings> cached =
            store_->lookup(timer_.device_id(), cls)) {
      ++hits_;
      return *cached;
    }
  }
  const RoutineOp rep = routine_class_representative(op);
  RoutineTimings timings;
  for (const GemmRoutineInfo& routine : gemm_routine_registry()) {
    timings[routine.name] = timer_.time_op(routine, rep);
  }
  ++misses_;
  if (store_ != nullptr) {
    // Best-effort by design; the in-memory copy below is authoritative.
    (void)store_->store(timer_.device_id(), cls, timings);
  }
  return timings;
}

double RoutineTuner::op_seconds(const RoutineTimings& timings,
                                const GemmRoutineInfo& routine,
                                const RoutineOp& op) const {
  auto it = timings.find(routine.name);
  if (it == timings.end()) {
    // Profile predates this routine (older file): price it directly.
    return timer_.time_op(routine, op) * static_cast<double>(op.calls);
  }
  const RoutineOp rep = routine_class_representative(op);
  const double scale = (static_cast<double>(op.m) * static_cast<double>(op.n) *
                        static_cast<double>(op.k)) /
                       (static_cast<double>(rep.m) * static_cast<double>(rep.n) *
                        static_cast<double>(rep.k));
  return it->second * scale * static_cast<double>(op.calls);
}

RoutineAssignment RoutineTuner::assign(const std::vector<RoutineOp>& ops) {
  RoutineAssignment result;
  result.device = timer_.device_id();
  const std::vector<GemmRoutineInfo>& registry = gemm_routine_registry();
  const std::size_t num_r = registry.size();
  if (ops.empty()) return result;

  hits_ = 0;
  misses_ = 0;
  std::vector<std::vector<double>> cost(ops.size(),
                                        std::vector<double>(num_r, 0.0));
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const RoutineTimings timings = profile(ops[i]);
    for (std::size_t r = 0; r < num_r; ++r) {
      cost[i][r] = op_seconds(timings, registry[r], ops[i]);
    }
  }
  result.profile_hits = hits_;
  result.profile_misses = misses_;

  // Activations enter and leave the network row-major; between ops the
  // conversion is priced on the producer's output bytes.
  auto entry_conv = [&](std::size_t r) {
    const double in_bytes =
        4.0 * static_cast<double>(ops.front().m) * static_cast<double>(ops.front().k);
    return timer_.layout_conversion_s("rowmajor", registry[r].layout, in_bytes);
  };
  auto edge_conv = [&](std::size_t i, std::size_t r_from, std::size_t r_to) {
    return timer_.layout_conversion_s(registry[r_from].layout,
                                      registry[r_to].layout,
                                      ops[i].output_bytes());
  };
  auto exit_conv = [&](std::size_t r) {
    return timer_.layout_conversion_s(registry[r].layout, "rowmajor",
                                      ops.back().output_bytes());
  };

  // DP over (op, routine) states. Ties break to the lower routine index
  // (strict < against the incumbent while scanning ascending), so the
  // assignment is deterministic.
  std::vector<std::vector<double>> best(ops.size(),
                                        std::vector<double>(num_r, 0.0));
  std::vector<std::vector<std::size_t>> parent(
      ops.size(), std::vector<std::size_t>(num_r, 0));
  for (std::size_t r = 0; r < num_r; ++r) {
    best[0][r] = entry_conv(r) + cost[0][r];
  }
  for (std::size_t i = 1; i < ops.size(); ++i) {
    for (std::size_t r = 0; r < num_r; ++r) {
      double incumbent = std::numeric_limits<double>::infinity();
      std::size_t arg = 0;
      for (std::size_t p = 0; p < num_r; ++p) {
        const double candidate = best[i - 1][p] + edge_conv(i - 1, p, r);
        if (candidate < incumbent) {
          incumbent = candidate;
          arg = p;
        }
      }
      best[i][r] = incumbent + cost[i][r];
      parent[i][r] = arg;
    }
  }
  double dp_total = std::numeric_limits<double>::infinity();
  std::size_t dp_last = 0;
  for (std::size_t r = 0; r < num_r; ++r) {
    const double candidate = best[ops.size() - 1][r] + exit_conv(r);
    if (candidate < dp_total) {
      dp_total = candidate;
      dp_last = r;
    }
  }
  std::vector<std::size_t> choice(ops.size(), 0);
  choice[ops.size() - 1] = dp_last;
  for (std::size_t i = ops.size() - 1; i > 0; --i) {
    choice[i - 1] = parent[i][choice[i]];
  }

  // Totals for a fixed per-op choice vector under the same edge model.
  auto path_total = [&](const std::vector<std::size_t>& pick,
                        double* conversions) {
    double conv = entry_conv(pick.front());
    double total = conv + cost[0][pick.front()];
    for (std::size_t i = 1; i < ops.size(); ++i) {
      const double e = edge_conv(i - 1, pick[i - 1], pick[i]);
      conv += e;
      total += e + cost[i][pick[i]];
    }
    const double x = exit_conv(pick.back());
    conv += x;
    total += x;
    if (conversions != nullptr) *conversions = conv;
    return total;
  };

  result.total_s = path_total(choice, &result.conversion_s);
  assert(std::abs(result.total_s - dp_total) <=
         1e-9 * std::max(1.0, dp_total));

  // Per-op greedy baseline: argmin op cost, blind to conversions.
  std::vector<std::size_t> greedy(ops.size(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    double incumbent = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < num_r; ++r) {
      if (cost[i][r] < incumbent) {
        incumbent = cost[i][r];
        greedy[i] = r;
      }
    }
  }
  result.greedy_s = path_total(greedy, nullptr);

  // Everything on the default routine (today's deployment).
  std::vector<std::size_t> blocked(ops.size(),
                                   static_cast<std::size_t>(GemmRoutineId::kBlocked));
  result.fixed_blocked_s = path_total(blocked, nullptr);

  result.ops.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    result.ops.push_back({ops[i].layer_kind, routine_shape_class(ops[i]),
                          registry[choice[i]].name, cost[i][choice[i]]});
  }
  return result;
}

RoutineAssignment tune_routines_for_arch(const ArchSpec& arch,
                                         std::int64_t batch,
                                         const RoutineTimer& timer,
                                         RoutineProfileStore* store) {
  RoutineTuner tuner(timer, store);
  return tuner.assign(routine_ops_for_arch(arch, batch));
}

}  // namespace edgetune
