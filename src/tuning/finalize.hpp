// Finalization: after a tuning job, retrain the winning configuration at
// full budget and hand back the trained model (the tuning server's primary
// deliverable, §2.1: "the users receive the optimal trained model") plus
// the simulated cost of the final training.
#pragma once

#include "budget/budget.hpp"
#include "models/models.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {

struct FinalizedModel {
  BuiltModel model;             // trained proxy network + full-scale arch
  double accuracy = 0;          // validation accuracy after full training
  double train_time_s = 0;      // simulated full-scale training duration
  double train_energy_j = 0;
  std::string checkpoint_path;  // where the weights were written ("" if not)
};

struct FinalizeOptions {
  int epochs = 10;              // full-budget retraining length
  std::string checkpoint_path;  // save the trained weights here (optional)
};

/// Retrains `report.best_config` from scratch under the given options and
/// (optionally) checkpoints the weights.
Result<FinalizedModel> finalize_best_model(const EdgeTuneOptions& options,
                                           const TuningReport& report,
                                           const FinalizeOptions& finalize);

}  // namespace edgetune
