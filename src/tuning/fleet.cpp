#include "tuning/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "net/messages.hpp"
#include "search/param.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {

namespace {

/// Poll quantum for the coordinator's liveness loops. Real time; only
/// controls how promptly losses are noticed, never any reported number.
constexpr double kTickSeconds = 0.05;

Json retry_policy_to_json(const RetryPolicy& retry) {
  JsonObject obj;
  obj.emplace("max_attempts", retry.max_attempts);
  obj.emplace("initial_backoff_s", retry.initial_backoff_s);
  obj.emplace("backoff_multiplier", retry.backoff_multiplier);
  obj.emplace("max_backoff_s", retry.max_backoff_s);
  obj.emplace("jitter", retry.jitter);
  obj.emplace("attempt_deadline_s", retry.attempt_deadline_s);
  return Json(std::move(obj));
}

Json fault_plan_to_json(const std::vector<FaultSpec>& plan) {
  JsonArray arr;
  arr.reserve(plan.size());
  for (const FaultSpec& spec : plan) {
    JsonObject obj;
    obj.emplace("site", spec.site);
    obj.emplace("rate", spec.rate);
    obj.emplace("fail_first", spec.fail_first);
    obj.emplace("code", static_cast<int>(spec.code));
    arr.push_back(Json(std::move(obj)));
  }
  return Json(std::move(arr));
}

Json device_to_json(const DeviceProfile& device) {
  JsonObject obj;
  obj.emplace("name", device.name);
  obj.emplace("max_cores", device.max_cores);
  obj.emplace("base_freq_ghz", device.base_freq_ghz);
  obj.emplace("flops_per_cycle_per_core", device.flops_per_cycle_per_core);
  obj.emplace("mem_bandwidth_gbs", device.mem_bandwidth_gbs);
  obj.emplace("ram_bytes", device.ram_bytes);
  return Json(std::move(obj));
}

}  // namespace

std::string trial_content_key(const EvalRequest& request) {
  return config_to_string(request.config) + "|r=" +
         format_double(request.resource, 6);
}

std::string measurement_fingerprint(const EdgeTuneOptions& options) {
  JsonObject fp;
  fp.emplace("workload", static_cast<int>(options.workload));
  fp.emplace("budget_policy", options.budget_policy);
  // Seeds are 64-bit; a JSON double would drop bits past 2^53.
  fp.emplace("seed", std::to_string(options.seed));
  fp.emplace("intra_op_threads", options.intra_op_threads);
  fp.emplace("inference_aware", options.inference_aware);
  // The routine pass runs post-search on the coordinator, keyed by the edge
  // device (already fingerprinted below); covering the flag itself keeps a
  // mixed fleet from half-expecting a routines report section.
  fp.emplace("routine_tuning", options.routine_tuning);
  fp.emplace("trial_retry", retry_policy_to_json(options.trial_retry));
  fp.emplace("faults", fault_plan_to_json(options.faults));
  fp.emplace("train_device", device_to_json(options.train_device));
  fp.emplace("edge_device", device_to_json(options.edge_device));
  {
    JsonObject runner;
    runner.emplace("proxy_samples", options.runner.proxy_samples);
    runner.emplace("validation_fraction", options.runner.validation_fraction);
    runner.emplace("seed", std::to_string(options.runner.seed));
    runner.emplace("momentum", options.runner.momentum);
    fp.emplace("runner", Json(std::move(runner)));
  }
  {
    // inference.workers is scheduling, not content; cache_path is rejected
    // in fleet mode. Everything else shapes the recommendation.
    JsonObject inf;
    inf.emplace("objective", static_cast<int>(options.inference.objective));
    inf.emplace("algorithm", options.inference.algorithm);
    inf.emplace("max_batch", options.inference.max_batch);
    inf.emplace("max_memory_bytes", options.inference.max_memory_bytes);
    inf.emplace("seed", std::to_string(options.inference.seed));
    inf.emplace("use_cache", options.inference.use_cache);
    inf.emplace("retry", retry_policy_to_json(options.inference.retry));
    inf.emplace("faults", fault_plan_to_json(options.inference.faults));
    fp.emplace("inference", Json(std::move(inf)));
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    stable_hash64(Json(std::move(fp)).dump())));
  return std::string(hex);
}

// --- FleetCoordinator -------------------------------------------------------

FleetCoordinator::FleetCoordinator(FleetOptions options,
                                   std::string fingerprint)
    : options_(std::move(options)), fingerprint_(std::move(fingerprint)) {}

FleetCoordinator::~FleetCoordinator() { shutdown(); }

Status FleetCoordinator::start() {
  ET_ASSIGN_OR_RETURN(listener_, TcpListener::listen(options_.port));
  {
    MutexLock lock(mutex_);
    started_ = true;
  }
  accept_thread_ =                       // one long-lived service thread, not
      std::thread([this] {               // NOLINT(thread-outside-pool)
        accept_loop();                   // pooled work
      });
  ET_LOG_INFO << "fleet coordinator listening on 127.0.0.1:" << port();
  return Status::ok();
}

Status FleetCoordinator::wait_for_workers(int count, double timeout_s) {
  MutexLock lock(mutex_);
  double waited_s = 0;
  while (total_joined_ < count && !shutting_down_) {
    if (waited_s >= timeout_s) {
      return Status::deadline_exceeded(
          "only " + std::to_string(total_joined_) + " of " +
          std::to_string(count) + " fleet workers connected within " +
          format_double(timeout_s, 1) + "s");
    }
    if (!state_cv_.wait_for_seconds(mutex_, kTickSeconds)) {
      waited_s += kTickSeconds;
    }
  }
  return Status::ok();
}

int FleetCoordinator::connected_workers() const {
  MutexLock lock(mutex_);
  return connected_;
}

bool FleetCoordinator::has_queued_work() const {
  if (slots_ == nullptr) return false;
  for (const Slot& slot : *slots_) {
    if (slot.state == SlotState::kQueued) return true;
  }
  return false;
}

void FleetCoordinator::fail_remaining(const std::string& why) {
  if (slots_ == nullptr) return;
  for (Slot& slot : *slots_) {
    if (slot.state == SlotState::kDone) continue;
    slot.result = TrialMeasurement{};
    slot.result.train_status = Status::unavailable(why);
    slot.result.attempts = std::max(1, slot.dispatches);
    slot.state = SlotState::kDone;
  }
  remaining_ = 0;
}

void FleetCoordinator::requeue(const std::vector<Grant>& grants,
                               const std::string& why) {
  for (const Grant& grant : grants) {
    if (grant.generation != generation_ || slots_ == nullptr) continue;
    Slot& slot = (*slots_)[grant.index];
    // Only the grant that currently owns the slot may return it: the state
    // and dispatch-count check rejects a stale grant whose trial was
    // already re-dispatched (or finished) elsewhere.
    if (slot.state != SlotState::kDispatched ||
        slot.dispatches != grant.attempt + 1) {
      continue;
    }
    if (slot.dispatches >= options_.max_dispatch_attempts) {
      slot.result = TrialMeasurement{};
      slot.result.train_status = Status::unavailable(
          "fleet worker lost after " + std::to_string(slot.dispatches) +
          " dispatch attempts (" + why + ")");
      slot.result.attempts = slot.dispatches;
      slot.state = SlotState::kDone;
      --remaining_;
    } else {
      slot.state = SlotState::kQueued;
    }
  }
  work_cv_.notify_all();
  state_cv_.notify_all();
}

std::vector<TrialMeasurement> FleetCoordinator::measure_batch(
    const std::vector<EvalRequest>& batch) {
  std::vector<TrialMeasurement> out(batch.size());
  if (batch.empty()) return out;
  std::vector<Slot> slots(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) slots[i].request = batch[i];

  MutexLock lock(mutex_);
  ++generation_;
  slots_ = &slots;
  remaining_ = batch.size();
  work_cv_.notify_all();
  double no_worker_s = 0;
  while (remaining_ > 0) {
    if (shutting_down_) {
      fail_remaining("fleet coordinator shut down mid-batch");
      break;
    }
    if (connected_ == 0) {
      if (no_worker_s >= options_.no_worker_grace_s) {
        ET_LOG_WARN << "fleet: no workers connected for "
                    << format_double(no_worker_s, 1) << "s with "
                    << remaining_ << " trials pending — failing them";
        fail_remaining("no fleet workers available");
        break;
      }
      if (!state_cv_.wait_for_seconds(mutex_, kTickSeconds)) {
        no_worker_s += kTickSeconds;
      }
    } else {
      no_worker_s = 0;
      (void)state_cv_.wait_for_seconds(mutex_, kTickSeconds);
    }
  }
  slots_ = nullptr;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out[i] = std::move(slots[i].result);
  }
  return out;
}

void FleetCoordinator::accept_loop() {
  int consecutive_failures = 0;
  for (;;) {
    Result<TcpStream> conn = listener_.accept();
    MutexLock lock(mutex_);
    if (shutting_down_) return;
    if (!conn.ok()) {
      // Transient accept errors happen (aborted handshakes); a persistent
      // storm means the listener is broken — stop rather than spin.
      if (++consecutive_failures >= 100) {
        ET_LOG_ERROR << "fleet accept loop giving up: "
                     << conn.status().to_string();
        return;
      }
      continue;
    }
    consecutive_failures = 0;
    connection_threads_.push_back(              // one thread per worker
        std::thread([this, s = std::move(conn).value()]() mutable {  // NOLINT(thread-outside-pool)
          serve_connection(std::move(s));
        }));
  }
}

void FleetCoordinator::serve_connection(TcpStream stream) {
  (void)stream.set_receive_timeout(options_.worker_timeout_s);

  // Handshake: HELLO must come first and must match our protocol version
  // and options fingerprint, else the worker would silently measure
  // something different from what this run accounts.
  Result<Message> first = read_message(stream);
  if (!first.ok() || first.value().type != MessageType::kHello) return;
  Result<HelloMessage> hello = hello_from_json(first.value().body);
  if (!hello.ok()) return;
  std::string refusal;
  if (hello.value().protocol_version != kFleetProtocolVersion) {
    refusal = "fleet protocol version mismatch: worker speaks v" +
              std::to_string(hello.value().protocol_version) +
              ", coordinator v" + std::to_string(kFleetProtocolVersion);
  } else if (hello.value().options_fingerprint != fingerprint_) {
    refusal =
        "options fingerprint mismatch: the worker was launched with "
        "different measurement flags than the coordinator";
  }
  if (!refusal.empty()) {
    ET_LOG_WARN << "fleet: refusing worker — " << refusal;
    JsonObject err;
    err.emplace("message", refusal);
    (void)write_message(stream, MessageType::kError, Json(std::move(err)));
    return;
  }

  int worker_id = 0;
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return;
    worker_id = next_worker_id_++;
    ++connected_;
    ++total_joined_;
    live_streams_.push_back(&stream);
    state_cv_.notify_all();
  }
  ET_LOG_INFO << "fleet: worker " << worker_id << " joined";

  std::vector<Grant> outstanding;
  std::string why = "connection lost";
  WelcomeMessage welcome;
  welcome.worker_id = worker_id;
  bool session_ok =
      write_message(stream, MessageType::kWelcome, welcome_to_json(welcome))
          .is_ok();
  while (session_ok) {
    Result<Message> msg = read_message(stream);
    if (!msg.ok()) {
      why = msg.status().message();
      break;
    }
    if (msg.value().type == MessageType::kPull) {
      Result<PullMessage> pull = pull_from_json(msg.value().body);
      if (!pull.ok()) {
        why = "malformed PULL";
        break;
      }
      const int want =
          std::min(pull.value().max_trials, options_.max_pull_trials);
      JsonArray trials;
      bool goodbye = false;
      {
        MutexLock lock(mutex_);
        while (!shutting_down_ && !has_queued_work()) work_cv_.wait(mutex_);
        if (shutting_down_) {
          goodbye = true;
        } else {
          for (std::size_t i = 0;
               i < slots_->size() && static_cast<int>(trials.size()) < want;
               ++i) {
            Slot& slot = (*slots_)[i];
            if (slot.state != SlotState::kQueued) continue;
            const int attempt = slot.dispatches++;
            slot.state = SlotState::kDispatched;
            Grant grant;
            grant.generation = generation_;
            grant.index = i;
            grant.attempt = attempt;
            outstanding.push_back(grant);
            JsonObject t;
            t.emplace("index", i);
            t.emplace("attempt", attempt);
            t.emplace("request", eval_request_to_json(slot.request));
            trials.push_back(Json(std::move(t)));
          }
        }
      }
      if (goodbye) {
        (void)write_message(stream, MessageType::kGoodbye,
                            Json(JsonObject{}));
        why = "shutdown";
        break;
      }
      JsonObject body;
      body.emplace("trials", std::move(trials));
      if (!write_message(stream, MessageType::kBatch, Json(std::move(body)))
               .is_ok()) {
        why = "dispatch write failed";
        break;
      }
    } else if (msg.value().type == MessageType::kResult) {
      const Json& body = msg.value().body;
      const Json* payload = body.find("measurement");
      Result<TrialMeasurement> measurement =
          payload != nullptr
              ? trial_measurement_from_json(*payload)
              : Result<TrialMeasurement>(
                    Status::unavailable("RESULT without measurement"));
      if (!measurement.ok()) {
        why = "garbled RESULT: " + measurement.status().message();
        break;
      }
      const auto index = static_cast<std::size_t>(body.get_number("index", 0));
      const int attempt = static_cast<int>(body.get_number("attempt", -1));
      MutexLock lock(mutex_);
      // Commit against our own grant record, never the worker's say-so: a
      // RESULT matching no live grant (stale generation, already
      // re-dispatched) is dropped — first result wins, and measurements
      // are pure, so any duplicate would have been identical anyway.
      for (auto it = outstanding.begin(); it != outstanding.end(); ++it) {
        if (it->index != index || it->attempt != attempt) continue;
        if (it->generation == generation_ && slots_ != nullptr) {
          Slot& slot = (*slots_)[it->index];
          if (slot.state == SlotState::kDispatched &&
              slot.dispatches == attempt + 1) {
            slot.result = std::move(measurement).value();
            slot.state = SlotState::kDone;
            --remaining_;
            state_cv_.notify_all();
          }
        }
        outstanding.erase(it);
        break;
      }
    } else {
      why = "unexpected message type";
      break;
    }
  }

  {
    MutexLock lock(mutex_);
    live_streams_.erase(
        std::remove(live_streams_.begin(), live_streams_.end(), &stream),
        live_streams_.end());
    --connected_;
    requeue(outstanding, why);
    state_cv_.notify_all();
  }
  if (why != "shutdown") {
    ET_LOG_INFO << "fleet: worker " << worker_id << " left (" << why << ")";
  }
}

void FleetCoordinator::shutdown() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
    work_cv_.notify_all();
    state_cv_.notify_all();
    for (TcpStream* stream : live_streams_) stream->shutdown_both();
  }
  if (listener_.valid()) listener_.shutdown_listener();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;  // NOLINT(thread-outside-pool)
  {
    MutexLock lock(mutex_);
    connections.swap(connection_threads_);
  }
  for (std::thread& thread : connections) {  // NOLINT(thread-outside-pool)
    if (thread.joinable()) thread.join();
  }
}

// --- Worker -----------------------------------------------------------------

namespace {

Result<TcpStream> connect_with_retries(const std::string& host, int port,
                                       int attempts) {
  Status last = Status::unavailable("no connect attempts made");
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      // Real wait between real connection attempts — startup/teardown
      // plumbing, never simulated time.
      std::this_thread::sleep_for(  // NOLINT(real-sleep-in-lib)
          std::chrono::milliseconds(200));
    }
    Result<TcpStream> stream = TcpStream::connect(host, port);
    if (stream.ok()) return stream;
    last = stream.status();
  }
  return last;
}

}  // namespace

Status run_fleet_worker(const std::string& host, int port,
                        EdgeTuneOptions options) {
  options.fleet.reset();
  if (!options.inference_aware) {
    return Status::invalid_argument(
        "fleet workers require inference-aware tuning (--system edgetune)");
  }
  const std::string fingerprint = measurement_fingerprint(options);
  FaultInjector drops(options.seed, options.faults);
  EdgeTune tuner(std::move(options));

  int sessions = 0;
  for (;;) {
    // The first connect gets a generous budget (the coordinator may still
    // be starting up); reconnects a short one — after at least one session,
    // a vanished coordinator is a normal end of work, not an error.
    Result<TcpStream> conn =
        connect_with_retries(host, port, sessions == 0 ? 50 : 10);
    if (!conn.ok()) {
      if (sessions > 0) return Status::ok();
      return conn.status();
    }
    TcpStream stream = std::move(conn).value();
    ++sessions;

    HelloMessage hello;
    hello.options_fingerprint = fingerprint;
    if (!write_message(stream, MessageType::kHello, hello_to_json(hello))
             .is_ok()) {
      continue;
    }
    Result<Message> reply = read_message(stream);
    if (!reply.ok()) continue;
    if (reply.value().type == MessageType::kError) {
      return Status::failed_precondition(
          "coordinator refused this worker: " +
          reply.value().body.get_string("message", "(no reason given)"));
    }
    if (reply.value().type != MessageType::kWelcome) {
      return Status::unavailable("unexpected handshake reply");
    }
    Result<WelcomeMessage> welcome = welcome_from_json(reply.value().body);
    const int worker_id = welcome.ok() ? welcome.value().worker_id : 0;
    ET_LOG_INFO << "fleet worker " << worker_id << " connected to " << host
                << ":" << port;

    bool drop = false;
    bool goodbye = false;
    while (!drop) {
      PullMessage pull;
      pull.max_trials = 1;
      if (!write_message(stream, MessageType::kPull, pull_to_json(pull))
               .is_ok()) {
        break;
      }
      Result<Message> msg = read_message(stream);
      if (!msg.ok()) break;
      if (msg.value().type == MessageType::kGoodbye) {
        goodbye = true;
        break;
      }
      if (msg.value().type != MessageType::kBatch) break;
      const Json* trials = msg.value().body.find("trials");
      if (trials == nullptr || !trials->is_array()) break;
      for (const Json& t : trials->as_array()) {
        const auto index = static_cast<std::size_t>(t.get_number("index", 0));
        const int attempt = static_cast<int>(t.get_number("attempt", 0));
        const Json* request_json = t.find("request");
        Result<EvalRequest> request =
            request_json != nullptr
                ? eval_request_from_json(*request_json)
                : Result<EvalRequest>(
                      Status::unavailable("dispatch without request"));
        if (!request.ok()) {
          drop = true;
          break;
        }
        // The deterministic loss model: a worker.drop decision for this
        // (trial, dispatch attempt) severs the connection before the trial
        // runs. The coordinator re-queues it with attempt + 1, so a
        // fail_first=1 plan loses every trial exactly once — at any fleet
        // size, since the decision is pure in (seed, key, attempt).
        if (Status injected = drops.fire(
                fault_site::kWorkerDrop, trial_content_key(request.value()),
                attempt);
            !injected.is_ok()) {
          ET_LOG_WARN << "fleet worker " << worker_id
                      << ": injected drop before trial (attempt " << attempt
                      << ") — reconnecting";
          drop = true;
          break;
        }
        TrialMeasurement measurement = tuner.measure_one(request.value());
        JsonObject result;
        result.emplace("index", index);
        result.emplace("attempt", attempt);
        result.emplace("measurement", trial_measurement_to_json(measurement));
        if (!write_message(stream, MessageType::kResult,
                           Json(std::move(result)))
                 .is_ok()) {
          drop = true;
          break;
        }
      }
    }
    stream.close();
    if (goodbye) {
      ET_LOG_INFO << "fleet worker " << worker_id << " done";
      return Status::ok();
    }
  }
}

}  // namespace edgetune
