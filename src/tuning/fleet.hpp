// The distributed tuning fleet (DESIGN §5.5): one coordinator shards trial
// MEASUREMENT across worker processes while keeping every accounting
// DECISION — billing, incumbent, target stop, cache counters, wall clock —
// on its own search thread. Measurements are content-pure (measure_one), so
// a fleet run's report is byte-identical to the single-process serial run
// with the same options and seed, at any fleet size, even across injected
// worker losses.
//
// Worker loss reuses the PR-5 fault model: a dropped, hung, or garbled
// connection surfaces as kUnavailable; the coordinator re-queues the
// trials that worker held (dispatch attempt + 1) onto survivors, and only
// after max_dispatch_attempts losses does a trial fail — as a first-class
// kUnavailable trial the existing failure-budget machinery judges. The
// deterministic `worker.drop` fault site is keyed by trial content and the
// coordinator's dispatch attempt, so an injected loss plan fires
// identically at any fleet size.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/socket.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {

struct FleetOptions {
  /// Port to listen on (loopback). 0 picks an ephemeral port; read the
  /// actual one from FleetCoordinator::port() after start().
  int port = 0;
  /// A live connection silent for this long is a lost worker: its
  /// outstanding trials are re-queued. Real time; never enters the report.
  double worker_timeout_s = 30;
  /// With trials pending and ZERO workers connected for this long, the
  /// coordinator stops waiting and fails the remaining trials with
  /// kUnavailable instead of hanging forever.
  double no_worker_grace_s = 10;
  /// Times one trial may be dispatched across worker losses before it is
  /// failed with kUnavailable.
  int max_dispatch_attempts = 3;
  /// Cap on trials granted per PULL, whatever the worker asks for.
  int max_pull_trials = 16;
};

/// Content identity of a trial (config + resource): the key every fault,
/// retry, and worker-drop decision hashes. Shared by EdgeTune::measure_one
/// and the worker loop so decisions are pure in the work item — identical
/// at any --trial-workers count and any fleet size.
std::string trial_content_key(const EvalRequest& request);

/// Stable hex fingerprint over every option that feeds measurement
/// (workload, seed, devices, budget policy, retry/fault plans, inference
/// options...). Workers present it in HELLO; the coordinator refuses a
/// mismatch, because a worker launched with different flags would return
/// silently different measurements. Scheduling-only options (trial_workers,
/// fleet/role flags, inference.workers) are deliberately excluded: they may
/// differ between the coordinator and worker invocations.
std::string measurement_fingerprint(const EdgeTuneOptions& options);

/// Accepts workers and dispatches EvalRequest batches to them. Create it,
/// start() it, hand it to EdgeTuneOptions::fleet, and run() measures every
/// batch remotely. Thread-safe; measure_batch is called from the search
/// thread only.
class FleetCoordinator {
 public:
  FleetCoordinator(FleetOptions options, std::string fingerprint);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Binds the port and starts the accept loop.
  Status start() EDGETUNE_EXCLUDES(mutex_);

  /// The bound port (valid after start()).
  [[nodiscard]] int port() const noexcept { return listener_.port(); }

  /// Blocks until `count` workers have completed the handshake (counting
  /// ones that later left), or fails with kDeadlineExceeded.
  Status wait_for_workers(int count, double timeout_s)
      EDGETUNE_EXCLUDES(mutex_);

  /// Measures one batch on the fleet; returns measurements in batch order.
  /// Never blocks forever: trials a worker lost are re-dispatched, and
  /// trials no worker could run come back with train_status kUnavailable.
  [[nodiscard]] std::vector<TrialMeasurement> measure_batch(
      const std::vector<EvalRequest>& batch) EDGETUNE_EXCLUDES(mutex_);

  /// Sends GOODBYE to idle workers, unblocks everything, joins all threads.
  /// Idempotent; the destructor calls it.
  void shutdown() EDGETUNE_EXCLUDES(mutex_);

  /// Workers currently connected (post-handshake).
  [[nodiscard]] int connected_workers() const EDGETUNE_EXCLUDES(mutex_);

 private:
  enum class SlotState { kQueued, kDispatched, kDone };
  struct Slot {
    EvalRequest request;
    int dispatches = 0;  // dispatch attempts so far
    SlotState state = SlotState::kQueued;
    TrialMeasurement result;
  };
  /// One granted trial: generation ties it to a measure_batch call so a
  /// stale RESULT can never corrupt a later batch.
  struct Grant {
    std::uint64_t generation = 0;
    std::size_t index = 0;
    int attempt = 0;
  };

  void accept_loop();
  void serve_connection(TcpStream stream);
  /// Returns a lost connection's trials to the queue (or fails them once
  /// their dispatch attempts are exhausted).
  void requeue(const std::vector<Grant>& grants, const std::string& why)
      EDGETUNE_REQUIRES(mutex_);
  [[nodiscard]] bool has_queued_work() const EDGETUNE_REQUIRES(mutex_);
  /// Fails every unfinished slot of the current batch with kUnavailable.
  void fail_remaining(const std::string& why) EDGETUNE_REQUIRES(mutex_);

  const FleetOptions options_;
  const std::string fingerprint_;
  TcpListener listener_;
  std::thread accept_thread_;  // NOLINT(thread-outside-pool)

  mutable Mutex mutex_;
  CondVar work_cv_;   // new work queued, or shutdown
  CondVar state_cv_;  // a slot finished / a worker joined or left
  bool started_ EDGETUNE_GUARDED_BY(mutex_) = false;
  bool shutting_down_ EDGETUNE_GUARDED_BY(mutex_) = false;
  int connected_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  int total_joined_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  int next_worker_id_ EDGETUNE_GUARDED_BY(mutex_) = 1;
  /// Live connections' streams, for shutdown_both() at shutdown. Entries
  /// are registered/unregistered by their owning connection thread under
  /// mutex_ before the stream object dies, so no pointer dangles.
  std::vector<TcpStream*> live_streams_ EDGETUNE_GUARDED_BY(mutex_);
  // Per-worker service threads, joined in shutdown() — long-lived I/O
  // servers, not pooled work items.
  std::vector<std::thread> connection_threads_  // NOLINT(thread-outside-pool)
      EDGETUNE_GUARDED_BY(mutex_);
  std::uint64_t generation_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::vector<Slot>* slots_ EDGETUNE_GUARDED_BY(mutex_) = nullptr;
  std::size_t remaining_ EDGETUNE_GUARDED_BY(mutex_) = 0;
};

/// Runs one fleet worker: connects to the coordinator (with retries),
/// handshakes, then pulls trials and streams back measurements until the
/// coordinator says GOODBYE or goes away. A `worker.drop` fault firing for
/// a dispatched trial drops the connection on purpose (then reconnects),
/// exercising the coordinator's loss handling deterministically.
Status run_fleet_worker(const std::string& host, int port,
                        EdgeTuneOptions options);

}  // namespace edgetune
