#include "tuning/finalize.hpp"

#include <algorithm>

#include "data/trainer.hpp"
#include "nn/serialize.hpp"

namespace edgetune {

Result<FinalizedModel> finalize_best_model(const EdgeTuneOptions& options,
                                           const TuningReport& report,
                                           const FinalizeOptions& finalize) {
  if (report.best_config.find("model_hparam") == report.best_config.end()) {
    return Status::invalid_argument(
        "report has no winning configuration to finalize");
  }
  const auto get = [&](const char* key, double fallback) {
    auto it = report.best_config.find(key);
    return it == report.best_config.end() ? fallback : it->second;
  };

  Rng rng(options.seed ^ 0xf17a11ULL);
  ET_ASSIGN_OR_RETURN(
      BuiltModel model,
      build_workload_model(options.workload,
                           report.best_config.at("model_hparam"), rng));

  // Full dataset at the winning batch/lr, `epochs` passes.
  auto dataset = make_workload_data(options.workload,
                                    options.runner.proxy_samples,
                                    options.runner.seed != 0
                                        ? options.runner.seed
                                        : options.seed);
  Rng split_rng(options.seed ^ 0x5917u);
  auto [train, val] = DatasetView::all(*dataset).split(
      1.0 - options.runner.validation_fraction, split_rng);

  const auto train_batch =
      static_cast<std::int64_t>(get("train_batch", 128));
  TrainerOptions trainer_options;
  trainer_options.batch_size =
      std::clamp<std::int64_t>(train_batch / 16, 4, 64);
  trainer_options.epochs = finalize.epochs;
  trainer_options.sgd.learning_rate = get("lr", 0.05);
  trainer_options.sgd.momentum = get("momentum", options.runner.momentum);
  trainer_options.sgd.weight_decay = get("weight_decay", 0.0);
  Trainer trainer(*model.net, trainer_options, rng);
  ET_ASSIGN_OR_RETURN(TrainingHistory history, trainer.fit(train, val));

  FinalizedModel out;
  out.accuracy = history.epochs.empty()
                     ? Trainer::evaluate(*model.net, val)
                     : history.epochs.back().val_accuracy;

  // Simulated full-scale cost of the final training.
  CostModel server(options.train_device);
  TrainConfig config;
  config.batch_size = train_batch;
  config.num_gpus = static_cast<int>(get("num_gpus", 1));
  ET_ASSIGN_OR_RETURN(
      CostEstimate epoch_cost,
      server.train_epoch_cost(model.arch, config,
                              workload_info(options.workload).train_samples));
  out.train_time_s = epoch_cost.latency_s * finalize.epochs;
  out.train_energy_j = epoch_cost.energy_j * finalize.epochs;

  if (!finalize.checkpoint_path.empty()) {
    ET_RETURN_IF_ERROR(save_weights(*model.net, finalize.checkpoint_path));
    out.checkpoint_path = finalize.checkpoint_path;
  }
  out.model = std::move(model);
  return out;
}

}  // namespace edgetune
