#include "tuning/report_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/durable_io.hpp"
#include "common/fault.hpp"

namespace edgetune {

namespace {

Json config_to_json(const Config& config) {
  JsonObject obj;
  for (const auto& [name, value] : config) obj.emplace(name, value);
  return Json(std::move(obj));
}

Config config_from_json(const Json* json) {
  Config config;
  if (json == nullptr || !json->is_object()) return config;
  for (const auto& [name, value] : json->as_object()) {
    if (value.is_number()) config[name] = value.as_number();
  }
  return config;
}

// Serialized codes use the lower-case flag spelling ("unavailable"), the
// form status_code_from_name parses back.
std::string status_code_flag_name(StatusCode code) {
  std::string name = status_code_name(code);
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

// Reads an error object ({"code": ..., "message": ...}); absent => OK.
Status status_from_json(const Json* json) {
  if (json == nullptr || !json->is_object()) return Status::ok();
  Result<StatusCode> code =
      status_code_from_name(json->get_string("code", "internal"));
  return Status(code.ok() ? code.value() : StatusCode::kInternal,
                json->get_string("message", ""));
}

Json inference_to_json(const InferenceRecommendation& rec) {
  JsonObject obj;
  obj.emplace("config", config_to_json(rec.config));
  obj.emplace("latency_s", rec.latency_s);
  obj.emplace("throughput_sps", rec.throughput_sps);
  obj.emplace("energy_per_sample_j", rec.energy_per_sample_j);
  obj.emplace("peak_memory_bytes", rec.peak_memory_bytes);
  obj.emplace("from_cache", rec.from_cache);
  obj.emplace("tuning_time_s", rec.tuning_time_s);
  obj.emplace("tuning_energy_j", rec.tuning_energy_j);
  return Json(std::move(obj));
}

// Encodes a status as {"code", "message"}; OK statuses are simply omitted
// from the enclosing object, matching status_from_json's absent => OK.
Json status_to_json(const Status& status) {
  JsonObject obj;
  obj.emplace("code", status_code_flag_name(status.code()));
  obj.emplace("message", status.message());
  return Json(std::move(obj));
}

InferenceRecommendation inference_from_json(const Json* json) {
  InferenceRecommendation rec;
  if (json == nullptr) return rec;
  rec.config = config_from_json(json->find("config"));
  rec.latency_s = json->get_number("latency_s", 0);
  rec.throughput_sps = json->get_number("throughput_sps", 0);
  rec.energy_per_sample_j = json->get_number("energy_per_sample_j", 0);
  rec.peak_memory_bytes = json->get_number("peak_memory_bytes", 0);
  rec.from_cache = json->get_bool("from_cache", false);
  rec.tuning_time_s = json->get_number("tuning_time_s", 0);
  rec.tuning_energy_j = json->get_number("tuning_energy_j", 0);
  return rec;
}

}  // namespace

Json report_to_json(const TuningReport& report) {
  JsonObject root;
  root.emplace("system", report.system);
  root.emplace("best_config", config_to_json(report.best_config));
  root.emplace("best_accuracy", report.best_accuracy);
  root.emplace("best_objective", report.best_objective);
  root.emplace("inference", inference_to_json(report.inference));
  root.emplace("tuning_runtime_s", report.tuning_runtime_s);
  root.emplace("tuning_energy_j", report.tuning_energy_j);
  root.emplace("cache_hits", report.cache_hits);
  root.emplace("cache_misses", report.cache_misses);
  // Reliability fields are emitted only when a run actually failed or
  // retried something: clean-run reports stay byte-identical with
  // pre-reliability builds.
  if (report.failed_trials > 0) {
    root.emplace("failed_trials", report.failed_trials);
  }
  if (report.retried_trials > 0) {
    root.emplace("retried_trials", report.retried_trials);
  }
  if (report.retry_backoff_s > 0) {
    root.emplace("retry_backoff_s", report.retry_backoff_s);
  }
  if (!report.first_error.is_ok()) {
    JsonObject error;
    error.emplace("code", status_code_flag_name(report.first_error.code()));
    error.emplace("message", report.first_error.message());
    root.emplace("first_error", std::move(error));
  }
  if (!report.per_device.empty()) {
    JsonObject per_device;
    for (const auto& [device, rec] : report.per_device) {
      per_device.emplace(device, inference_to_json(rec));
    }
    root.emplace("per_device", std::move(per_device));
  }
  // Routine-tuning section, only when the pass ran (--tune-routines):
  // routine-less reports stay byte-identical with pre-routine builds.
  if (report.routines_enabled) {
    const RoutineAssignment& r = report.routines;
    JsonObject routines;
    routines.emplace("device", r.device);
    routines.emplace("total_s", r.total_s);
    routines.emplace("conversion_s", r.conversion_s);
    routines.emplace("greedy_s", r.greedy_s);
    routines.emplace("fixed_blocked_s", r.fixed_blocked_s);
    routines.emplace("profile_hits", r.profile_hits);
    routines.emplace("profile_misses", r.profile_misses);
    JsonArray ops;
    ops.reserve(r.ops.size());
    for (const RoutineOpAssignment& op : r.ops) {
      JsonObject o;
      o.emplace("layer", op.layer_kind);
      o.emplace("shape_class", op.shape_class);
      o.emplace("routine", op.routine);
      o.emplace("predicted_s", op.predicted_s);
      ops.push_back(Json(std::move(o)));
    }
    routines.emplace("ops", std::move(ops));
    root.emplace("routines", std::move(routines));
  }

  JsonArray trials;
  trials.reserve(report.trials.size());
  for (const TrialLog& t : report.trials) {
    JsonObject trial;
    trial.emplace("id", t.id);
    trial.emplace("config", config_to_json(t.config));
    trial.emplace("resource", t.resource);
    trial.emplace("epochs", t.budget.epochs);
    trial.emplace("data_fraction", t.budget.data_fraction);
    trial.emplace("accuracy", t.accuracy);
    trial.emplace("duration_s", t.duration_s);
    trial.emplace("energy_j", t.energy_j);
    trial.emplace("objective", t.objective);
    trial.emplace("inference_cached", t.inference_cached);
    trial.emplace("inference_tuning_s", t.inference_tuning_s);
    trial.emplace("inference_stall_s", t.inference_stall_s);
    if (t.attempts != 1) trial.emplace("attempts", t.attempts);
    if (t.retry_backoff_s > 0) {
      trial.emplace("retry_backoff_s", t.retry_backoff_s);
    }
    if (!t.status.is_ok()) {
      JsonObject status;
      status.emplace("code", status_code_flag_name(t.status.code()));
      status.emplace("message", t.status.message());
      trial.emplace("status", std::move(status));
    }
    trials.push_back(Json(std::move(trial)));
  }
  root.emplace("trials", std::move(trials));
  return Json(std::move(root));
}

Result<TuningReport> report_from_json(const Json& json) {
  if (!json.is_object()) {
    return Status::invalid_argument("report JSON must be an object");
  }
  TuningReport report;
  report.system = json.get_string("system", "");
  report.best_config = config_from_json(json.find("best_config"));
  report.best_accuracy = json.get_number("best_accuracy", 0);
  report.best_objective = json.get_number(
      "best_objective", std::numeric_limits<double>::infinity());
  report.inference = inference_from_json(json.find("inference"));
  report.tuning_runtime_s = json.get_number("tuning_runtime_s", 0);
  report.tuning_energy_j = json.get_number("tuning_energy_j", 0);
  report.cache_hits =
      static_cast<std::size_t>(json.get_number("cache_hits", 0));
  report.cache_misses =
      static_cast<std::size_t>(json.get_number("cache_misses", 0));
  report.failed_trials =
      static_cast<std::int64_t>(json.get_number("failed_trials", 0));
  report.retried_trials =
      static_cast<std::int64_t>(json.get_number("retried_trials", 0));
  report.retry_backoff_s = json.get_number("retry_backoff_s", 0);
  report.first_error = status_from_json(json.find("first_error"));
  if (const Json* per_device = json.find("per_device");
      per_device != nullptr && per_device->is_object()) {
    for (const auto& [device, rec] : per_device->as_object()) {
      report.per_device.emplace(device, inference_from_json(&rec));
    }
  }
  if (const Json* routines = json.find("routines");
      routines != nullptr && routines->is_object()) {
    report.routines_enabled = true;
    RoutineAssignment& r = report.routines;
    r.device = routines->get_string("device", "");
    r.total_s = routines->get_number("total_s", 0);
    r.conversion_s = routines->get_number("conversion_s", 0);
    r.greedy_s = routines->get_number("greedy_s", 0);
    r.fixed_blocked_s = routines->get_number("fixed_blocked_s", 0);
    r.profile_hits =
        static_cast<std::size_t>(routines->get_number("profile_hits", 0));
    r.profile_misses =
        static_cast<std::size_t>(routines->get_number("profile_misses", 0));
    if (const Json* ops = routines->find("ops");
        ops != nullptr && ops->is_array()) {
      for (const Json& op : ops->as_array()) {
        RoutineOpAssignment entry;
        entry.layer_kind = op.get_string("layer", "");
        entry.shape_class = op.get_string("shape_class", "");
        entry.routine = op.get_string("routine", "");
        entry.predicted_s = op.get_number("predicted_s", 0);
        r.ops.push_back(std::move(entry));
      }
    }
  }
  if (const Json* trials = json.find("trials");
      trials != nullptr && trials->is_array()) {
    for (const Json& t : trials->as_array()) {
      TrialLog log;
      log.id = static_cast<int>(t.get_number("id", 0));
      log.config = config_from_json(t.find("config"));
      log.resource = t.get_number("resource", 0);
      log.budget.epochs = static_cast<int>(t.get_number("epochs", 1));
      log.budget.data_fraction = t.get_number("data_fraction", 1.0);
      log.accuracy = t.get_number("accuracy", 0);
      log.duration_s = t.get_number("duration_s", 0);
      log.energy_j = t.get_number("energy_j", 0);
      log.objective = t.get_number("objective", 0);
      log.inference_cached = t.get_bool("inference_cached", false);
      log.inference_tuning_s = t.get_number("inference_tuning_s", 0);
      log.inference_stall_s = t.get_number("inference_stall_s", 0);
      log.attempts = static_cast<int>(t.get_number("attempts", 1));
      log.retry_backoff_s = t.get_number("retry_backoff_s", 0);
      log.status = status_from_json(t.find("status"));
      report.trials.push_back(std::move(log));
    }
  }
  return report;
}

Status save_report(const TuningReport& report, const std::string& path) {
  // Durable (common/durable_io.hpp): a crash while archiving a finished run
  // must not leave a truncated report where a good one stood.
  return durable_write_file(path, report_to_json(report).dump_pretty() + "\n");
}

Result<TuningReport> load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::not_found("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ET_ASSIGN_OR_RETURN(Json json, Json::parse(buffer.str()));
  return report_from_json(json);
}

Json eval_request_to_json(const EvalRequest& request) {
  JsonObject obj;
  obj.emplace("trial_index", request.trial_index);
  obj.emplace("config", config_to_json(request.config));
  obj.emplace("resource", request.resource);
  return Json(std::move(obj));
}

Result<EvalRequest> eval_request_from_json(const Json& json) {
  if (!json.is_object() || json.find("config") == nullptr) {
    return Status::unavailable("malformed EvalRequest on the wire");
  }
  EvalRequest request;
  request.trial_index = static_cast<int>(json.get_number("trial_index", 0));
  request.config = config_from_json(json.find("config"));
  request.resource = json.get_number("resource", 0);
  return request;
}

Json trial_measurement_to_json(const TrialMeasurement& measurement) {
  JsonObject obj;
  if (!measurement.setup_status.is_ok()) {
    obj.emplace("setup_status", status_to_json(measurement.setup_status));
  }
  obj.emplace("arch_id", measurement.arch_id);
  if (!measurement.train_status.is_ok()) {
    obj.emplace("train_status", status_to_json(measurement.train_status));
  }
  obj.emplace("attempts", measurement.attempts);
  obj.emplace("retry_backoff_s", measurement.retry_backoff_s);
  JsonObject outcome;
  outcome.emplace("accuracy", measurement.outcome.accuracy);
  outcome.emplace("train_time_s", measurement.outcome.train_time_s);
  outcome.emplace("train_energy_j", measurement.outcome.train_energy_j);
  outcome.emplace("arch_id", measurement.outcome.arch_id);
  obj.emplace("outcome", std::move(outcome));
  obj.emplace("inference_attempted", measurement.inference_attempted);
  if (measurement.inference_attempted) {
    if (!measurement.inference_status.is_ok()) {
      obj.emplace("inference_status",
                  status_to_json(measurement.inference_status));
    }
    obj.emplace("rec", inference_to_json(measurement.rec));
  }
  return Json(std::move(obj));
}

Result<TrialMeasurement> trial_measurement_from_json(const Json& json) {
  if (!json.is_object() || json.find("arch_id") == nullptr) {
    return Status::unavailable("malformed TrialMeasurement on the wire");
  }
  TrialMeasurement m;
  m.setup_status = status_from_json(json.find("setup_status"));
  m.arch_id = json.get_string("arch_id", "");
  m.train_status = status_from_json(json.find("train_status"));
  m.attempts = static_cast<int>(json.get_number("attempts", 1));
  m.retry_backoff_s = json.get_number("retry_backoff_s", 0);
  if (const Json* outcome = json.find("outcome");
      outcome != nullptr && outcome->is_object()) {
    m.outcome.accuracy = outcome->get_number("accuracy", 0);
    m.outcome.train_time_s = outcome->get_number("train_time_s", 0);
    m.outcome.train_energy_j = outcome->get_number("train_energy_j", 0);
    m.outcome.arch_id = outcome->get_string("arch_id", "");
  }
  m.inference_attempted = json.get_bool("inference_attempted", false);
  if (m.inference_attempted) {
    m.inference_status = status_from_json(json.find("inference_status"));
    m.rec = inference_from_json(json.find("rec"));
  }
  return m;
}

Status save_trials_csv(const TuningReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::io("cannot open " + path + " for writing");
  // Column set: union of config keys across trials, sorted (std::map).
  std::map<std::string, bool> keys;
  for (const TrialLog& t : report.trials) {
    for (const auto& [name, value] : t.config) keys.emplace(name, true);
  }
  out << "id,resource,epochs,data_fraction,accuracy,duration_s,energy_j,"
         "objective,inference_cached,inference_tuning_s,inference_stall_s";
  for (const auto& [name, unused] : keys) out << ',' << name;
  out << '\n';
  for (const TrialLog& t : report.trials) {
    out << t.id << ',' << t.resource << ',' << t.budget.epochs << ','
        << t.budget.data_fraction << ',' << t.accuracy << ',' << t.duration_s
        << ',' << t.energy_j << ',' << t.objective << ','
        << (t.inference_cached ? 1 : 0) << ',' << t.inference_tuning_s << ','
        << t.inference_stall_s;
    for (const auto& [name, unused] : keys) {
      out << ',';
      auto it = t.config.find(name);
      if (it != t.config.end()) out << it->second;
    }
    out << '\n';
  }
  return out.good() ? Status::ok() : Status::io("short write to " + path);
}

}  // namespace edgetune
