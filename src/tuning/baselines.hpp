// Baseline systems the paper compares against (§5.1, §5.5) plus the
// hierarchical tuning strategy (§4.1). All reuse the EdgeTune machinery with
// the distinguishing features disabled, so comparisons isolate exactly the
// paper's claims.
#pragma once

#include "tuning/model_server.hpp"

namespace edgetune {

/// T(une): hyperparameter-only tuning — no system parameters, no inference
/// awareness, accuracy objective; same search algorithm as EdgeTune (§5.1).
/// The returned report's `inference` field is the *default* deployment
/// (batch 1, single core) since Tune emits no inference recommendation.
Result<TuningReport> run_tune_baseline(EdgeTuneOptions options);

/// HyperPower (Stamoulis et al.): Bayesian optimization over model
/// hyperparameters with aggressive early termination — over-cap trials are
/// killed immediately, clearly-unpromising ones partway through, and the
/// per-trial training budget is half of EdgeTune's top rung (HyperPower
/// scores candidates from short trainings, it does not tune budgets).
/// No inference output; like the paper (§5.5) we evaluate its winning model
/// at EdgeTune's recommended inference configuration for fairness, which the
/// caller does by pairing reports.
Result<TuningReport> run_hyperpower_baseline(EdgeTuneOptions options,
                                             double power_cap_w);

/// Hierarchical tuning (§4.1, Fig 9): first tune hyperparameters with fixed
/// system parameters, then tune system parameters for the winning
/// hyperparameters. The tier-2 num_gpus grid (powers of two up to the train
/// device's GPU count, plus the count itself — mirroring the onefold space)
/// is submitted as ONE evaluation batch, so it spreads across
/// `options.trial_workers` like a HyperBand rung. Report aggregates both
/// tiers; tier-2 trials are charged training time plus any inference-tuning
/// stall, exactly like onefold trials.
Result<TuningReport> run_hierarchical(EdgeTuneOptions options);

/// Evaluates a report's winning architecture at an explicit inference
/// configuration on the edge device (used to score baselines that emit no
/// recommendation). Returns a recommendation-shaped record.
Result<InferenceRecommendation> evaluate_inference_at(
    const EdgeTuneOptions& options, const Config& model_config,
    const Config& inference_config);

}  // namespace edgetune
