// The Model Tuning Server and the EdgeTune facade (§3.3, Alg. 1). Runs the
// onefold search over model hyperparameters + training system parameters;
// for every trial, asynchronously requests inference recommendations from
// the Inference Tuning Server and folds them into the ratio objective.
#pragma once

#include <memory>
#include <vector>

#include "budget/budget.hpp"
#include "common/fault.hpp"
#include "common/retry.hpp"
#include "tuning/inference_server.hpp"
#include "tuning/routine_tuner.hpp"
#include "tuning/trial_runner.hpp"

namespace edgetune {

class FleetCoordinator;  // tuning/fleet.hpp
class TrialJournal;      // tuning/journal.hpp
struct JournalRecord;    // tuning/journal.hpp

/// How the model server scores a trial.
enum class ObjectiveMode {
  kRatio,         // EdgeTune: (train metric x inference metric) / accuracy
  kAccuracyOnly,  // Tune baseline: maximize accuracy, ignore system cost
};

struct EdgeTuneOptions {
  WorkloadKind workload = WorkloadKind::kImageClassification;

  // Search.
  std::string search_algorithm = "bohb";  // grid|random|hyperband|bohb|tpe
  std::string budget_policy = "multi-budget";  // epochs|dataset|multi-budget
  HyperBandOptions hyperband{1, 16, 2, 0};
  int random_trials = 16;  // for random/tpe algorithms

  /// Concurrent trial evaluations per rung / candidate set (1 = serial).
  /// Trials of one HyperBand rung (or a grid/random search's whole candidate
  /// set) run on a shared worker pool; same-seed parallel and serial runs
  /// report the identical best config and objective. Simulated wall-clock is
  /// accounted as the makespan of the rung over this many workers (with 1
  /// worker that reduces to the plain sum). TPE proposes this many configs
  /// per round via constant-liar batch suggestion, so model-based search
  /// also keeps every worker busy; at 1 it is byte-identical to the
  /// historical serial TPE, while wider batches trade some suggestion
  /// quality for wall clock (the suggestions themselves then differ from
  /// the serial run's, deterministically per seed).
  int trial_workers = 1;

  /// Threads the GEMM/conv kernel substrate may use INSIDE one operator
  /// (see tensor/gemm.hpp). Applied process-wide in the EdgeTune
  /// constructor. Keep trial_workers * intra_op_threads <= physical cores:
  /// the two multiply, and oversubscription degrades both. Default 1 keeps
  /// results bitwise identical to the serial kernels.
  int intra_op_threads = 1;

  // Objectives (§4.4).
  ObjectiveMode objective_mode = ObjectiveMode::kRatio;
  MetricOfInterest tuning_metric = MetricOfInterest::kRuntime;

  /// Stop executing further trials once a trial reaches this validation
  /// accuracy (0 disables). Models the paper's "tune until the target model
  /// accuracy" runs (§2.3, Fig 12): remaining scheduled trials are skipped
  /// at zero cost.
  double target_accuracy = 0;

  // Inference awareness (the EdgeTune contribution; off reproduces Tune).
  bool inference_aware = true;
  /// Include training system parameters (num_gpus) in the onefold space.
  bool tune_system_params = true;
  /// Additionally tune momentum and weight decay (§1 lists them among the
  /// hyperparameters; off by default to keep the space comparable to §5.1).
  bool tune_extended_hparams = false;

  /// HyperPower-style power cap: trials whose average training power exceeds
  /// this are terminated early (objective = inf, partial cost charged).
  /// 0 disables the cap.
  double power_cap_w = 0;

  // --- Reliability (DESIGN §5.4). Defaults are the bit-identical fast
  // path: no injection, no retries, never abort on isolated failures.

  /// Deterministic fault plan (--inject-fault). Fires at trial.train in the
  /// model server and is forwarded to the inference server's sites
  /// (inference.measure, cache.persist) unless options.inference.faults was
  /// set explicitly. Decisions are pure in (seed, site, key, attempt), so
  /// injected faults are identical under any trial_workers count.
  std::vector<FaultSpec> faults;

  /// Retry policy for training trials. Transient failures (kUnavailable,
  /// kDeadlineExceeded) re-run the trial after seeded-jitter exponential
  /// backoff charged to *simulated* time; other codes fail the trial
  /// permanently. max_attempts=1 (default) never retries.
  RetryPolicy trial_retry;

  /// Failure budget: abort the run with the aggregated error once more than
  /// this fraction of executed trials failed permanently. The default 1.0
  /// degrades gracefully — the search continues past isolated permanent
  /// failures (they are logged, counted, and excluded from the incumbent)
  /// and only an all-trials-failed run errors out. 0 aborts on the first
  /// failed trial.
  double max_trial_failure_fraction = 1.0;

  DeviceProfile train_device;  // defaults to the Titan server
  DeviceProfile edge_device;   // defaults to the Raspberry Pi 3 B+
  /// Additional edge devices to produce deployment recommendations for
  /// (§1: "the tuned model might be deployed across different edge
  /// devices"). Filled into TuningReport::per_device for the winning
  /// architecture.
  std::vector<DeviceProfile> extra_edge_devices;

  /// Kernel-routine tuning (DESIGN §5.6): after the search picks its
  /// winner, profile the registered GEMM routines per (edge device, shape
  /// class) and DP-assign one routine per op of the winning architecture at
  /// the recommended inference batch. Deterministic (analytic timings, pure
  /// in the device profile), so repeated runs at any trial_workers count
  /// report the identical assignment. Off (default) adds nothing to the
  /// report — byte-identical to builds without the routine layer.
  bool routine_tuning = false;
  /// Optional RoutineProfileStore path (--routine-profile): profiled
  /// timings persist across runs with the HistoricalCache discipline.
  std::string routine_profile_path;

  /// Write-ahead trial journal (DESIGN §5.9). When set, every committed
  /// trial is appended to this file BEFORE its accounting is applied, so a
  /// crashed or killed run can be resumed exactly. Incompatible with fleet
  /// execution and with persistent/shared historical caches: a crashed
  /// run's cache mutations would leak into the resumed run's measurements
  /// and break the byte-parity guarantee.
  std::string journal_path;
  /// Resume from the existing journal at journal_path: already-journaled
  /// trials are replayed instead of re-measured (the header's options
  /// fingerprint and seed must match), only the missing tail is measured,
  /// and the final report is byte-identical to the uninterrupted run's.
  bool resume = false;

  InferenceServerOptions inference;
  TrialRunnerOptions runner;

  /// When set, trial measurements are dispatched to this coordinator's
  /// remote fleet workers instead of local pool threads (DESIGN §5.5). All
  /// accounting still happens here, on the search thread: measurements are
  /// content-pure, so a fleet run's report is byte-identical to the local
  /// serial run. `trial_workers` keeps its meaning as the SIMULATED
  /// worker count used for wall-clock accounting — real fleet size never
  /// leaks into the report.
  std::shared_ptr<FleetCoordinator> fleet;

  std::uint64_t seed = 1;

  EdgeTuneOptions();
};

/// The raw, content-pure result of measuring one trial: everything the
/// batch-commit accounting walk needs, nothing it decides. Produced on the
/// search thread (serial), a local pool thread, or a remote fleet worker —
/// identical for identical (options, request) wherever and whenever it ran,
/// which is what lets one authority (the coordinator / search thread) own
/// all cost accounting (DESIGN §5.5).
struct TrialMeasurement {
  Status setup_status;  // budget-policy / architecture derivation failure
  std::string arch_id;  // empty iff setup failed
  Status train_status;  // final training outcome after retries
  int attempts = 1;
  double retry_backoff_s = 0;
  TrialOutcome outcome;  // valid iff train_status is OK
  /// Inference tuning was requested (inference_aware and setup succeeded).
  bool inference_attempted = false;
  Status inference_status;      // flight outcome (meaningful iff attempted)
  InferenceRecommendation rec;  // raw observation, valid iff status is OK
};

/// One line of the tuning log (feeds Fig 12's per-trial series). Failed
/// trials are first-class entries: status carries the final error, attempts
/// and retry_backoff_s record what the retry layer spent before giving up.
struct TrialLog {
  int id = 0;
  Config config;
  double resource = 0;
  TrialBudget budget;
  double accuracy = 0;
  double duration_s = 0;   // simulated training-trial duration
  double energy_j = 0;     // simulated training-trial energy
  double objective = 0;
  bool inference_cached = false;
  double inference_tuning_s = 0;  // inference-server time for this trial
  double inference_stall_s = 0;   // time the model server waited (Fig 6)
  Status status;                  // OK, or why the trial failed permanently
  int attempts = 1;               // executions incl. retries (>= 1)
  double retry_backoff_s = 0;     // simulated backoff charged between them

  [[nodiscard]] bool failed() const noexcept { return !status.is_ok(); }
};

struct TuningReport {
  std::string system;  // "edgetune", "tune", "hyperpower", "hierarchical"
  Config best_config;
  double best_accuracy = 0;
  double best_objective = std::numeric_limits<double>::infinity();
  InferenceRecommendation inference;  // recommendation for the winning arch
  /// Winning-architecture recommendations for extra edge devices, by name.
  std::map<std::string, InferenceRecommendation> per_device;
  double tuning_runtime_s = 0;  // simulated wall time of the whole job
  double tuning_energy_j = 0;   // simulated energy of the whole job
  std::vector<TrialLog> trials;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;

  /// Kernel-routine assignment for the winning architecture on the edge
  /// device (DESIGN §5.6). Populated — and serialized — only when
  /// EdgeTuneOptions::routine_tuning was set, so routine-less reports stay
  /// byte-identical with older builds.
  bool routines_enabled = false;
  RoutineAssignment routines;

  // Reliability accounting (DESIGN §5.4). All zero/OK on a clean run, and
  // then omitted from the serialized report so clean reports stay
  // byte-identical with pre-reliability builds.
  std::int64_t failed_trials = 0;   // permanently failed (logged) trials
  std::int64_t retried_trials = 0;  // trials that needed > 1 attempt
  double retry_backoff_s = 0;       // total simulated backoff charged
  Status first_error;               // first trial failure seen, if any
};

/// The canonical form EdgeTune's constructor works from: the runner
/// inherits the workload/train-device/seed, and a single --inject-fault
/// plan is mirrored to the inference server unless it has its own.
/// Idempotent — journal_fingerprint canonicalizes through this too, so raw
/// and constructor-normalized options fingerprint identically.
EdgeTuneOptions normalize_options(EdgeTuneOptions options);

class EdgeTune {
 public:
  explicit EdgeTune(EdgeTuneOptions options);
  ~EdgeTune();  // out of line: TrialJournal is incomplete here

  /// Runs the complete tuning job (Alg. 1).
  [[nodiscard]] Result<TuningReport> run();

  /// Measures one trial: the retried training run plus the pipelined
  /// inference-tuning request, with NO accounting decisions. Thread-safe and
  /// content-pure — the result depends only on the constructor options and
  /// the request, never on scheduling — so local pool threads and remote
  /// fleet workers are interchangeable. run() folds measurements into the
  /// report in a single-threaded commit walk.
  [[nodiscard]] TrialMeasurement measure_one(const EvalRequest& request);

  /// The onefold model-server search space for this workload (§5.1 ranges).
  [[nodiscard]] SearchSpace model_search_space() const;

  [[nodiscard]] const EdgeTuneOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] InferenceTuningServer& inference_server() noexcept {
    return inference_server_;
  }

  /// Journal accounting, valid after run() with journal_path set. Replayed
  /// counts trials served from the journal; measured counts trials freshly
  /// measured AND committed this run — so a resume after a crash at commit
  /// k of T reports replayed == k and measured == T - k (eagerly-measured-
  /// but-discarded parallel trials are excluded: committed work is the
  /// scheduling-independent quantity).
  [[nodiscard]] std::size_t journal_replayed() const noexcept {
    return journal_replayed_;
  }
  [[nodiscard]] std::size_t journal_measured() const noexcept {
    return journal_measured_;
  }
  /// Best-effort journal degradations (counted and warned, never fatal).
  [[nodiscard]] std::size_t journal_append_failures() const noexcept {
    return journal_append_failures_;
  }
  [[nodiscard]] std::size_t journal_fsync_failures() const noexcept;

 private:
  EdgeTuneOptions options_;
  FaultInjector fault_injector_;  // fires at trial.train
  TrialRunner runner_;
  InferenceTuningServer inference_server_;

  // Journal/resume state, owned by run()'s single-threaded commit walk.
  std::unique_ptr<TrialJournal> journal_;
  std::vector<JournalRecord> replay_;
  std::size_t replay_cursor_ = 0;
  std::size_t journal_replayed_ = 0;
  std::size_t journal_measured_ = 0;
  std::size_t journal_append_failures_ = 0;
  Status journal_error_;
  bool journal_disabled_ = false;
  bool interrupted_ = false;
};

/// Per-workload model-hyperparameter spec (§5.1): layers / embed dim /
/// stride / dropout, exposed for reuse by benches and the hierarchical tuner.
ParamSpec workload_model_hparam_spec(WorkloadKind kind);

}  // namespace edgetune
