// The routine registry and the non-blocked (loop-nest) routines. The
// blocked engine itself lives in gemm.cpp; this TU owns the catalogue the
// routine tuner (src/tuning/routine_tuner.*) selects from and the
// process-wide "current routine" knob behind gemm()'s dispatch.
//
// Determinism: the naive kernels here follow the same per-layout contract as
// the blocked engine — kNN/kTN one std::fmaf per product in ascending-k
// order, kNT rounded products with a fused k % 4 tail (that body lives in
// gemm_routines_unfused.cpp, compiled -ffp-contract=off). Epilogues are
// applied as a post-pass over the finished accumulator, which is bitwise
// equal to the blocked engine's fused final-k-block store: in both cases
// bias is a single float add after the complete dot product.
#include "tensor/gemm.hpp"

#include <atomic>
#include <cassert>
#include <cmath>

namespace edgetune {

namespace detail {
// gemm_routines_unfused.cpp (-ffp-contract=off): the kNT loop nest.
void naive_gemm_nt_unfused(std::int64_t m, std::int64_t n, std::int64_t k,
                           const float* a, const float* b, float* c,
                           bool accumulate);
}  // namespace detail

namespace {

std::atomic<int> g_current_routine{static_cast<int>(GemmRoutineId::kBlocked)};

/// Bias/scatter post-pass over a finished [m, n] result — the unfused
/// equivalent of the blocked engine's store_tile epilogue path.
void apply_epilogue(const float* c, std::int64_t m, std::int64_t n,
                    const GemmEpilogue& epi) {
  const float* bias = epi.bias;
  if (epi.scatter_spatial > 0) {
    const std::int64_t spatial = epi.scatter_spatial;
    for (std::int64_t r = 0; r < m; ++r) {
      const std::int64_t batch = r / spatial;
      const std::int64_t p = r - batch * spatial;
      float* base = epi.out + batch * n * spatial + p;
      const float* row = c + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        base[j * spatial] = bias ? row[j] + bias[j] : row[j];
      }
    }
    return;
  }
  float* out = epi.out ? epi.out : const_cast<float*>(c);
  for (std::int64_t r = 0; r < m; ++r) {
    const float* row = c + r * n;
    float* dst = out + r * n;
    for (std::int64_t j = 0; j < n; ++j) {
      dst[j] = bias ? row[j] + bias[j] : row[j];
    }
  }
}

}  // namespace

namespace detail {

// The pre-substrate loop nest, minus the old zero-skip branch (removed in
// PR 2; it broke vectorization and made dense/sparse inputs diverge in
// speed). ikj order keeps the j loop contiguous, so GCC turns the fmaf row
// update into broadcast-FMA vectors — for L1/L2-resident shapes this is the
// blocked microkernel without any packing overhead, which is exactly the
// regime where the routine tuner picks it.
void naive_gemm(GemmLayout layout, std::int64_t m, std::int64_t n,
                std::int64_t k, const float* a, const float* b, float* c,
                bool accumulate, const GemmEpilogue* epilogue) {
  if (layout == GemmLayout::kNT) {
    detail::naive_gemm_nt_unfused(m, n, k, a, b, c, accumulate);
  } else {
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      if (!accumulate) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
      }
      for (std::int64_t kk = 0; kk < k; ++kk) {
        // kTN stores A as [k, m]; kNN as [m, k].
        const float av =
            layout == GemmLayout::kTN ? a[kk * m + i] : a[i * k + kk];
        const float* brow = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] = std::fmaf(av, brow[j], crow[j]);
        }
      }
    }
  }
  if (epilogue != nullptr) apply_epilogue(c, m, n, *epilogue);
}

}  // namespace detail

const std::vector<GemmRoutineInfo>& gemm_routine_registry() {
  // Index must equal static_cast<int>(id): gemm_with_routine() and the
  // routine tuner index straight into this table. Tiling kc values are all
  // multiples of 4 (kNT fused-tail invariant, asserted in blocked_gemm).
  static const std::vector<GemmRoutineInfo> kRegistry = {
      {GemmRoutineId::kBlocked, "blocked", "tile64", GemmThreadMode::kAuto, 8,
       {64, 256, 1024},
       "MR8xNR16 microtile, MC64/KC256/NC1024, FLOP-gated threading "
       "(the pre-registry substrate; default)"},
      {GemmRoutineId::kNaiveIkj, "naive", "rowmajor", GemmThreadMode::kNever,
       1, {0, 0, 0},
       "ikj loop nest, no packing or tiling; wins when operands sit in L1/L2"},
      {GemmRoutineId::kBlockedThreads, "blocked_mt", "tile64",
       GemmThreadMode::kAlways, 8, {64, 256, 1024},
       "blocked tiles, intra-op pool for every multi-row-block GEMM"},
      {GemmRoutineId::kBlockedThreadsCutoff, "blocked_mt_cutoff", "tile64",
       GemmThreadMode::kCutoff, 8, {64, 256, 1024},
       "blocked_mt with a small-shape cutoff: inline below "
       "kGemmSmallShapeCells output cells"},
      {GemmRoutineId::kBlockedSmallL2, "blocked_l2small", "tile32",
       GemmThreadMode::kAuto, 8, {32, 128, 512},
       "MC32/KC128/NC512: A block ~16 KB for small-L2 devices"},
      {GemmRoutineId::kBlockedLargeL2, "blocked_l2large", "tile256",
       GemmThreadMode::kAuto, 8, {256, 512, 4096},
       "MC256/KC512/NC4096: A block ~512 KB, fewer scratch passes at large k"},
      {GemmRoutineId::kBlockedWide, "blocked_wide", "tile128w",
       GemmThreadMode::kAuto, 16, {128, 256, 1024},
       "MR16xNR16 microtile, MC128: 16 broadcast-FMAs per B load on "
       "compute-bound shapes"},
  };
  return kRegistry;
}

const GemmRoutineInfo* find_gemm_routine(const std::string& name) {
  for (const GemmRoutineInfo& info : gemm_routine_registry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

GemmRoutineId current_gemm_routine() noexcept {
  return static_cast<GemmRoutineId>(
      g_current_routine.load(std::memory_order_relaxed));
}

void set_gemm_routine(GemmRoutineId id) {
  assert(static_cast<std::size_t>(id) < gemm_routine_registry().size());
  g_current_routine.store(static_cast<int>(id), std::memory_order_relaxed);
}

}  // namespace edgetune
