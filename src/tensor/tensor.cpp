#include "tensor/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/strings.hpp"

namespace edgetune {

std::int64_t shape_numel(const Shape& shape) noexcept {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill_value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill_value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) {
    t.data_[static_cast<std::size_t>(i)] = static_cast<float>(i);
  }
  return t;
}

Result<Tensor> Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    return Status::invalid_argument(
        "reshape " + shape_to_string(shape_) + " -> " +
        shape_to_string(new_shape) + ": element count mismatch");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_inplace(const Tensor& other) {
  assert(numel() == other.numel());
  const float* src = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += src[i];
}

void Tensor::scale_inplace(float factor) noexcept {
  for (auto& v : data_) v *= factor;
}

void Tensor::axpy_inplace(float a, const Tensor& other, float b) {
  assert(numel() == other.numel());
  const float* src = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = data_[i] * a + src[i] * b;
  }
}

float Tensor::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::max() const noexcept {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const noexcept {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f
                       : sum() / static_cast<float>(data_.size());
}

float Tensor::norm() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::string Tensor::to_string(std::int64_t max_items) const {
  std::string out = "Tensor" + shape_to_string(shape_) + " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_items);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i != 0) out += ", ";
    out += format_double(data_[static_cast<std::size_t>(i)], 4);
  }
  if (numel() > n) out += ", ...";
  out += "}";
  return out;
}

}  // namespace edgetune
