// Dense kernels: GEMM (with transpose variants for backprop), im2col-based
// convolutions, pooling, and row softmax. These are the computational
// substrate the src/nn layers are built on.
#pragma once

#include "tensor/tensor.hpp"

namespace edgetune {

// --- GEMM ------------------------------------------------------------------
// All matrices are row-major 2-d tensors. Shapes are asserted in debug
// builds; callers guarantee conformability (internal API). All three are
// thin wrappers over the blocked kernel in tensor/gemm.hpp; dense and
// sparse-ish operands take the identical code path (no data-dependent
// branches), and results are bitwise identical to an ascending-k naive loop.

/// C = A[m,k] * B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T[k,m] * B[k,n]  (A stored as [k,m])
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A[m,k] * B^T[n,k]  (B stored as [n,k])
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// --- Convolution lowering ---------------------------------------------------

struct Conv2dGeometry {
  std::int64_t in_channels = 0, in_h = 0, in_w = 0;
  std::int64_t kernel = 0, stride = 1, padding = 0;
  [[nodiscard]] std::int64_t out_h() const noexcept {
    return (in_h + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const noexcept {
    return (in_w + 2 * padding - kernel) / stride + 1;
  }
};

/// Lowers input [N, C, H, W] to columns [N*outH*outW, C*k*k].
Tensor im2col(const Tensor& input, const Conv2dGeometry& geo);
/// Same, writing into a caller-provided buffer (workspace-arena variant).
void im2col_into(const Tensor& input, const Conv2dGeometry& geo, float* cols);
/// Adjoint of im2col: accumulates columns back into [N, C, H, W].
Tensor col2im(const Tensor& cols, std::int64_t batch,
              const Conv2dGeometry& geo);
/// Raw-pointer variant reading columns from a workspace buffer.
Tensor col2im(const float* cols, std::int64_t batch,
              const Conv2dGeometry& geo);

struct Conv1dGeometry {
  std::int64_t in_channels = 0, in_len = 0;
  std::int64_t kernel = 0, stride = 1, padding = 0;
  [[nodiscard]] std::int64_t out_len() const noexcept {
    return (in_len + 2 * padding - kernel) / stride + 1;
  }
};

/// Lowers input [N, C, L] to columns [N*outL, C*k].
Tensor im2col_1d(const Tensor& input, const Conv1dGeometry& geo);
void im2col_1d_into(const Tensor& input, const Conv1dGeometry& geo,
                    float* cols);
Tensor col2im_1d(const Tensor& cols, std::int64_t batch,
                 const Conv1dGeometry& geo);
Tensor col2im_1d(const float* cols, std::int64_t batch,
                 const Conv1dGeometry& geo);

// --- Pooling -----------------------------------------------------------------

struct PoolResult {
  Tensor output;
  /// For max pooling: flat input index of each selected maximum, used by the
  /// backward pass. Empty for average pooling.
  std::vector<std::int64_t> argmax;
};

/// Max pool on [N, C, H, W] with square window `kernel` and given stride.
PoolResult maxpool2d(const Tensor& input, std::int64_t kernel,
                     std::int64_t stride);
Tensor maxpool2d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape);

/// Average over all spatial positions: [N, C, H, W] -> [N, C].
Tensor global_avg_pool(const Tensor& input);
Tensor global_avg_pool_backward(const Tensor& grad_out,
                                const Shape& input_shape);

/// Max pool on [N, C, L] (1-d, for audio models).
PoolResult maxpool1d(const Tensor& input, std::int64_t kernel,
                     std::int64_t stride);
Tensor maxpool1d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape);

// --- Row-wise softmax --------------------------------------------------------

/// Numerically-stable softmax over the last dimension of a 2-d tensor.
Tensor softmax_rows(const Tensor& logits);
/// log-softmax over rows.
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace edgetune
