// Blocked GEMM core: the single compute kernel behind matmul/matmul_tn/
// matmul_nt and the im2col convolutions. Cache-tiled (MC/KC/NC) with a
// register-blocked MR x NR microkernel, packed A/B panels, an optional fused
// epilogue (bias add + NCHW scatter), and intra-op parallelism over row
// blocks of C.
//
// Determinism contract: every output element is accumulated in ascending-k
// order, exactly like the naive reference loops it replaced — kNN/kTN with
// one fused multiply-add per product, kNT with each product rounded to float
// before the add except the final k % 4 depth steps, which contract to fused
// multiply-adds (the exact form the old scalar-reduction matmul_nt compiled
// to: vectorized rounded body, contracted scalar epilogue; see
// gemm_unfused.cpp). Parallelism partitions C by rows (no split-K
// reduction), so results are bitwise identical at any `intra_op_threads`
// setting.
#pragma once

#include "tensor/tensor.hpp"

namespace edgetune {

// --- Intra-op threading knob -------------------------------------------------
// Process-wide worker count for a single GEMM (1 = fully inline, the
// default; keeps same-seed determinism tooling and TSan baselines quiet).
// Interacts with `EdgeTuneOptions::trial_workers`: total oversubscription is
// trial_workers x intra_op_threads, see README "Kernel substrate".

/// Current intra-op worker count (>= 1).
[[nodiscard]] int intra_op_threads() noexcept;
/// Sets the intra-op worker count (clamped to >= 1). Takes effect at the
/// next large-enough GEMM; safe to call while other threads run GEMMs.
void set_intra_op_threads(int n);

// --- Core --------------------------------------------------------------------

/// Operand storage for C = op(A) . op(B), all row-major:
///   kNN: A is [m,k], B is [k,n]
///   kTN: A is [k,m] (used transposed), B is [k,n]
///   kNT: A is [m,k], B is [n,k] (used transposed)
enum class GemmLayout { kNN, kTN, kNT };

/// Fused output transform, applied exactly once per element on the final
/// k-block pass (so bias is added after the full dot product, matching a
/// separate post-pass bitwise).
struct GemmEpilogue {
  /// If non-null: length-n vector added to every output row.
  const float* bias = nullptr;
  /// Final destination. If null, the epilogue writes into `c`.
  float* out = nullptr;
  /// If > 0, rows are interpreted as r = b*spatial + p and element (r, j) is
  /// written to out[(b*n + j)*spatial + p] — the [rows, n] -> [batch, n,
  /// spatial] transpose the conv layers need, fused into the GEMM store.
  std::int64_t scatter_spatial = 0;
};

/// C = op(A) . op(B) (+ C when `accumulate`), optionally routed through an
/// epilogue. `c` must hold m*n floats; when k exceeds one cache block it is
/// used as the accumulation scratch even if the epilogue redirects the final
/// store. With accumulate=false its initial contents are ignored.
void gemm(GemmLayout layout, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate = false,
          const GemmEpilogue* epilogue = nullptr);

}  // namespace edgetune
