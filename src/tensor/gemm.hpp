// GEMM routine layer: the compute kernels behind matmul/matmul_tn/matmul_nt
// and the im2col convolutions. Since PR 7 the kernel is not one fixed code
// path but a REGISTRY of routines — the SoftNeuro idea that the routine per
// op is itself a tunable. Every routine implements the same contract behind
// one dispatch point (`gemm`): cache-tiled blocked variants (MC/KC/NC and
// microtile geometry differ), loop-nest variants, and threading variants.
//
// Determinism contract, PER ROUTINE: every output element is accumulated in
// ascending-k order, exactly like the naive reference loops the substrate
// replaced — kNN/kTN with one fused multiply-add per product, kNT with each
// product rounded to float before the add except the final k % 4 depth
// steps, which contract to fused multiply-adds (the exact form the old
// scalar-reduction matmul_nt compiled to; see gemm_unfused.cpp /
// gemm_routines_unfused.cpp). Parallel routines partition C by rows (no
// split-K reduction), so each routine's results are bitwise identical at any
// `intra_op_threads` setting. Because every registered routine honours the
// same per-layout contract, they all coincide bit-for-bit (tested): routine
// selection changes speed, never results.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace edgetune {

// --- Intra-op threading knob -------------------------------------------------
// Process-wide worker count for a single GEMM (1 = fully inline, the
// default; keeps same-seed determinism tooling and TSan baselines quiet).
// Interacts with `EdgeTuneOptions::trial_workers`: total oversubscription is
// trial_workers x intra_op_threads, see README "Kernel substrate".

/// Current intra-op worker count (>= 1).
[[nodiscard]] int intra_op_threads() noexcept;
/// Sets the intra-op worker count (clamped to >= 1). Takes effect at the
/// next large-enough GEMM; safe to call while other threads run GEMMs.
void set_intra_op_threads(int n);

// --- Core --------------------------------------------------------------------

/// Operand storage for C = op(A) . op(B), all row-major:
///   kNN: A is [m,k], B is [k,n]
///   kTN: A is [k,m] (used transposed), B is [k,n]
///   kNT: A is [m,k], B is [n,k] (used transposed)
enum class GemmLayout { kNN, kTN, kNT };

/// Fused output transform, applied exactly once per element on the final
/// k-block pass (so bias is added after the full dot product, matching a
/// separate post-pass bitwise).
struct GemmEpilogue {
  /// If non-null: length-n vector added to every output row.
  const float* bias = nullptr;
  /// Final destination. If null, the epilogue writes into `c`.
  float* out = nullptr;
  /// If > 0, rows are interpreted as r = b*spatial + p and element (r, j) is
  /// written to out[(b*n + j)*spatial + p] — the [rows, n] -> [batch, n,
  /// spatial] transpose the conv layers need, fused into the GEMM store.
  std::int64_t scatter_spatial = 0;
};

/// C = op(A) . op(B) (+ C when `accumulate`), optionally routed through an
/// epilogue. `c` must hold m*n floats; when k exceeds one cache block it is
/// used as the accumulation scratch even if the epilogue redirects the final
/// store. With accumulate=false its initial contents are ignored.
///
/// THE dispatch point of the routine layer: executes the process-wide
/// current routine (default kBlocked, bit- and behaviour-identical to the
/// pre-registry substrate). matmul/matmul_tn/matmul_nt and the conv/linear/
/// RNN lowering in src/nn all funnel through here, so one set_gemm_routine()
/// call retargets the whole network.
void gemm(GemmLayout layout, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate = false,
          const GemmEpilogue* epilogue = nullptr);

// --- Routine registry --------------------------------------------------------

/// Identifiers are stable across releases (profiles persist them by name,
/// not by index). kBlocked is the default and reproduces the pre-registry
/// substrate exactly.
enum class GemmRoutineId : int {
  kBlocked = 0,          // MR8xNR16 microtile, MC64/KC256/NC1024, auto-thread
  kNaiveIkj = 1,         // loop nest, no packing, single-threaded
  kBlockedThreads = 2,   // blocked tiles, pool for every multi-row-block GEMM
  kBlockedThreadsCutoff = 3,  // ...but single-threaded below a rows*cols cutoff
  kBlockedSmallL2 = 4,   // MC32/KC128/NC512: A block sized for ~small L2
  kBlockedLargeL2 = 5,   // MC256/KC512/NC4096: A block sized for large L2
  kBlockedWide = 6,      // MR16xNR16 microtile, MC128: compute-dense packing
};

/// How a routine decides to use the intra-op pool (the pool itself only
/// exists when intra_op_threads > 1; every mode is inline at 1 thread).
enum class GemmThreadMode {
  kNever,   // always inline
  kAuto,    // m > mc and 2mnk >= a FLOP floor (the historical default gate)
  kAlways,  // m > mc — pays fork/join overhead even for tiny panels
  kCutoff,  // m > mc and m*n >= kGemmSmallShapeCells (see below)
};

/// Cache blocking in floats: an MC x KC A block should sit in L2, a KC x NR
/// B sliver in L1, an NC-wide B panel in L3. kc must be a multiple of 4 so
/// the kNT fused tail stays in the final k-block (see gemm_unfused.cpp).
struct GemmTiling {
  std::int64_t mc = 0;
  std::int64_t kc = 0;
  std::int64_t nc = 0;
};

/// Below this many output cells (m*n), GemmThreadMode::kCutoff routines run
/// inline: fork/join on the intra-op pool costs more than the kernel (the
/// Threads4 regression rows in BENCH_kernels.json).
inline constexpr std::int64_t kGemmSmallShapeCells = 32768;

/// Static description of one registered routine. `layout` tags the
/// activation layout the routine consumes/produces in the SIMULATED
/// deployment model ("rowmajor", "tile64", ...): the routine tuner's DP
/// charges a conversion edge cost when adjacent ops pick routines with
/// different tags (DESIGN §5.6). The local executable kernels all take
/// row-major operands — the tag prices the layout a real blocked deployment
/// would keep between ops.
struct GemmRoutineInfo {
  GemmRoutineId id = GemmRoutineId::kBlocked;
  const char* name = "";    // stable key used in profiles and reports
  const char* layout = "";  // activation-layout tag for DP edge costs
  GemmThreadMode threads = GemmThreadMode::kNever;
  int microtile_rows = 8;   // MR (microtile cols are always 16)
  GemmTiling tiling;        // {0,0,0} for non-blocked routines
  const char* summary = "";
};

/// All registered routines, ordered by id (index == static_cast<int>(id)).
[[nodiscard]] const std::vector<GemmRoutineInfo>& gemm_routine_registry();

/// Lookup by stable name ("blocked", "naive", ...); nullptr when unknown.
[[nodiscard]] const GemmRoutineInfo* find_gemm_routine(
    const std::string& name);

/// Process-wide routine executed by gemm() (default GemmRoutineId::kBlocked).
/// Like set_intra_op_threads this is a process-wide knob: safe to call while
/// other threads run GEMMs (they finish under whichever routine they read),
/// but determinism tooling should set it once up front.
[[nodiscard]] GemmRoutineId current_gemm_routine() noexcept;
void set_gemm_routine(GemmRoutineId id);

/// Runs one GEMM under an explicit routine, ignoring the process-wide
/// selection — the routine profiler's measurement hook.
void gemm_with_routine(GemmRoutineId routine, GemmLayout layout,
                       std::int64_t m, std::int64_t n, std::int64_t k,
                       const float* a, const float* b, float* c,
                       bool accumulate = false,
                       const GemmEpilogue* epilogue = nullptr);

/// Times the intra-op pool was actually engaged by a GEMM (fork/join
/// happened). Monotonic process-wide counter; lets tests observe the
/// small-shape cutoff without timing anything.
[[nodiscard]] std::size_t gemm_pool_dispatches() noexcept;

}  // namespace edgetune
