#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"

namespace edgetune {

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0));
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm(GemmLayout::kTN, m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  gemm(GemmLayout::kNT, m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor im2col(const Tensor& input, const Conv2dGeometry& geo) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t patch = geo.in_channels * geo.kernel * geo.kernel;
  Tensor cols({batch * geo.out_h() * geo.out_w(), patch});
  im2col_into(input, geo, cols.data());
  return cols;
}

void im2col_into(const Tensor& input, const Conv2dGeometry& geo,
                 float* cols) {
  assert(input.rank() == 4);
  const std::int64_t batch = input.dim(0);
  const std::int64_t c_in = geo.in_channels, h = geo.in_h, w = geo.in_w;
  assert(input.dim(1) == c_in && input.dim(2) == h && input.dim(3) == w);
  const std::int64_t oh = geo.out_h(), ow = geo.out_w();
  const std::int64_t patch = c_in * geo.kernel * geo.kernel;
  const float* src = input.data();
  float* dst = cols;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* img = src + n * c_in * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float* col = dst + ((n * oh + oy) * ow + ox) * patch;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < c_in; ++c) {
          const float* plane = img + c * h * w;
          for (std::int64_t ky = 0; ky < geo.kernel; ++ky) {
            const std::int64_t iy = oy * geo.stride + ky - geo.padding;
            for (std::int64_t kx = 0; kx < geo.kernel; ++kx) {
              const std::int64_t ix = ox * geo.stride + kx - geo.padding;
              col[idx++] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                               ? plane[iy * w + ix]
                               : 0.0f;
            }
          }
        }
      }
    }
  }
}

Tensor col2im(const Tensor& cols, std::int64_t batch,
              const Conv2dGeometry& geo) {
  assert(cols.rank() == 2 &&
         cols.dim(0) == batch * geo.out_h() * geo.out_w() &&
         cols.dim(1) == geo.in_channels * geo.kernel * geo.kernel);
  return col2im(cols.data(), batch, geo);
}

Tensor col2im(const float* cols, std::int64_t batch,
              const Conv2dGeometry& geo) {
  const std::int64_t c_in = geo.in_channels, h = geo.in_h, w = geo.in_w;
  const std::int64_t oh = geo.out_h(), ow = geo.out_w();
  const std::int64_t patch = c_in * geo.kernel * geo.kernel;
  Tensor out({batch, c_in, h, w});
  const float* src = cols;
  float* dst = out.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    float* img = dst + n * c_in * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float* col = src + ((n * oh + oy) * ow + ox) * patch;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < c_in; ++c) {
          float* plane = img + c * h * w;
          for (std::int64_t ky = 0; ky < geo.kernel; ++ky) {
            const std::int64_t iy = oy * geo.stride + ky - geo.padding;
            for (std::int64_t kx = 0; kx < geo.kernel; ++kx) {
              const std::int64_t ix = ox * geo.stride + kx - geo.padding;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[iy * w + ix] += col[idx];
              }
              ++idx;
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor im2col_1d(const Tensor& input, const Conv1dGeometry& geo) {
  const std::int64_t batch = input.dim(0);
  Tensor cols({batch * geo.out_len(), geo.in_channels * geo.kernel});
  im2col_1d_into(input, geo, cols.data());
  return cols;
}

void im2col_1d_into(const Tensor& input, const Conv1dGeometry& geo,
                    float* cols) {
  assert(input.rank() == 3);
  const std::int64_t batch = input.dim(0);
  const std::int64_t c_in = geo.in_channels, len = geo.in_len;
  assert(input.dim(1) == c_in && input.dim(2) == len);
  const std::int64_t olen = geo.out_len();
  const std::int64_t patch = c_in * geo.kernel;
  const float* src = input.data();
  float* dst = cols;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* sig = src + n * c_in * len;
    for (std::int64_t o = 0; o < olen; ++o) {
      float* col = dst + (n * olen + o) * patch;
      std::int64_t idx = 0;
      for (std::int64_t c = 0; c < c_in; ++c) {
        const float* chan = sig + c * len;
        for (std::int64_t k = 0; k < geo.kernel; ++k) {
          const std::int64_t i = o * geo.stride + k - geo.padding;
          col[idx++] = (i >= 0 && i < len) ? chan[i] : 0.0f;
        }
      }
    }
  }
}

Tensor col2im_1d(const Tensor& cols, std::int64_t batch,
                 const Conv1dGeometry& geo) {
  assert(cols.rank() == 2 && cols.dim(0) == batch * geo.out_len() &&
         cols.dim(1) == geo.in_channels * geo.kernel);
  return col2im_1d(cols.data(), batch, geo);
}

Tensor col2im_1d(const float* cols, std::int64_t batch,
                 const Conv1dGeometry& geo) {
  const std::int64_t c_in = geo.in_channels, len = geo.in_len;
  const std::int64_t olen = geo.out_len();
  const std::int64_t patch = c_in * geo.kernel;
  Tensor out({batch, c_in, len});
  const float* src = cols;
  float* dst = out.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    float* sig = dst + n * c_in * len;
    for (std::int64_t o = 0; o < olen; ++o) {
      const float* col = src + (n * olen + o) * patch;
      std::int64_t idx = 0;
      for (std::int64_t c = 0; c < c_in; ++c) {
        float* chan = sig + c * len;
        for (std::int64_t k = 0; k < geo.kernel; ++k) {
          const std::int64_t i = o * geo.stride + k - geo.padding;
          if (i >= 0 && i < len) chan[i] += col[idx];
          ++idx;
        }
      }
    }
  }
  return out;
}

PoolResult maxpool2d(const Tensor& input, std::int64_t kernel,
                     std::int64_t stride) {
  assert(input.rank() == 4);
  const std::int64_t batch = input.dim(0), ch = input.dim(1),
                     h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  PoolResult result;
  result.output = Tensor({batch, ch, oh, ow});
  result.argmax.resize(
      static_cast<std::size_t>(batch * ch * oh * ow));
  const float* src = input.data();
  float* dst = result.output.data();
  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float* plane = src + (n * ch + c) * h * w;
      const std::int64_t plane_off = (n * ch + c) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = oy * stride + ky;
              const std::int64_t ix = ox * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          dst[out_idx] = best;
          result.argmax[static_cast<std::size_t>(out_idx)] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return result;
}

Tensor maxpool2d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape) {
  Tensor grad_in(input_shape);
  const float* g = grad_out.data();
  float* dst = grad_in.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    dst[argmax[i]] += g[i];
  }
  return grad_in;
}

Tensor global_avg_pool(const Tensor& input) {
  assert(input.rank() == 4);
  const std::int64_t batch = input.dim(0), ch = input.dim(1),
                     spatial = input.dim(2) * input.dim(3);
  Tensor out({batch, ch});
  const float* src = input.data();
  float* dst = out.data();
  const float inv = 1.0f / static_cast<float>(spatial);
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    float acc = 0.0f;
    const float* plane = src + nc * spatial;
    for (std::int64_t i = 0; i < spatial; ++i) acc += plane[i];
    dst[nc] = acc * inv;
  }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_out,
                                const Shape& input_shape) {
  Tensor grad_in(input_shape);
  const std::int64_t batch = input_shape[0], ch = input_shape[1],
                     spatial = input_shape[2] * input_shape[3];
  const float inv = 1.0f / static_cast<float>(spatial);
  const float* g = grad_out.data();
  float* dst = grad_in.data();
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    const float v = g[nc] * inv;
    float* plane = dst + nc * spatial;
    for (std::int64_t i = 0; i < spatial; ++i) plane[i] = v;
  }
  return grad_in;
}

PoolResult maxpool1d(const Tensor& input, std::int64_t kernel,
                     std::int64_t stride) {
  assert(input.rank() == 3);
  const std::int64_t batch = input.dim(0), ch = input.dim(1),
                     len = input.dim(2);
  const std::int64_t olen = (len - kernel) / stride + 1;
  PoolResult result;
  result.output = Tensor({batch, ch, olen});
  result.argmax.resize(static_cast<std::size_t>(batch * ch * olen));
  const float* src = input.data();
  float* dst = result.output.data();
  std::int64_t out_idx = 0;
  for (std::int64_t nc = 0; nc < batch * ch; ++nc) {
    const float* chan = src + nc * len;
    for (std::int64_t o = 0; o < olen; ++o) {
      float best = -std::numeric_limits<float>::infinity();
      std::int64_t best_idx = 0;
      for (std::int64_t k = 0; k < kernel; ++k) {
        const std::int64_t i = o * stride + k;
        if (chan[i] > best) {
          best = chan[i];
          best_idx = nc * len + i;
        }
      }
      dst[out_idx] = best;
      result.argmax[static_cast<std::size_t>(out_idx)] = best_idx;
      ++out_idx;
    }
  }
  return result;
}

Tensor maxpool1d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape) {
  Tensor grad_in(input_shape);
  const float* g = grad_out.data();
  float* dst = grad_in.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    dst[argmax[i]] += g[i];
  }
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  const float* src = logits.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = src + r * cols;
    float* o = dst + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float denom = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = 1.0f / denom;
    for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  const float* src = logits.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = src + r * cols;
    float* o = dst + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float denom = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) denom += std::exp(in[c] - mx);
    const float log_denom = std::log(denom) + mx;
    for (std::int64_t c = 0; c < cols; ++c) o[c] = in[c] - log_denom;
  }
  return out;
}

}  // namespace edgetune
