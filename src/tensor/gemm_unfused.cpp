// Unfused-product microkernel for the kNT layout. This translation unit is
// compiled with -ffp-contract=off (see CMakeLists.txt): each product is
// rounded to float before the ascending-k add, matching what the historical
// matmul_nt reduction loop compiled to. One wrinkle, established by diffing
// against the old binary bit-for-bit: the compiler vectorized that loop with
// 8-wide and 4-wide groups of rounded products but left the final k%4
// elements to a scalar epilogue, which -ffp-contract=fast contracted into
// fused multiply-adds. So the historical semantics are "rounded products for
// the first k - k%4 steps, fused FMAs for the last k%4" — the caller passes
// that tail count in via `fused_tail`. The kNN/kTN microkernel in gemm.cpp
// uses one fused multiply-add per product throughout; see the contract note
// in gemm.hpp.
#include <cmath>
#include <cstdint>

namespace edgetune {
namespace detail {

constexpr std::int64_t kMR = 8;
constexpr std::int64_t kNR = 16;

// Same explicit row-vector layout as gemm.cpp's micro_kernel (see the note
// there: the scalar triple loop vectorizes badly). With contraction off,
// each `c += a * bv` lowers to a separate vector multiply and add — the
// rounding the historical matmul_nt performed on its vectorized body.
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float)),
                                   aligned(alignof(float))));

void micro_kernel_unfused(std::int64_t kc, std::int64_t fused_tail,
                          const float* __restrict__ pa,
                          const float* __restrict__ pb,
                          float* __restrict__ acc) {
  const std::int64_t body = kc - fused_tail;
  VecNR c0 = *reinterpret_cast<const VecNR*>(acc + 0 * kNR);
  VecNR c1 = *reinterpret_cast<const VecNR*>(acc + 1 * kNR);
  VecNR c2 = *reinterpret_cast<const VecNR*>(acc + 2 * kNR);
  VecNR c3 = *reinterpret_cast<const VecNR*>(acc + 3 * kNR);
  VecNR c4 = *reinterpret_cast<const VecNR*>(acc + 4 * kNR);
  VecNR c5 = *reinterpret_cast<const VecNR*>(acc + 5 * kNR);
  VecNR c6 = *reinterpret_cast<const VecNR*>(acc + 6 * kNR);
  VecNR c7 = *reinterpret_cast<const VecNR*>(acc + 7 * kNR);
  for (std::int64_t kk = 0; kk < body; ++kk) {
    const float* a = pa + kk * kMR;
    const VecNR bv = *reinterpret_cast<const VecNR*>(pb + kk * kNR);
    c0 += a[0] * bv;
    c1 += a[1] * bv;
    c2 += a[2] * bv;
    c3 += a[3] * bv;
    c4 += a[4] * bv;
    c5 += a[5] * bv;
    c6 += a[6] * bv;
    c7 += a[7] * bv;
  }
  *reinterpret_cast<VecNR*>(acc + 0 * kNR) = c0;
  *reinterpret_cast<VecNR*>(acc + 1 * kNR) = c1;
  *reinterpret_cast<VecNR*>(acc + 2 * kNR) = c2;
  *reinterpret_cast<VecNR*>(acc + 3 * kNR) = c3;
  *reinterpret_cast<VecNR*>(acc + 4 * kNR) = c4;
  *reinterpret_cast<VecNR*>(acc + 5 * kNR) = c5;
  *reinterpret_cast<VecNR*>(acc + 6 * kNR) = c6;
  *reinterpret_cast<VecNR*>(acc + 7 * kNR) = c7;
  // Fused scalar epilogue: at most 3 depth steps, still ascending-k after
  // the body. std::fmaf keeps the contraction explicit under
  // -ffp-contract=off.
  for (std::int64_t kk = body; kk < kc; ++kk) {
    const float* a = pa + kk * kMR;
    const float* b = pb + kk * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      float* row = acc + r * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) {
        row[j] = std::fmaf(a[r], b[j], row[j]);
      }
    }
  }
}

}  // namespace detail
}  // namespace edgetune
