// Blocked GEMM engine + the routine dispatch point. The engine is one
// implementation parameterized by GemmRoutineInfo (cache tiling, microtile
// rows, thread mode); the registry in gemm_routines.cpp instantiates it as
// several routines, and gemm() executes whichever routine is current. The
// default routine (kBlocked) runs the exact loop structure and constants the
// pre-registry substrate had, so default behaviour is unchanged bit for bit.
#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"

namespace edgetune {

namespace detail {
// Defined in gemm_unfused.cpp, compiled with -ffp-contract=off: rounds each
// product to float before adding, except for the last `fused_tail` (= k % 4
// on the final k-block) depth steps, which use fused multiply-adds — the
// exact order the historical matmul_nt reduction compiled to.
void micro_kernel_unfused(std::int64_t kc, std::int64_t fused_tail,
                          const float* __restrict__ pa,
                          const float* __restrict__ pb,
                          float* __restrict__ acc);
// Same contract for the 16-row microtile; gemm_routines_unfused.cpp.
void micro_kernel_unfused_wide(std::int64_t kc, std::int64_t fused_tail,
                               const float* __restrict__ pa,
                               const float* __restrict__ pb,
                               float* __restrict__ acc);
// Loop-nest routine, gemm_routines.cpp (kNT body in the unfused TU).
void naive_gemm(GemmLayout layout, std::int64_t m, std::int64_t n,
                std::int64_t k, const float* a, const float* b, float* c,
                bool accumulate, const GemmEpilogue* epilogue);
}  // namespace detail

namespace {

// Microtile geometry: MR is a routine parameter (8 or 16 rows), NR is fixed
// at one 16-lane vector. Cache blocking (MC/KC/NC) comes from the routine's
// GemmTiling; for the default routine an MC x KC A-block (~64 KB) sits in
// L2, a KC x NR B-sliver (~16 KB) in L1, an NC-wide B panel in L3.
constexpr std::int64_t kNR = 16;

// Below this many FLOPs (2mnk) the fork/join overhead of the intra-op pool
// outweighs the kernel; run inline (GemmThreadMode::kAuto).
constexpr double kParallelMinFlops = 2e6;

Mutex g_pool_mutex;
int g_intra_op_threads EDGETUNE_GUARDED_BY(g_pool_mutex) = 1;
std::shared_ptr<ThreadPool> g_intra_op_pool EDGETUNE_GUARDED_BY(g_pool_mutex);

std::atomic<std::size_t> g_pool_dispatches{0};

std::shared_ptr<ThreadPool> acquire_pool() EDGETUNE_EXCLUDES(g_pool_mutex) {
  MutexLock lock(g_pool_mutex);
  if (g_intra_op_threads <= 1) return nullptr;
  if (!g_intra_op_pool) {
    g_intra_op_pool =
        std::make_shared<ThreadPool>(static_cast<std::size_t>(g_intra_op_threads));
  }
  return g_intra_op_pool;
}

// Packing scratch. thread_local so pool workers reuse their buffers across
// GEMM calls — zero steady-state heap traffic.
thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

/// Packs an mc x kc block of op(A) starting at logical row i0, depth pc into
/// MR-row slivers laid out [kk*MR + r], zero-padding partial slivers.
template <int MR>
void pack_a(GemmLayout layout, const float* a, std::int64_t m, std::int64_t k,
            std::int64_t i0, std::int64_t pc, std::int64_t mc,
            std::int64_t kc, float* buf) {
  for (std::int64_t ir = 0; ir < mc; ir += MR) {
    const std::int64_t mr = std::min<std::int64_t>(MR, mc - ir);
    float* dst = buf + (ir / MR) * (kc * MR);
    if (layout == GemmLayout::kTN) {
      // A stored [k, m]: a kk-slice of op(A) rows is contiguous in storage.
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (pc + kk) * m + i0 + ir;
        float* d = dst + kk * MR;
        for (std::int64_t r = 0; r < mr; ++r) d[r] = src[r];
        for (std::int64_t r = mr; r < MR; ++r) d[r] = 0.0f;
      }
    } else {  // kNN / kNT: A stored [m, k]
      for (std::int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + ir + r) * k + pc;
        for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * MR + r] = src[kk];
      }
      for (std::int64_t r = mr; r < MR; ++r) {
        for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * MR + r] = 0.0f;
      }
    }
  }
}

/// Packs a kc x nc panel of op(B) starting at depth pc, logical column jc
/// into NR-column slivers laid out [kk*NR + j], zero-padding partial slivers.
void pack_b(GemmLayout layout, const float* b, std::int64_t k, std::int64_t n,
            std::int64_t pc, std::int64_t jc, std::int64_t kc,
            std::int64_t nc, float* buf) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jr);
    float* dst = buf + (jr / kNR) * (kc * kNR);
    if (layout == GemmLayout::kNT) {
      // B stored [n, k]: column j of op(B) is storage row jc+jr+j.
      for (std::int64_t j = 0; j < nr; ++j) {
        const float* src = b + (jc + jr + j) * k + pc;
        for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * kNR + j] = src[kk];
      }
      for (std::int64_t j = nr; j < kNR; ++j) {
        for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * kNR + j] = 0.0f;
      }
    } else {  // kNN / kTN: B stored [k, n]
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = b + (pc + kk) * n + jc + jr;
        float* d = dst + kk * kNR;
        for (std::int64_t j = 0; j < nr; ++j) d[j] = src[j];
        for (std::int64_t j = nr; j < kNR; ++j) d[j] = 0.0f;
      }
    }
  }
}

// One NR-wide vector per accumulator row. Written with GNU vector types
// rather than a scalar triple loop: left to itself GCC vectorizes the scalar
// form across the ROW dimension and spends the inner loop shuffling the
// transposed accumulator tile (vpermt2ps-bound, ~4x slower than the naive
// ikj loop). The explicit row vectors pin the layout: resident vector
// accumulators, one broadcast-FMA per row per depth step, no shuffles.
// Element-wise the operation order is unchanged — still one fused
// multiply-add per product in ascending-k order, so results stay bitwise
// identical to the scalar formulation.
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float)),
                                   aligned(alignof(float))));

/// acc[8][NR] += A-sliver . B-sliver over kc depth steps. One fused
/// multiply-add per product in ascending-k order — the determinism contract
/// for kNN/kTN. The kNT layout routes through micro_kernel_unfused instead.
void micro_kernel(std::int64_t kc, const float* __restrict__ pa,
                  const float* __restrict__ pb, float* __restrict__ acc) {
  VecNR c0 = *reinterpret_cast<const VecNR*>(acc + 0 * kNR);
  VecNR c1 = *reinterpret_cast<const VecNR*>(acc + 1 * kNR);
  VecNR c2 = *reinterpret_cast<const VecNR*>(acc + 2 * kNR);
  VecNR c3 = *reinterpret_cast<const VecNR*>(acc + 3 * kNR);
  VecNR c4 = *reinterpret_cast<const VecNR*>(acc + 4 * kNR);
  VecNR c5 = *reinterpret_cast<const VecNR*>(acc + 5 * kNR);
  VecNR c6 = *reinterpret_cast<const VecNR*>(acc + 6 * kNR);
  VecNR c7 = *reinterpret_cast<const VecNR*>(acc + 7 * kNR);
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* a = pa + kk * 8;
    const VecNR bv = *reinterpret_cast<const VecNR*>(pb + kk * kNR);
    c0 += a[0] * bv;
    c1 += a[1] * bv;
    c2 += a[2] * bv;
    c3 += a[3] * bv;
    c4 += a[4] * bv;
    c5 += a[5] * bv;
    c6 += a[6] * bv;
    c7 += a[7] * bv;
  }
  *reinterpret_cast<VecNR*>(acc + 0 * kNR) = c0;
  *reinterpret_cast<VecNR*>(acc + 1 * kNR) = c1;
  *reinterpret_cast<VecNR*>(acc + 2 * kNR) = c2;
  *reinterpret_cast<VecNR*>(acc + 3 * kNR) = c3;
  *reinterpret_cast<VecNR*>(acc + 4 * kNR) = c4;
  *reinterpret_cast<VecNR*>(acc + 5 * kNR) = c5;
  *reinterpret_cast<VecNR*>(acc + 6 * kNR) = c6;
  *reinterpret_cast<VecNR*>(acc + 7 * kNR) = c7;
}

/// The 16-row variant behind the "blocked_wide" routine: 16 resident vector
/// accumulators means 16 broadcast-FMAs per B-sliver load — double the
/// arithmetic intensity of the 8-row tile on compute-bound shapes. Same
/// explicit-vector style (and same per-element contract) as micro_kernel.
void micro_kernel_wide(std::int64_t kc, const float* __restrict__ pa,
                       const float* __restrict__ pb, float* __restrict__ acc) {
  VecNR c0 = *reinterpret_cast<const VecNR*>(acc + 0 * kNR);
  VecNR c1 = *reinterpret_cast<const VecNR*>(acc + 1 * kNR);
  VecNR c2 = *reinterpret_cast<const VecNR*>(acc + 2 * kNR);
  VecNR c3 = *reinterpret_cast<const VecNR*>(acc + 3 * kNR);
  VecNR c4 = *reinterpret_cast<const VecNR*>(acc + 4 * kNR);
  VecNR c5 = *reinterpret_cast<const VecNR*>(acc + 5 * kNR);
  VecNR c6 = *reinterpret_cast<const VecNR*>(acc + 6 * kNR);
  VecNR c7 = *reinterpret_cast<const VecNR*>(acc + 7 * kNR);
  VecNR c8 = *reinterpret_cast<const VecNR*>(acc + 8 * kNR);
  VecNR c9 = *reinterpret_cast<const VecNR*>(acc + 9 * kNR);
  VecNR c10 = *reinterpret_cast<const VecNR*>(acc + 10 * kNR);
  VecNR c11 = *reinterpret_cast<const VecNR*>(acc + 11 * kNR);
  VecNR c12 = *reinterpret_cast<const VecNR*>(acc + 12 * kNR);
  VecNR c13 = *reinterpret_cast<const VecNR*>(acc + 13 * kNR);
  VecNR c14 = *reinterpret_cast<const VecNR*>(acc + 14 * kNR);
  VecNR c15 = *reinterpret_cast<const VecNR*>(acc + 15 * kNR);
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* a = pa + kk * 16;
    const VecNR bv = *reinterpret_cast<const VecNR*>(pb + kk * kNR);
    c0 += a[0] * bv;
    c1 += a[1] * bv;
    c2 += a[2] * bv;
    c3 += a[3] * bv;
    c4 += a[4] * bv;
    c5 += a[5] * bv;
    c6 += a[6] * bv;
    c7 += a[7] * bv;
    c8 += a[8] * bv;
    c9 += a[9] * bv;
    c10 += a[10] * bv;
    c11 += a[11] * bv;
    c12 += a[12] * bv;
    c13 += a[13] * bv;
    c14 += a[14] * bv;
    c15 += a[15] * bv;
  }
  *reinterpret_cast<VecNR*>(acc + 0 * kNR) = c0;
  *reinterpret_cast<VecNR*>(acc + 1 * kNR) = c1;
  *reinterpret_cast<VecNR*>(acc + 2 * kNR) = c2;
  *reinterpret_cast<VecNR*>(acc + 3 * kNR) = c3;
  *reinterpret_cast<VecNR*>(acc + 4 * kNR) = c4;
  *reinterpret_cast<VecNR*>(acc + 5 * kNR) = c5;
  *reinterpret_cast<VecNR*>(acc + 6 * kNR) = c6;
  *reinterpret_cast<VecNR*>(acc + 7 * kNR) = c7;
  *reinterpret_cast<VecNR*>(acc + 8 * kNR) = c8;
  *reinterpret_cast<VecNR*>(acc + 9 * kNR) = c9;
  *reinterpret_cast<VecNR*>(acc + 10 * kNR) = c10;
  *reinterpret_cast<VecNR*>(acc + 11 * kNR) = c11;
  *reinterpret_cast<VecNR*>(acc + 12 * kNR) = c12;
  *reinterpret_cast<VecNR*>(acc + 13 * kNR) = c13;
  *reinterpret_cast<VecNR*>(acc + 14 * kNR) = c14;
  *reinterpret_cast<VecNR*>(acc + 15 * kNR) = c15;
}

template <int MR>
void load_tile(float* acc, const float* c, std::int64_t n, std::int64_t i0,
               std::int64_t j0, std::int64_t mr, std::int64_t nr,
               bool from_zero) {
  if (from_zero) {
    std::fill(acc, acc + MR * kNR, 0.0f);
    return;
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* src = c + (i0 + r) * n + j0;
    float* row = acc + r * kNR;
    for (std::int64_t j = 0; j < nr; ++j) row[j] = src[j];
    for (std::int64_t j = nr; j < kNR; ++j) row[j] = 0.0f;
  }
  for (std::int64_t r = mr; r < MR; ++r) {
    std::fill(acc + r * kNR, acc + (r + 1) * kNR, 0.0f);
  }
}

void store_tile(const float* acc, float* c, std::int64_t n, std::int64_t i0,
                std::int64_t j0, std::int64_t mr, std::int64_t nr,
                const GemmEpilogue* epi) {
  if (epi == nullptr) {
    for (std::int64_t r = 0; r < mr; ++r) {
      float* dst = c + (i0 + r) * n + j0;
      const float* row = acc + r * kNR;
      for (std::int64_t j = 0; j < nr; ++j) dst[j] = row[j];
    }
    return;
  }
  const float* bias = epi->bias;
  if (epi->scatter_spatial > 0) {
    const std::int64_t spatial = epi->scatter_spatial;
    for (std::int64_t r = 0; r < mr; ++r) {
      const std::int64_t rg = i0 + r;
      const std::int64_t batch = rg / spatial;
      const std::int64_t p = rg - batch * spatial;
      float* base = epi->out + batch * n * spatial + p;
      const float* row = acc + r * kNR;
      for (std::int64_t j = 0; j < nr; ++j) {
        base[(j0 + j) * spatial] = bias ? row[j] + bias[j0 + j] : row[j];
      }
    }
  } else {
    float* out = epi->out ? epi->out : c;
    for (std::int64_t r = 0; r < mr; ++r) {
      float* dst = out + (i0 + r) * n + j0;
      const float* row = acc + r * kNR;
      for (std::int64_t j = 0; j < nr; ++j) {
        dst[j] = bias ? row[j] + bias[j0 + j] : row[j];
      }
    }
  }
}

struct PanelContext {
  GemmLayout layout = GemmLayout::kNN;
  const float* a = nullptr;
  float* c = nullptr;
  std::int64_t m = 0, n = 0, k = 0;
  std::int64_t jc = 0, nc = 0, pc = 0, kc = 0;
  bool from_zero = false;  // first k-block and not accumulating
  bool last = false;       // final k-block: epilogue applies here
  const GemmEpilogue* epi = nullptr;
  const float* packb = nullptr;
};

/// Computes the (ic, mc) row block of C against the shared packed B panel.
/// Row blocks are disjoint in C, so tasks need no synchronization.
template <int MR>
void process_row_block(const PanelContext& ctx, std::int64_t ic,
                       std::int64_t mc) {
  const std::int64_t slivers = (mc + MR - 1) / MR;
  tl_pack_a.resize(static_cast<std::size_t>(slivers * ctx.kc * MR));
  float* packa = tl_pack_a.data();
  pack_a<MR>(ctx.layout, ctx.a, ctx.m, ctx.k, ic, ctx.pc, mc, ctx.kc, packa);
  const GemmEpilogue* epi = ctx.last ? ctx.epi : nullptr;
  const bool unfused = ctx.layout == GemmLayout::kNT;
  // Historical kNT semantics fuse the last k % 4 depth steps (see
  // gemm_unfused.cpp). Every registered tiling has kc % 4 == 0 (asserted in
  // blocked_gemm), so the tail can only fall in the final k-block.
  const std::int64_t fused_tail = (unfused && ctx.last) ? ctx.kc % 4 : 0;
  alignas(64) float acc[MR * kNR];
  for (std::int64_t jr = 0; jr < ctx.nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, ctx.nc - jr);
    const float* bs = ctx.packb + (jr / kNR) * (ctx.kc * kNR);
    for (std::int64_t ir = 0; ir < mc; ir += MR) {
      const std::int64_t mr = std::min<std::int64_t>(MR, mc - ir);
      load_tile<MR>(acc, ctx.c, ctx.n, ic + ir, ctx.jc + jr, mr, nr,
                    ctx.from_zero);
      const float* as = packa + (ir / MR) * (ctx.kc * MR);
      if constexpr (MR == 8) {
        if (unfused) {
          detail::micro_kernel_unfused(ctx.kc, fused_tail, as, bs, acc);
        } else {
          micro_kernel(ctx.kc, as, bs, acc);
        }
      } else {
        static_assert(MR == 16, "microkernels exist for MR 8 and 16 only");
        if (unfused) {
          detail::micro_kernel_unfused_wide(ctx.kc, fused_tail, as, bs, acc);
        } else {
          micro_kernel_wide(ctx.kc, as, bs, acc);
        }
      }
      store_tile(acc, ctx.c, ctx.n, ic + ir, ctx.jc + jr, mr, nr, epi);
    }
  }
}

/// The blocked engine, shared by every blocked routine: loop structure is
/// identical to the pre-registry substrate with the cache tiling and thread
/// gate supplied by the routine description.
template <int MR>
void blocked_gemm(const GemmRoutineInfo& routine, GemmLayout layout,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, const float* b, float* c, bool accumulate,
                  const GemmEpilogue* epilogue)
    EDGETUNE_EXCLUDES(g_pool_mutex) {
  const GemmTiling& t = routine.tiling;
  // The kNT fused tail must stay in the final k-block: see process_row_block.
  assert(t.kc % 4 == 0);
  bool want_pool = false;
  switch (routine.threads) {
    case GemmThreadMode::kNever:
      break;
    case GemmThreadMode::kAuto:
      want_pool = m > t.mc && 2.0 * static_cast<double>(m) *
                                      static_cast<double>(n) *
                                      static_cast<double>(k) >=
                                  kParallelMinFlops;
      break;
    case GemmThreadMode::kAlways:
      want_pool = m > t.mc;
      break;
    case GemmThreadMode::kCutoff:
      want_pool = m > t.mc && m * n >= kGemmSmallShapeCells;
      break;
  }
  std::shared_ptr<ThreadPool> pool;
  if (want_pool) pool = acquire_pool();
  if (pool) g_pool_dispatches.fetch_add(1, std::memory_order_relaxed);

  for (std::int64_t jc = 0; jc < n; jc += t.nc) {
    const std::int64_t nc = std::min(t.nc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += t.kc) {
      const std::int64_t kc = std::min(t.kc, k - pc);
      const std::int64_t b_slivers = (nc + kNR - 1) / kNR;
      tl_pack_b.resize(static_cast<std::size_t>(b_slivers * kc * kNR));
      pack_b(layout, b, k, n, pc, jc, kc, nc, tl_pack_b.data());

      PanelContext ctx;
      ctx.layout = layout;
      ctx.a = a;
      ctx.c = c;
      ctx.m = m;
      ctx.n = n;
      ctx.k = k;
      ctx.jc = jc;
      ctx.nc = nc;
      ctx.pc = pc;
      ctx.kc = kc;
      ctx.from_zero = (pc == 0) && !accumulate;
      ctx.last = (pc + kc == k);
      ctx.epi = epilogue;
      ctx.packb = tl_pack_b.data();

      if (pool) {
        std::vector<std::future<void>> pending;
        pending.reserve(static_cast<std::size_t>((m + t.mc - 1) / t.mc));
        for (std::int64_t ic = 0; ic < m; ic += t.mc) {
          const std::int64_t mc = std::min(t.mc, m - ic);
          pending.push_back(pool->submit(
              [&ctx, ic, mc] { process_row_block<MR>(ctx, ic, mc); }));
        }
        for (std::future<void>& f : pending) f.get();
      } else {
        for (std::int64_t ic = 0; ic < m; ic += t.mc) {
          process_row_block<MR>(ctx, ic, std::min(t.mc, m - ic));
        }
      }
    }
  }
}

}  // namespace

int intra_op_threads() noexcept {
  MutexLock lock(g_pool_mutex);
  return g_intra_op_threads;
}

void set_intra_op_threads(int n) {
  MutexLock lock(g_pool_mutex);
  g_intra_op_threads = std::max(1, n);
  // Drop the old pool; in-flight GEMMs keep it alive via their shared_ptr
  // and it is torn down when the last of them finishes.
  g_intra_op_pool.reset();
}

std::size_t gemm_pool_dispatches() noexcept {
  return g_pool_dispatches.load(std::memory_order_relaxed);
}

void gemm_with_routine(GemmRoutineId routine, GemmLayout layout,
                       std::int64_t m, std::int64_t n, std::int64_t k,
                       const float* a, const float* b, float* c,
                       bool accumulate, const GemmEpilogue* epilogue) {
  assert(m > 0 && n > 0 && k > 0);
  if (routine == GemmRoutineId::kNaiveIkj) {
    detail::naive_gemm(layout, m, n, k, a, b, c, accumulate, epilogue);
    return;
  }
  const std::vector<GemmRoutineInfo>& registry = gemm_routine_registry();
  const std::size_t idx = static_cast<std::size_t>(routine);
  assert(idx < registry.size());
  const GemmRoutineInfo& info = registry[idx];
  if (info.microtile_rows == 16) {
    blocked_gemm<16>(info, layout, m, n, k, a, b, c, accumulate, epilogue);
  } else {
    blocked_gemm<8>(info, layout, m, n, k, a, b, c, accumulate, epilogue);
  }
}

void gemm(GemmLayout layout, std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, const float* b, float* c, bool accumulate,
          const GemmEpilogue* epilogue) {
  gemm_with_routine(current_gemm_routine(), layout, m, n, k, a, b, c,
                    accumulate, epilogue);
}

}  // namespace edgetune
