// A contiguous, row-major float32 N-d tensor. Deliberately simple: the mini
// deep-learning library (src/nn) needs dense value semantics and a handful of
// kernels, not views/broadcasting generality.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace edgetune {

using Shape = std::vector<std::int64_t>;

/// Number of elements of a shape; 1 for scalars (empty shape).
std::int64_t shape_numel(const Shape& shape) noexcept;
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill_value);
  Tensor(Shape shape, std::vector<float> data);

  /// Factory helpers.
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) {
    return Tensor(std::move(shape), v);
  }
  /// i.i.d. N(mean, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// i.i.d. U[lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);
  /// [0, 1, 2, ..., n-1] as a 1-d tensor.
  static Tensor arange(std::int64_t n);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t dim(std::size_t axis) const {
    return shape_.at(axis);
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::vector<float>& vec() noexcept { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const noexcept {
    return data_;
  }

  float& operator[](std::int64_t i) noexcept {
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const noexcept {
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-d indexed access (row-major). Debug-asserted bounds.
  float& at2(std::int64_t r, std::int64_t c) noexcept {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at2(std::int64_t r, std::int64_t c) const noexcept {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// Reshape preserving element count. Error on mismatch.
  [[nodiscard]] Result<Tensor> reshaped(Shape new_shape) const;

  /// In-place elementwise updates.
  void fill(float value) noexcept;
  void add_inplace(const Tensor& other);  // this += other (asserts same numel)
  void scale_inplace(float factor) noexcept;
  /// this = this*a + other*b (fused axpy used by optimizers).
  void axpy_inplace(float a, const Tensor& other, float b);

  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float max() const noexcept;
  [[nodiscard]] float min() const noexcept;
  [[nodiscard]] float mean() const noexcept;
  /// L2 norm of all elements.
  [[nodiscard]] float norm() const noexcept;

  [[nodiscard]] std::string to_string(std::int64_t max_items = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace edgetune
