// kNT bodies for the routine layer. Like gemm_unfused.cpp this translation
// unit is compiled with -ffp-contract=off (see CMakeLists.txt, enforced by
// edgetune_lint's fp-contract-allowlist rule): the historical matmul_nt
// semantics round each product to float before the ascending-k add, with
// only the final k % 4 depth steps contracted to fused multiply-adds. Two
// kernels live here:
//   micro_kernel_unfused_wide — the 16-row microtile for "blocked_wide"
//   naive_gemm_nt_unfused     — the loop-nest routine's kNT path
#include <cmath>
#include <cstdint>

namespace edgetune {
namespace detail {

constexpr std::int64_t kMRW = 16;
constexpr std::int64_t kNR = 16;

// Same explicit row-vector layout as gemm.cpp's micro_kernel_wide (see the
// note there: the scalar triple loop vectorizes badly). With contraction
// off, each `c += a * bv` lowers to a separate vector multiply and add — the
// rounding the historical matmul_nt performed on its vectorized body.
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float)),
                                   aligned(alignof(float))));

void micro_kernel_unfused_wide(std::int64_t kc, std::int64_t fused_tail,
                               const float* __restrict__ pa,
                               const float* __restrict__ pb,
                               float* __restrict__ acc) {
  const std::int64_t body = kc - fused_tail;
  VecNR c0 = *reinterpret_cast<const VecNR*>(acc + 0 * kNR);
  VecNR c1 = *reinterpret_cast<const VecNR*>(acc + 1 * kNR);
  VecNR c2 = *reinterpret_cast<const VecNR*>(acc + 2 * kNR);
  VecNR c3 = *reinterpret_cast<const VecNR*>(acc + 3 * kNR);
  VecNR c4 = *reinterpret_cast<const VecNR*>(acc + 4 * kNR);
  VecNR c5 = *reinterpret_cast<const VecNR*>(acc + 5 * kNR);
  VecNR c6 = *reinterpret_cast<const VecNR*>(acc + 6 * kNR);
  VecNR c7 = *reinterpret_cast<const VecNR*>(acc + 7 * kNR);
  VecNR c8 = *reinterpret_cast<const VecNR*>(acc + 8 * kNR);
  VecNR c9 = *reinterpret_cast<const VecNR*>(acc + 9 * kNR);
  VecNR c10 = *reinterpret_cast<const VecNR*>(acc + 10 * kNR);
  VecNR c11 = *reinterpret_cast<const VecNR*>(acc + 11 * kNR);
  VecNR c12 = *reinterpret_cast<const VecNR*>(acc + 12 * kNR);
  VecNR c13 = *reinterpret_cast<const VecNR*>(acc + 13 * kNR);
  VecNR c14 = *reinterpret_cast<const VecNR*>(acc + 14 * kNR);
  VecNR c15 = *reinterpret_cast<const VecNR*>(acc + 15 * kNR);
  for (std::int64_t kk = 0; kk < body; ++kk) {
    const float* a = pa + kk * kMRW;
    const VecNR bv = *reinterpret_cast<const VecNR*>(pb + kk * kNR);
    c0 += a[0] * bv;
    c1 += a[1] * bv;
    c2 += a[2] * bv;
    c3 += a[3] * bv;
    c4 += a[4] * bv;
    c5 += a[5] * bv;
    c6 += a[6] * bv;
    c7 += a[7] * bv;
    c8 += a[8] * bv;
    c9 += a[9] * bv;
    c10 += a[10] * bv;
    c11 += a[11] * bv;
    c12 += a[12] * bv;
    c13 += a[13] * bv;
    c14 += a[14] * bv;
    c15 += a[15] * bv;
  }
  *reinterpret_cast<VecNR*>(acc + 0 * kNR) = c0;
  *reinterpret_cast<VecNR*>(acc + 1 * kNR) = c1;
  *reinterpret_cast<VecNR*>(acc + 2 * kNR) = c2;
  *reinterpret_cast<VecNR*>(acc + 3 * kNR) = c3;
  *reinterpret_cast<VecNR*>(acc + 4 * kNR) = c4;
  *reinterpret_cast<VecNR*>(acc + 5 * kNR) = c5;
  *reinterpret_cast<VecNR*>(acc + 6 * kNR) = c6;
  *reinterpret_cast<VecNR*>(acc + 7 * kNR) = c7;
  *reinterpret_cast<VecNR*>(acc + 8 * kNR) = c8;
  *reinterpret_cast<VecNR*>(acc + 9 * kNR) = c9;
  *reinterpret_cast<VecNR*>(acc + 10 * kNR) = c10;
  *reinterpret_cast<VecNR*>(acc + 11 * kNR) = c11;
  *reinterpret_cast<VecNR*>(acc + 12 * kNR) = c12;
  *reinterpret_cast<VecNR*>(acc + 13 * kNR) = c13;
  *reinterpret_cast<VecNR*>(acc + 14 * kNR) = c14;
  *reinterpret_cast<VecNR*>(acc + 15 * kNR) = c15;
  // Fused scalar epilogue: at most 3 depth steps, still ascending-k after
  // the body. std::fmaf keeps the contraction explicit under
  // -ffp-contract=off.
  for (std::int64_t kk = body; kk < kc; ++kk) {
    const float* a = pa + kk * kMRW;
    const float* b = pb + kk * kNR;
    for (std::int64_t r = 0; r < kMRW; ++r) {
      float* row = acc + r * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) {
        row[j] = std::fmaf(a[r], b[j], row[j]);
      }
    }
  }
}

// The loop-nest routine's kNT path: one scalar dot product per output
// element, rounded adds for the first k - k%4 steps, fmaf for the tail —
// per-element the identical operation sequence the blocked engine performs
// across its k-blocks (float values round-trip through the C scratch
// losslessly between blocks).
void naive_gemm_nt_unfused(std::int64_t m, std::int64_t n, std::int64_t k,
                           const float* a, const float* b, float* c,
                           bool accumulate) {
  const std::int64_t body = k - (k % 4);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = accumulate ? crow[j] : 0.0f;
      for (std::int64_t kk = 0; kk < body; ++kk) {
        acc += arow[kk] * brow[kk];  // rounded product under contract=off
      }
      for (std::int64_t kk = body; kk < k; ++kk) {
        acc = std::fmaf(arow[kk], brow[kk], acc);
      }
      crow[j] = acc;
    }
  }
}

}  // namespace detail
}  // namespace edgetune
