// Grow-only arena of float scratch buffers, one per named slot. Layers keep
// one Workspace member and fetch the same slots every forward/backward step,
// so im2col columns, gradient columns, and GEMM output scratch are reused
// instead of heap-allocated per step (zero steady-state allocations).
#pragma once

#include <cstdint>
#include <vector>

namespace edgetune {

class Workspace {
 public:
  /// Returns a buffer of at least `n` floats for `slot`. The pointer is
  /// stable across calls as long as the slot's requested size does not grow.
  /// Contents are NOT cleared between calls.
  float* get(std::size_t slot, std::int64_t n) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    std::vector<float>& buf = slots_[slot];
    if (buf.size() < static_cast<std::size_t>(n)) {
      buf.resize(static_cast<std::size_t>(n));
    }
    return buf.data();
  }

  /// Total resident scratch, for observability.
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t total = 0;
    for (const std::vector<float>& buf : slots_) {
      total += buf.capacity() * sizeof(float);
    }
    return total;
  }

 private:
  std::vector<std::vector<float>> slots_;
};

}  // namespace edgetune
