// Trial budget policies (§2.2, §4.3). A policy maps a successive-halving
// resource level ("iteration", in budget units) to concrete trial resources:
// how many epochs to run and what fraction of the training data to use.
//
//   EpochBudget   — epochs grow with the iteration, full dataset each time.
//   DatasetBudget — one epoch, dataset fraction grows with the iteration.
//   MultiBudget   — the paper's contribution (Alg. 2): BOTH grow
//                   simultaneously and proportionally, with independent caps.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "common/status.hpp"

namespace edgetune {

/// Concrete resources for one training trial.
struct TrialBudget {
  int epochs = 1;
  double data_fraction = 1.0;
  /// When > 0, caps the trial's *simulated* training duration: the trial
  /// runner stops after the last whole epoch that fits (at least one epoch
  /// always runs). This is the paper's third budget dimension (§2.2:
  /// budgets are "defined in terms of (1) number of epochs, (2) portion of
  /// training dataset, and (3) duration").
  double time_cap_s = 0;

  /// Total work relative to (1 epoch x full dataset).
  [[nodiscard]] double work_units() const noexcept {
    return static_cast<double>(epochs) * data_fraction;
  }
};

class BudgetPolicy {
 public:
  virtual ~BudgetPolicy() = default;

  /// Resources for resource level `iteration` (>= 1, fractional allowed —
  /// HyperBand rungs produce fractional levels).
  [[nodiscard]] virtual TrialBudget at(double iteration) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// epochs = min(min_epochs * iteration, max_epochs); full dataset.
class EpochBudget : public BudgetPolicy {
 public:
  EpochBudget(int min_epochs, int max_epochs)
      : min_epochs_(min_epochs), max_epochs_(max_epochs) {}

  [[nodiscard]] TrialBudget at(double iteration) const override {
    TrialBudget b;
    b.epochs = static_cast<int>(std::min<double>(
        max_epochs_, std::max(1.0, min_epochs_ * iteration)));
    b.data_fraction = 1.0;
    return b;
  }
  [[nodiscard]] std::string name() const override { return "epochs"; }

 private:
  int min_epochs_, max_epochs_;
};

/// One epoch; data fraction = min(1, min_fraction * iteration).
class DatasetBudget : public BudgetPolicy {
 public:
  explicit DatasetBudget(double min_fraction)
      : min_fraction_(min_fraction) {}

  [[nodiscard]] TrialBudget at(double iteration) const override {
    TrialBudget b;
    b.epochs = 1;
    b.data_fraction =
        std::clamp(min_fraction_ * iteration, min_fraction_, 1.0);
    return b;
  }
  [[nodiscard]] std::string name() const override { return "dataset"; }

 private:
  double min_fraction_;
};

/// Alg. 2: both dimensions grow with the iteration; each saturates at its own
/// cap and the other keeps growing.
class MultiBudget : public BudgetPolicy {
 public:
  MultiBudget(int min_epochs, int max_epochs, double min_fraction)
      : min_epochs_(min_epochs),
        max_epochs_(max_epochs),
        min_fraction_(min_fraction) {}

  [[nodiscard]] TrialBudget at(double iteration) const override {
    TrialBudget b;
    b.epochs = static_cast<int>(std::min<double>(
        max_epochs_, std::max(1.0, min_epochs_ * iteration)));
    b.data_fraction =
        std::clamp(min_fraction_ * iteration, min_fraction_, 1.0);
    return b;
  }
  [[nodiscard]] std::string name() const override { return "multi-budget"; }

 private:
  int min_epochs_, max_epochs_;
  double min_fraction_;
};

/// Duration budget: time cap grows with the iteration (full dataset; the
/// trial runner fits as many epochs as the cap allows, up to max_epochs).
class TimeBudget : public BudgetPolicy {
 public:
  TimeBudget(double min_seconds, int max_epochs)
      : min_seconds_(min_seconds), max_epochs_(max_epochs) {}

  [[nodiscard]] TrialBudget at(double iteration) const override {
    TrialBudget b;
    b.epochs = max_epochs_;
    b.data_fraction = 1.0;
    b.time_cap_s = std::max(min_seconds_, min_seconds_ * iteration);
    return b;
  }
  [[nodiscard]] std::string name() const override { return "time"; }

 private:
  double min_seconds_;
  int max_epochs_;
};

/// Factory by name: "epochs", "dataset", "multi-budget", "time".
Result<std::unique_ptr<BudgetPolicy>> make_budget_policy(
    const std::string& name);

}  // namespace edgetune
