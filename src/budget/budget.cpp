#include "budget/budget.hpp"

namespace edgetune {

Result<std::unique_ptr<BudgetPolicy>> make_budget_policy(
    const std::string& name) {
  // Defaults mirror the paper's running example (§4.3): minimum 1 epoch,
  // cap 10 epochs, minimum 10% of the dataset.
  if (name == "epochs") {
    return std::unique_ptr<BudgetPolicy>(std::make_unique<EpochBudget>(1, 10));
  }
  if (name == "dataset") {
    return std::unique_ptr<BudgetPolicy>(
        std::make_unique<DatasetBudget>(0.1));
  }
  if (name == "multi-budget") {
    return std::unique_ptr<BudgetPolicy>(
        std::make_unique<MultiBudget>(1, 10, 0.1));
  }
  if (name == "time") {
    // 30 simulated seconds per budget unit, epoch ceiling shared with the
    // other policies.
    return std::unique_ptr<BudgetPolicy>(
        std::make_unique<TimeBudget>(30.0, 10));
  }
  return Status::not_found("unknown budget policy: " + name);
}

}  // namespace edgetune
