// The four evaluation models (paper Table 1 / §5.1), each exposing exactly
// the model hyperparameter the paper tunes:
//   ResNet   — number of layers in {18, 34, 50}          (image class.)
//   M5       — embedded dimension in {32, 64, 128}       (speech)
//   TextRNN  — stride in [1, 32]                         (NLP)
//   TinyYOLO — dropout rate in [0.1, 0.5]                (object detection)
//
// Each builder returns BOTH an executable proxy-scale network (really
// trainable on this machine) and the full-scale analytic ArchSpec the device
// emulator prices (DESIGN.md §2, "Virtual time").
#pragma once

#include <memory>
#include <string>

#include "data/workload.hpp"
#include "nn/arch.hpp"
#include "nn/sequential.hpp"

namespace edgetune {

struct BuiltModel {
  std::string name;                      // e.g. "resnet18"
  std::unique_ptr<Sequential> net;       // proxy-scale, trainable
  Shape proxy_sample_shape;              // one proxy sample, no batch dim
  std::int64_t num_classes = 0;
  ArchSpec arch;                         // full-scale analytic spec
};

struct ResNetConfig {
  int depth = 18;  // one of 18, 34, 50
  std::int64_t num_classes = 10;
};
Result<BuiltModel> build_resnet(const ResNetConfig& config, Rng& rng);

/// AlexNet-on-CIFAR10 — the workload of the paper's Fig 1 perf-counter
/// study (§2.1). Plain conv stack, large dense head (the memory profile
/// that makes training-forward and inference counters diverge).
struct AlexNetConfig {
  std::int64_t num_classes = 10;
};
Result<BuiltModel> build_alexnet(const AlexNetConfig& config, Rng& rng);

struct M5Config {
  std::int64_t embed_dim = 64;  // one of 32, 64, 128
  std::int64_t num_classes = 35;
};
Result<BuiltModel> build_m5(const M5Config& config, Rng& rng);

struct TextRnnConfig {
  std::int64_t stride = 1;  // 1..32
  std::int64_t num_classes = 4;
};
Result<BuiltModel> build_text_rnn(const TextRnnConfig& config, Rng& rng);

struct YoloConfig {
  double dropout = 0.3;  // 0.1..0.5
  std::int64_t num_classes = 20;
};
Result<BuiltModel> build_tiny_yolo(const YoloConfig& config, Rng& rng);

// WorkloadKind and workload_kind_name() live in data/workload.hpp (the
// lowest layer that names workloads); re-exported here for builders' users.

/// Builds the model for a workload from the single tunable model
/// hyperparameter the paper assigns it (§5.1). `model_hparam` is interpreted
/// per workload: layers, embed dim, stride, or dropout.
Result<BuiltModel> build_workload_model(WorkloadKind kind, double model_hparam,
                                        Rng& rng);

}  // namespace edgetune
