#include "models/models.hpp"

#include <array>
#include <cmath>

#include "nn/conv.hpp"
#include "nn/layers_basic.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/rnn.hpp"

namespace edgetune {

namespace {

/// Appends the analytic info of one basic residual block to `arch`,
/// mirroring ResidualBlock::describe.
Shape arch_add_resblock(ArchSpec& arch, const Shape& input,
                        std::int64_t in_c, std::int64_t out_c,
                        std::int64_t stride) {
  LayerInfo total;
  total.kind = "resblock";
  LayerInfo i1 = info_conv2d(input, out_c, 3, stride, 1, /*bias=*/false);
  LayerInfo i2 = info_batchnorm(i1.output_shape);
  LayerInfo i3 = info_relu(i2.output_shape);
  LayerInfo i4 = info_conv2d(i3.output_shape, out_c, 3, 1, 1, /*bias=*/false);
  LayerInfo i5 = info_batchnorm(i4.output_shape);
  for (const auto& info : {i1, i2, i3, i4, i5}) {
    total.flops_forward += info.flops_forward;
    total.param_count += info.param_count;
    total.activation_elems += info.activation_elems;
    total.weight_reads += info.weight_reads;
  }
  if (stride != 1 || in_c != out_c) {
    LayerInfo p1 = info_conv2d(input, out_c, 1, stride, 0, /*bias=*/false);
    LayerInfo p2 = info_batchnorm(p1.output_shape);
    for (const auto& info : {p1, p2}) {
      total.flops_forward += info.flops_forward;
      total.param_count += info.param_count;
      total.activation_elems += info.activation_elems;
      total.weight_reads += info.weight_reads;
    }
  }
  total.flops_forward += 2.0 * static_cast<double>(shape_numel(i5.output_shape));
  total.output_shape = i5.output_shape;
  arch.add(total);
  return arch.layers.back().output_shape;
}

/// Appends the analytic info of one bottleneck block (1x1, 3x3, 1x1 with
/// 4x expansion), mirroring BottleneckBlock::describe.
Shape arch_add_bottleneck(ArchSpec& arch, const Shape& input,
                          std::int64_t in_c, std::int64_t mid_c,
                          std::int64_t stride) {
  LayerInfo total;
  total.kind = "bottleneck";
  LayerInfo i1 = info_conv2d(input, mid_c, 1, 1, 0, /*bias=*/false);
  LayerInfo i2 = info_batchnorm(i1.output_shape);
  LayerInfo i3 = info_relu(i2.output_shape);
  LayerInfo i4 = info_conv2d(i3.output_shape, mid_c, 3, stride, 1, false);
  LayerInfo i5 = info_batchnorm(i4.output_shape);
  LayerInfo i6 = info_relu(i5.output_shape);
  LayerInfo i7 = info_conv2d(i6.output_shape, 4 * mid_c, 1, 1, 0, false);
  LayerInfo i8 = info_batchnorm(i7.output_shape);
  for (const auto& info : {i1, i2, i3, i4, i5, i6, i7, i8}) {
    total.flops_forward += info.flops_forward;
    total.param_count += info.param_count;
    total.activation_elems += info.activation_elems;
    total.weight_reads += info.weight_reads;
  }
  if (stride != 1 || in_c != 4 * mid_c) {
    LayerInfo p1 = info_conv2d(input, 4 * mid_c, 1, stride, 0, false);
    LayerInfo p2 = info_batchnorm(p1.output_shape);
    for (const auto& info : {p1, p2}) {
      total.flops_forward += info.flops_forward;
      total.param_count += info.param_count;
      total.activation_elems += info.activation_elems;
      total.weight_reads += info.weight_reads;
    }
  }
  total.flops_forward += 2.0 * static_cast<double>(shape_numel(i8.output_shape));
  total.output_shape = i8.output_shape;
  arch.add(total);
  return arch.layers.back().output_shape;
}

/// Standard ResNet stage layouts: 18/34 use basic blocks, 50 bottlenecks.
std::array<int, 4> resnet_blocks(int depth) {
  switch (depth) {
    case 18:
      return {2, 2, 2, 2};
    case 34:
      return {3, 4, 6, 3};
    case 50:
      return {3, 4, 6, 3};  // bottleneck blocks: 3*sum+2 = 50 layers
    default:
      return {0, 0, 0, 0};
  }
}

}  // namespace

Result<BuiltModel> build_resnet(const ResNetConfig& config, Rng& rng) {
  const auto blocks = resnet_blocks(config.depth);
  if (blocks[0] == 0) {
    return Status::invalid_argument("resnet depth must be 18, 34, or 50, got " +
                                    std::to_string(config.depth));
  }

  BuiltModel built;
  built.name = "resnet" + std::to_string(config.depth);
  built.num_classes = config.num_classes;

  // --- Executable proxy: 3x8x8 inputs, base width 8, same block layout. ---
  const bool bottleneck = config.depth >= 50;
  const std::int64_t pw = bottleneck ? 4 : 8;  // proxy base width
  built.proxy_sample_shape = {3, 8, 8};
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(3, pw, 3, 1, 1, rng, false);
  net->emplace<BatchNorm>(pw);
  net->emplace<ReLU>();
  std::int64_t in_c = pw;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = pw << stage;
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
      if (bottleneck) {
        net->emplace<BottleneckBlock>(in_c, width, stride, rng);
        in_c = 4 * width;
      } else {
        net->emplace<ResidualBlock>(in_c, width, stride, rng);
        in_c = width;
      }
    }
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, config.num_classes, rng);
  built.net = std::move(net);

  // --- Full-scale arch: CIFAR-10 3x32x32, base width 64. ---
  ArchSpec arch;
  arch.id = built.name;
  arch.sample_shape = {3, 32, 32};
  arch.num_classes = config.num_classes;
  const std::int64_t fw = 64;
  Shape shape = {1, 3, 32, 32};
  arch.add(info_conv2d(shape, fw, 3, 1, 1, false));
  shape = arch.output_shape();
  arch.add(info_batchnorm(shape));
  arch.add(info_relu(shape));
  std::int64_t fin_c = fw;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = fw << stage;
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
      if (bottleneck) {
        shape = arch_add_bottleneck(arch, shape, fin_c, width, stride);
        fin_c = 4 * width;
      } else {
        shape = arch_add_resblock(arch, shape, fin_c, width, stride);
        fin_c = width;
      }
    }
  }
  arch.add(info_gap(shape));
  arch.add(info_linear(arch.output_shape(), config.num_classes));
  built.arch = std::move(arch);
  return built;
}

Result<BuiltModel> build_alexnet(const AlexNetConfig& config, Rng& rng) {
  if (config.num_classes < 2) {
    return Status::invalid_argument("alexnet needs >= 2 classes");
  }
  BuiltModel built;
  built.name = "alexnet";
  built.num_classes = config.num_classes;

  // --- Proxy: 3x8x8, narrow conv stack + small dense head. ---
  built.proxy_sample_shape = {3, 8, 8};
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(3, 12, 3, 1, 1, rng, true);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);  // 4x4
  net->emplace<Conv2D>(12, 24, 3, 1, 1, rng, true);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);  // 2x2
  net->emplace<Flatten>();
  net->emplace<Linear>(24 * 2 * 2, 48, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(48, config.num_classes, rng);
  built.net = std::move(net);

  // --- Full-scale arch: AlexNet adapted to CIFAR-10 (3x32x32). ---
  ArchSpec arch;
  arch.id = built.name;
  arch.sample_shape = {3, 32, 32};
  arch.num_classes = config.num_classes;
  Shape shape = {1, 3, 32, 32};
  arch.add(info_conv2d(shape, 64, 5, 1, 2, true));
  shape = arch.output_shape();
  arch.add(info_relu(shape));
  arch.add(info_maxpool2d(shape, 2, 2));
  shape = arch.output_shape();  // 16x16
  arch.add(info_conv2d(shape, 192, 5, 1, 2, true));
  shape = arch.output_shape();
  arch.add(info_relu(shape));
  arch.add(info_maxpool2d(shape, 2, 2));
  shape = arch.output_shape();  // 8x8
  arch.add(info_conv2d(shape, 384, 3, 1, 1, true));
  shape = arch.output_shape();
  arch.add(info_relu(shape));
  arch.add(info_conv2d(shape, 256, 3, 1, 1, true));
  shape = arch.output_shape();
  arch.add(info_relu(shape));
  arch.add(info_conv2d(shape, 256, 3, 1, 1, true));
  shape = arch.output_shape();
  arch.add(info_relu(shape));
  arch.add(info_maxpool2d(shape, 2, 2));
  shape = arch.output_shape();  // 4x4
  arch.add(info_flatten(shape));
  arch.add(info_linear(arch.output_shape(), 4096));
  arch.add(info_relu(arch.output_shape()));
  arch.add(info_linear(arch.output_shape(), 4096));
  arch.add(info_relu(arch.output_shape()));
  arch.add(info_linear(arch.output_shape(), config.num_classes));
  built.arch = std::move(arch);
  return built;
}

Result<BuiltModel> build_m5(const M5Config& config, Rng& rng) {
  if (config.embed_dim != 32 && config.embed_dim != 64 &&
      config.embed_dim != 128) {
    return Status::invalid_argument("m5 embed_dim must be 32/64/128, got " +
                                    std::to_string(config.embed_dim));
  }

  BuiltModel built;
  built.name = "m5_e" + std::to_string(config.embed_dim);
  built.num_classes = config.num_classes;

  // --- Proxy: 1x256 waveform, channels = embed/8. ---
  const std::int64_t pe = std::max<std::int64_t>(4, config.embed_dim / 8);
  built.proxy_sample_shape = {1, 256};
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv1D>(1, pe, 8, 2, 3, rng, false);   // -> [pe, 127]
  net->emplace<BatchNorm>(pe);
  net->emplace<ReLU>();
  net->emplace<MaxPool1D>(4, 4);                      // -> [pe, 31]
  net->emplace<Conv1D>(pe, pe, 3, 1, 1, rng, false);
  net->emplace<BatchNorm>(pe);
  net->emplace<ReLU>();
  net->emplace<MaxPool1D>(4, 4);                      // -> [pe, 7]
  net->emplace<Conv1D>(pe, 2 * pe, 3, 1, 1, rng, false);
  net->emplace<BatchNorm>(2 * pe);
  net->emplace<ReLU>();
  net->emplace<GlobalAvgPool1D>();
  net->emplace<Linear>(2 * pe, config.num_classes, rng);
  built.net = std::move(net);

  // --- Full-scale arch: 1x8000 waveform (SpeechCommands @ 8 kHz). ---
  ArchSpec arch;
  arch.id = built.name;
  arch.sample_shape = {1, 8000};
  arch.num_classes = config.num_classes;
  const std::int64_t fe = config.embed_dim;
  Shape shape = {1, 1, 8000};
  arch.add(info_conv1d(shape, fe, 80, 4, 38, false));
  shape = arch.output_shape();
  arch.add(info_batchnorm(shape));
  arch.add(info_relu(shape));
  arch.add(info_maxpool1d(shape, 4, 4));
  shape = arch.output_shape();
  arch.add(info_conv1d(shape, fe, 3, 1, 1, false));
  shape = arch.output_shape();
  arch.add(info_batchnorm(shape));
  arch.add(info_relu(shape));
  arch.add(info_maxpool1d(shape, 4, 4));
  shape = arch.output_shape();
  arch.add(info_conv1d(shape, 2 * fe, 3, 1, 1, false));
  shape = arch.output_shape();
  arch.add(info_batchnorm(shape));
  arch.add(info_relu(shape));
  arch.add(info_maxpool1d(shape, 4, 4));
  shape = arch.output_shape();
  arch.add(info_conv1d(shape, 2 * fe, 3, 1, 1, false));
  shape = arch.output_shape();
  arch.add(info_batchnorm(shape));
  arch.add(info_relu(shape));
  arch.add(info_gap1d(shape));
  arch.add(info_linear(arch.output_shape(), config.num_classes));
  built.arch = std::move(arch);
  return built;
}

Result<BuiltModel> build_text_rnn(const TextRnnConfig& config, Rng& rng) {
  if (config.stride < 1 || config.stride > 32) {
    return Status::invalid_argument("text_rnn stride must be in [1,32], got " +
                                    std::to_string(config.stride));
  }

  BuiltModel built;
  built.name = "textrnn_s" + std::to_string(config.stride);
  built.num_classes = config.num_classes;

  // --- Proxy: vocab 200, sequence length 32, embed/hidden 16. ---
  built.proxy_sample_shape = {32};
  auto net = std::make_unique<Sequential>();
  net->emplace<Embedding>(200, 16, rng);
  net->emplace<RNN>(16, 16, config.stride, rng);
  net->emplace<Linear>(16, config.num_classes, rng);
  built.net = std::move(net);

  // --- Full-scale arch: vocab 30k, length 64, embed/hidden 128 (AG News). ---
  ArchSpec arch;
  arch.id = built.name;
  arch.sample_shape = {64};
  arch.num_classes = config.num_classes;
  Shape shape = {1, 64};
  arch.add(info_embedding(shape, 30000, 128));
  arch.add(info_rnn(arch.output_shape(), 128, config.stride));
  arch.add(info_linear(arch.output_shape(), config.num_classes));
  built.arch = std::move(arch);
  return built;
}

Result<BuiltModel> build_tiny_yolo(const YoloConfig& config, Rng& rng) {
  if (config.dropout < 0.0 || config.dropout >= 1.0) {
    return Status::invalid_argument("yolo dropout must be in [0,1)");
  }

  BuiltModel built;
  char buf[32];
  std::snprintf(buf, sizeof buf, "yolo_d%.2f", config.dropout);
  built.name = buf;
  built.num_classes = config.num_classes;

  // --- Proxy: 3x16x16 inputs, narrow conv pyramid, classification head.
  // (Detection is reduced to dominant-object classification at proxy scale;
  // the full-scale arch below prices the real YOLO-style conv pyramid.)
  built.proxy_sample_shape = {3, 16, 16};
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2D>(3, 8, 3, 1, 1, rng, false);
  net->emplace<BatchNorm>(8);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);  // 8x8
  net->emplace<Conv2D>(8, 16, 3, 1, 1, rng, false);
  net->emplace<BatchNorm>(16);
  net->emplace<ReLU>();
  net->emplace<MaxPool2D>(2, 2);  // 4x4
  net->emplace<Conv2D>(16, 32, 3, 1, 1, rng, false);
  net->emplace<BatchNorm>(32);
  net->emplace<LeakyReLU>();  // YOLO-family activation
  net->emplace<Dropout>(config.dropout, rng);
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(32, config.num_classes, rng);
  built.net = std::move(net);

  // --- Full-scale arch: tiny-YOLO-ish pyramid on 3x416x416, 5 anchors. ---
  ArchSpec arch;
  arch.id = built.name;
  arch.sample_shape = {3, 416, 416};
  arch.num_classes = config.num_classes;
  Shape shape = {1, 3, 416, 416};
  std::int64_t channels = 16;
  for (int level = 0; level < 5; ++level) {
    arch.add(info_conv2d(shape, channels, 3, 1, 1, false));
    shape = arch.output_shape();
    arch.add(info_batchnorm(shape));
    arch.add(info_relu(shape));
    arch.add(info_maxpool2d(shape, 2, 2));
    shape = arch.output_shape();
    channels *= 2;
  }
  arch.add(info_conv2d(shape, 512, 3, 1, 1, false));
  shape = arch.output_shape();
  arch.add(info_batchnorm(shape));
  arch.add(info_relu(shape));
  arch.add(info_dropout(shape));
  // Detection head: 5 anchors x (5 box terms + classes).
  const std::int64_t head =
      5 * (5 + config.num_classes);
  arch.add(info_conv2d(shape, head, 1, 1, 0, true));
  built.arch = std::move(arch);
  return built;
}


Result<BuiltModel> build_workload_model(WorkloadKind kind, double model_hparam,
                                        Rng& rng) {
  // Class counts mirror workload_num_classes() in src/data/synthetic.cpp
  // (proxy-scale counts; Table 1 documents the paper's originals).
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return build_resnet(
          {.depth = static_cast<int>(model_hparam), .num_classes = 10}, rng);
    case WorkloadKind::kSpeech:
      return build_m5({.embed_dim = static_cast<std::int64_t>(model_hparam),
                       .num_classes = 10},
                      rng);
    case WorkloadKind::kNlp:
      return build_text_rnn(
          {.stride = static_cast<std::int64_t>(model_hparam),
           .num_classes = 4},
          rng);
    case WorkloadKind::kDetection:
      return build_tiny_yolo({.dropout = model_hparam, .num_classes = 8},
                             rng);
  }
  return Status::invalid_argument("unknown workload kind");
}

}  // namespace edgetune
