#include "data/trainer.hpp"

namespace edgetune {

Trainer::Trainer(Layer& model, TrainerOptions options, Rng& rng)
    : model_(model), options_(options), rng_(rng.split()) {}

double Trainer::evaluate(Layer& model, const DatasetView& view) {
  double correct = 0;
  std::int64_t total = 0;
  for (std::int64_t pos = 0; pos < view.size(); pos += 64) {
    Batch batch = view.batch(pos, 64);
    if (batch.size() == 0) break;
    Tensor logits = model.forward(batch.inputs, /*training=*/false);
    correct += accuracy(logits, batch.labels) *
               static_cast<double>(batch.size());
    total += batch.size();
  }
  return total > 0 ? correct / static_cast<double>(total) : 0.0;
}

Result<TrainingHistory> Trainer::fit(const DatasetView& train,
                                     const DatasetView& val) {
  if (!train.valid() || train.size() == 0) {
    return Status::invalid_argument("empty training view");
  }
  if (options_.epochs < 1 || options_.batch_size < 1) {
    return Status::invalid_argument("epochs and batch_size must be >= 1");
  }

  SgdOptimizer optimizer(model_.params(), options_.sgd);
  BatchIterator iter(train, options_.batch_size, rng_);
  TrainingHistory history;
  int since_best = 0;

  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    iter.begin_epoch();
    double loss_sum = 0;
    int steps = 0;
    for (Batch batch = iter.next(); batch.size() > 0; batch = iter.next()) {
      Tensor logits = model_.forward(batch.inputs, /*training=*/true);
      LossResult loss = softmax_cross_entropy(logits, batch.labels);
      model_.backward(loss.grad);
      optimizer.step();
      loss_sum += loss.loss;
      ++steps;
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_loss = steps > 0 ? loss_sum / steps : 0.0;
    record.val_accuracy = val.valid() ? evaluate(model_, val) : 0.0;
    history.epochs.push_back(record);

    if (record.val_accuracy > history.best_accuracy) {
      history.best_accuracy = record.val_accuracy;
      history.best_epoch = epoch;
      since_best = 0;
    } else {
      ++since_best;
    }
    if (options_.patience > 0 && since_best >= options_.patience) {
      history.stopped_early = true;
      break;
    }
    if (options_.lr_decay_every > 0 && epoch % options_.lr_decay_every == 0) {
      optimizer.set_learning_rate(optimizer.options().learning_rate *
                                  options_.lr_decay);
    }
  }
  return history;
}

}  // namespace edgetune
