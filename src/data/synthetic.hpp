// Synthetic stand-ins for the paper's datasets (Table 1). Each generator is
// deterministic in (seed), class-conditional, and calibrated so that learning
// curves need both data volume and epochs — the property the multi-budget
// experiments (Fig 12/13) measure.
//
// Substitution record (DESIGN.md §2):
//   CIFAR-10         -> SynthImages     3x8x8 class-template images + noise
//   SpeechCommands   -> SynthAudio      1x256 class-frequency waveforms
//   AG News          -> SynthText       32-token topic-unigram sequences
//   COCO             -> SynthDetection  3x16x16 object-patch-on-clutter
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "data/workload.hpp"

namespace edgetune {

struct SyntheticConfig {
  std::int64_t num_samples = 2000;
  std::int64_t num_classes = 10;
  double noise = 1.0;      // additive noise stddev relative to signal
  std::uint64_t seed = 42;
};

/// 3x8x8 images: class-specific low-frequency template + per-sample jitter.
std::unique_ptr<Dataset> make_synth_images(const SyntheticConfig& config);

/// 1x256 waveforms: class-specific base frequency with harmonics + noise.
std::unique_ptr<Dataset> make_synth_audio(const SyntheticConfig& config);

/// 32-token id sequences drawn from class-specific unigram mixtures
/// (vocab 200, topic words shared across classes to make the task non-trivial).
std::unique_ptr<Dataset> make_synth_text(const SyntheticConfig& config);

/// 3x16x16 cluttered scenes with one class-template object patch at a random
/// position; label is the object class.
std::unique_ptr<Dataset> make_synth_detection(const SyntheticConfig& config);

/// Table-1 style record: the paper's workload roster and our synthetic
/// stand-ins. `train_samples`/`test_samples` are the PAPER's counts — the
/// device cost model prices full-scale epochs against these.
struct WorkloadDataInfo {
  const char* id;
  const char* type;
  const char* model;
  const char* paper_dataset;
  const char* datasize;
  const char* synthetic;
  std::int64_t train_samples;
  std::int64_t test_samples;
};

/// Paper Table 1 row for a workload.
const WorkloadDataInfo& workload_info(WorkloadKind kind) noexcept;

/// Builds the synthetic dataset matching a workload's proxy model input.
/// `num_classes` must match the model built by build_workload_model.
std::unique_ptr<Dataset> make_workload_data(WorkloadKind kind,
                                            std::int64_t num_samples,
                                            std::uint64_t seed);

/// Default class counts per workload (kept in sync with models.cpp).
std::int64_t workload_num_classes(WorkloadKind kind) noexcept;

}  // namespace edgetune
