#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace edgetune {

namespace {

/// Smooth 2-d random field: sum of a few low-frequency sin/cos terms whose
/// coefficients come from `rng`. Values roughly in [-1, 1].
Tensor smooth_field(std::int64_t channels, std::int64_t h, std::int64_t w,
                    Rng& rng) {
  Tensor t({channels, h, w});
  struct Term {
    double fx, fy, phase, amp;
  };
  for (std::int64_t c = 0; c < channels; ++c) {
    Term terms[3];
    for (auto& term : terms) {
      term.fx = rng.uniform_int(1, 3);
      term.fy = rng.uniform_int(1, 3);
      term.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      term.amp = rng.uniform(0.4, 1.0);
    }
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double v = 0.0;
        for (const auto& term : terms) {
          v += term.amp *
               std::sin(2.0 * std::numbers::pi *
                            (term.fx * static_cast<double>(x) /
                                 static_cast<double>(w) +
                             term.fy * static_cast<double>(y) /
                                 static_cast<double>(h)) +
                        term.phase);
        }
        t[(c * h + y) * w + x] = static_cast<float>(v / 3.0);
      }
    }
  }
  return t;
}

}  // namespace

std::unique_ptr<Dataset> make_synth_images(const SyntheticConfig& config) {
  const std::int64_t ch = 3, h = 8, w = 8;
  auto dataset = std::make_unique<Dataset>(Shape{ch, h, w},
                                           config.num_classes);
  dataset->reserve(config.num_samples);
  Rng master(config.seed);
  Rng template_rng = master.split();
  std::vector<Tensor> templates;
  templates.reserve(static_cast<std::size_t>(config.num_classes));
  for (std::int64_t c = 0; c < config.num_classes; ++c) {
    templates.push_back(smooth_field(ch, h, w, template_rng));
  }
  Rng sample_rng = master.split();
  for (std::int64_t i = 0; i < config.num_samples; ++i) {
    const std::int64_t label = sample_rng.uniform_int(0, config.num_classes - 1);
    Tensor sample = templates[static_cast<std::size_t>(label)];
    for (auto& v : sample.vec()) {
      v += static_cast<float>(sample_rng.gaussian(0.0, config.noise));
    }
    dataset->add(std::move(sample), label);
  }
  return dataset;
}

std::unique_ptr<Dataset> make_synth_audio(const SyntheticConfig& config) {
  const std::int64_t len = 256;
  auto dataset =
      std::make_unique<Dataset>(Shape{1, len}, config.num_classes);
  dataset->reserve(config.num_samples);
  Rng sample_rng(config.seed);
  for (std::int64_t i = 0; i < config.num_samples; ++i) {
    const std::int64_t label = sample_rng.uniform_int(0, config.num_classes - 1);
    // Class-specific fundamental frequency, interleaved so neighbouring
    // classes are not adjacent in frequency (makes the task non-trivial).
    const double freq = 4.0 + 2.5 * static_cast<double>(
                                  (label * 7) % config.num_classes);
    const double phase = sample_rng.uniform(0.0, 2.0 * std::numbers::pi);
    Tensor sample({1, len});
    for (std::int64_t t = 0; t < len; ++t) {
      const double x = 2.0 * std::numbers::pi * freq *
                       static_cast<double>(t) / static_cast<double>(len);
      double v = std::sin(x + phase) + 0.4 * std::sin(2.0 * x + phase);
      v += sample_rng.gaussian(0.0, config.noise);
      sample[t] = static_cast<float>(v);
    }
    dataset->add(std::move(sample), label);
  }
  return dataset;
}

std::unique_ptr<Dataset> make_synth_text(const SyntheticConfig& config) {
  const std::int64_t len = 32;
  const std::int64_t vocab = 200;  // matches the proxy TextRNN embedding
  auto dataset = std::make_unique<Dataset>(Shape{len}, config.num_classes);
  dataset->reserve(config.num_samples);
  Rng sample_rng(config.seed);
  // Each class owns a band of topic tokens; bands overlap by half so classes
  // share vocabulary and separation requires sequence statistics.
  const std::int64_t band = 24;
  const std::int64_t band_stride = 12;
  // Topic-word probability: higher noise -> fewer topic words per sequence.
  const double topic_p = std::clamp(0.6 / std::max(0.25, config.noise), 0.1, 0.9);
  for (std::int64_t i = 0; i < config.num_samples; ++i) {
    const std::int64_t label = sample_rng.uniform_int(0, config.num_classes - 1);
    const std::int64_t band_start = (label * band_stride) % (vocab - band);
    Tensor sample({len});
    for (std::int64_t t = 0; t < len; ++t) {
      std::int64_t token;
      if (sample_rng.bernoulli(topic_p)) {
        token = band_start + sample_rng.uniform_int(0, band - 1);
      } else {
        token = sample_rng.uniform_int(0, vocab - 1);
      }
      sample[t] = static_cast<float>(token);
    }
    dataset->add(std::move(sample), label);
  }
  return dataset;
}

std::unique_ptr<Dataset> make_synth_detection(const SyntheticConfig& config) {
  const std::int64_t ch = 3, h = 16, w = 16, patch = 6;
  auto dataset =
      std::make_unique<Dataset>(Shape{ch, h, w}, config.num_classes);
  dataset->reserve(config.num_samples);
  Rng master(config.seed);
  Rng template_rng = master.split();
  std::vector<Tensor> templates;
  templates.reserve(static_cast<std::size_t>(config.num_classes));
  for (std::int64_t c = 0; c < config.num_classes; ++c) {
    templates.push_back(smooth_field(ch, patch, patch, template_rng));
  }
  Rng sample_rng = master.split();
  for (std::int64_t i = 0; i < config.num_samples; ++i) {
    const std::int64_t label = sample_rng.uniform_int(0, config.num_classes - 1);
    Tensor sample({ch, h, w});
    // Cluttered background.
    for (auto& v : sample.vec()) {
      v = static_cast<float>(sample_rng.gaussian(0.0, 0.5 * config.noise));
    }
    // Object patch at a random position, amplitude 1.5 above clutter.
    const std::int64_t oy = sample_rng.uniform_int(0, h - patch);
    const std::int64_t ox = sample_rng.uniform_int(0, w - patch);
    const Tensor& tmpl = templates[static_cast<std::size_t>(label)];
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t y = 0; y < patch; ++y) {
        for (std::int64_t x = 0; x < patch; ++x) {
          sample[(c * h + oy + y) * w + ox + x] +=
              1.5f * tmpl[(c * patch + y) * patch + x];
        }
      }
    }
    dataset->add(std::move(sample), label);
  }
  return dataset;
}

const WorkloadDataInfo& workload_info(WorkloadKind kind) noexcept {
  static const WorkloadDataInfo kInfos[] = {
      {"IC", "Image Classification", "ResNet", "CIFAR10", "163 MB",
       "SynthImages 3x8x8", 50000, 10000},
      {"SR", "Speech Recognition", "M5", "Speech Commands", "8.17 GiB",
       "SynthAudio 1x256", 85511, 4890},
      {"NLP", "Natural Language Processing", "RNN", "AG News", "60.10 MB",
       "SynthText len-32", 120000, 7600},
      {"OD", "Object Detection", "YOLO", "COCO", "19 GB",
       "SynthDetection 3x16x16", 164000, 41000},
  };
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return kInfos[0];
    case WorkloadKind::kSpeech:
      return kInfos[1];
    case WorkloadKind::kNlp:
      return kInfos[2];
    case WorkloadKind::kDetection:
      return kInfos[3];
  }
  return kInfos[0];
}

std::int64_t workload_num_classes(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return 10;
    case WorkloadKind::kSpeech:
      return 10;
    case WorkloadKind::kNlp:
      return 4;
    case WorkloadKind::kDetection:
      return 8;
  }
  return 0;
}

std::unique_ptr<Dataset> make_workload_data(WorkloadKind kind,
                                            std::int64_t num_samples,
                                            std::uint64_t seed) {
  SyntheticConfig config;
  config.num_samples = num_samples;
  config.num_classes = workload_num_classes(kind);
  config.seed = seed;
  switch (kind) {
    case WorkloadKind::kImageClassification:
      config.noise = 0.9;
      return make_synth_images(config);
    case WorkloadKind::kSpeech:
      config.noise = 1.5;
      return make_synth_audio(config);
    case WorkloadKind::kNlp:
      config.noise = 2.2;
      return make_synth_text(config);
    case WorkloadKind::kDetection:
      config.noise = 1.0;
      return make_synth_detection(config);
  }
  return nullptr;
}

}  // namespace edgetune
