// The paper's workload taxonomy (Table 1): four task families, each pairing
// a synthetic dataset (src/data/synthetic.*) with a proxy model + analytic
// ArchSpec builder (src/models/models.*). The enum lives in data/ — the
// lowest layer that needs it — so both the dataset generators here and the
// model builders above can name a workload without an upward include
// (layer DAG, DESIGN §5.8).
#pragma once

namespace edgetune {

/// Paper workload ids (Table 1).
enum class WorkloadKind { kImageClassification, kSpeech, kNlp, kDetection };

/// Paper-style short name: "IC", "SR", "NLP", "OD".
inline const char* workload_kind_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kImageClassification:
      return "IC";
    case WorkloadKind::kSpeech:
      return "SR";
    case WorkloadKind::kNlp:
      return "NLP";
    case WorkloadKind::kDetection:
      return "OD";
  }
  return "??";
}

}  // namespace edgetune
