// Trainer: the one train-eval loop used by the trial runner, finalization,
// and the examples. Runs SGD over a DatasetView, evaluates on a validation
// view each epoch, and supports step-decay learning rates and
// patience-based early stopping.
#pragma once

#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace edgetune {

struct TrainerOptions {
  std::int64_t batch_size = 16;
  int epochs = 10;
  SgdOptions sgd;
  /// Multiply the learning rate by `lr_decay` every `lr_decay_every` epochs
  /// (0 disables).
  double lr_decay = 1.0;
  int lr_decay_every = 0;
  /// Stop when validation accuracy has not improved for `patience` epochs
  /// (0 disables early stopping).
  int patience = 0;
};

struct EpochRecord {
  int epoch = 0;           // 1-based
  double train_loss = 0;   // mean over steps
  double val_accuracy = 0;
};

struct TrainingHistory {
  std::vector<EpochRecord> epochs;
  double best_accuracy = 0;
  int best_epoch = 0;      // 1-based; 0 if never evaluated
  bool stopped_early = false;

  [[nodiscard]] int epochs_run() const noexcept {
    return static_cast<int>(epochs.size());
  }
};

class Trainer {
 public:
  Trainer(Layer& model, TrainerOptions options, Rng& rng);

  /// Trains on `train`, evaluating on `val` after every epoch.
  [[nodiscard]] Result<TrainingHistory> fit(const DatasetView& train,
                                            const DatasetView& val);

  /// Validation accuracy of `model` on `view` (no parameter updates).
  static double evaluate(Layer& model, const DatasetView& view);

 private:
  Layer& model_;
  TrainerOptions options_;
  Rng rng_;
};

}  // namespace edgetune
