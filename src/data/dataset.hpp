// Dataset abstractions: in-memory sample store, index views for train/val
// splits and budget-driven dataset fractions (paper §2.2), batch iteration.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace edgetune {

/// A mini-batch: stacked inputs [B, ...sample_shape] plus integer labels.
struct Batch {
  Tensor inputs;
  std::vector<std::int64_t> labels;
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(labels.size());
  }
};

/// Immutable in-memory dataset of (sample, label) pairs.
class Dataset {
 public:
  Dataset(Shape sample_shape, std::int64_t num_classes)
      : sample_shape_(std::move(sample_shape)), num_classes_(num_classes) {}

  void reserve(std::int64_t n) {
    samples_.reserve(static_cast<std::size_t>(n));
    labels_.reserve(static_cast<std::size_t>(n));
  }

  void add(Tensor sample, std::int64_t label) {
    samples_.push_back(std::move(sample));
    labels_.push_back(label);
  }

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(samples_.size());
  }
  [[nodiscard]] const Shape& sample_shape() const noexcept {
    return sample_shape_;
  }
  [[nodiscard]] std::int64_t num_classes() const noexcept {
    return num_classes_;
  }
  [[nodiscard]] const Tensor& sample(std::int64_t i) const {
    return samples_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::int64_t label(std::int64_t i) const {
    return labels_[static_cast<std::size_t>(i)];
  }

  /// Stacks the given indices into a contiguous batch.
  [[nodiscard]] Batch make_batch(const std::vector<std::int64_t>& indices) const;

 private:
  Shape sample_shape_;
  std::int64_t num_classes_;
  std::vector<Tensor> samples_;
  std::vector<std::int64_t> labels_;
};

/// A subset of a dataset by index list; cheap to copy, never owns samples.
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(const Dataset* base, std::vector<std::int64_t> indices)
      : base_(base), indices_(std::move(indices)) {}

  /// Full view over a dataset.
  static DatasetView all(const Dataset& dataset);

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(indices_.size());
  }
  [[nodiscard]] const Dataset& base() const noexcept { return *base_; }
  [[nodiscard]] bool valid() const noexcept { return base_ != nullptr; }

  /// First `fraction` of this view (deterministic prefix; callers shuffle
  /// once up-front so prefixes are unbiased). fraction clamped to (0, 1].
  [[nodiscard]] DatasetView fraction(double fraction) const;

  /// Random (seeded) split into two disjoint views (e.g. 80/20 train/val).
  [[nodiscard]] std::pair<DatasetView, DatasetView> split(
      double first_fraction, Rng& rng) const;

  /// Shuffled copy of this view.
  [[nodiscard]] DatasetView shuffled(Rng& rng) const;

  [[nodiscard]] Batch batch(std::int64_t begin, std::int64_t count) const;

 private:
  const Dataset* base_ = nullptr;
  std::vector<std::int64_t> indices_;
};

/// Iterates a view in mini-batches, reshuffling each epoch.
class BatchIterator {
 public:
  BatchIterator(DatasetView view, std::int64_t batch_size, Rng& rng)
      : view_(std::move(view)), batch_size_(batch_size), rng_(rng.split()) {}

  /// Starts a new epoch (reshuffles).
  void begin_epoch();

  /// Next batch, or an empty batch at the end of the epoch.
  [[nodiscard]] Batch next();

  [[nodiscard]] std::int64_t batches_per_epoch() const noexcept {
    return (view_.size() + batch_size_ - 1) / batch_size_;
  }

 private:
  DatasetView view_;
  std::int64_t batch_size_;
  Rng rng_;
  std::int64_t cursor_ = 0;
  DatasetView epoch_view_;
};

}  // namespace edgetune
