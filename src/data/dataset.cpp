#include "data/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace edgetune {

Batch Dataset::make_batch(const std::vector<std::int64_t>& indices) const {
  Batch batch;
  if (indices.empty()) return batch;
  const std::int64_t per_sample = shape_numel(sample_shape_);
  Shape batch_shape;
  batch_shape.push_back(static_cast<std::int64_t>(indices.size()));
  for (std::int64_t d : sample_shape_) batch_shape.push_back(d);
  batch.inputs = Tensor(std::move(batch_shape));
  batch.labels.reserve(indices.size());
  float* dst = batch.inputs.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const Tensor& s = sample(indices[i]);
    assert(s.numel() == per_sample);
    std::copy(s.data(), s.data() + per_sample,
              dst + static_cast<std::int64_t>(i) * per_sample);
    batch.labels.push_back(label(indices[i]));
  }
  return batch;
}

DatasetView DatasetView::all(const Dataset& dataset) {
  std::vector<std::int64_t> indices(static_cast<std::size_t>(dataset.size()));
  std::iota(indices.begin(), indices.end(), 0);
  return {&dataset, std::move(indices)};
}

DatasetView DatasetView::fraction(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  auto count = static_cast<std::int64_t>(
      fraction * static_cast<double>(indices_.size()) + 0.5);
  count = std::clamp<std::int64_t>(count, 1, size());
  return {base_, std::vector<std::int64_t>(
                     indices_.begin(), indices_.begin() + count)};
}

std::pair<DatasetView, DatasetView> DatasetView::split(double first_fraction,
                                                       Rng& rng) const {
  std::vector<std::int64_t> shuffled_idx = indices_;
  rng.shuffle(shuffled_idx);
  const auto cut = static_cast<std::int64_t>(
      first_fraction * static_cast<double>(shuffled_idx.size()));
  DatasetView first{base_, std::vector<std::int64_t>(
                               shuffled_idx.begin(), shuffled_idx.begin() + cut)};
  DatasetView second{base_, std::vector<std::int64_t>(
                                shuffled_idx.begin() + cut, shuffled_idx.end())};
  return {std::move(first), std::move(second)};
}

DatasetView DatasetView::shuffled(Rng& rng) const {
  std::vector<std::int64_t> idx = indices_;
  rng.shuffle(idx);
  return {base_, std::move(idx)};
}

Batch DatasetView::batch(std::int64_t begin, std::int64_t count) const {
  const std::int64_t end = std::min(begin + count, size());
  if (begin >= end) return Batch{};
  std::vector<std::int64_t> idx(indices_.begin() + begin,
                                indices_.begin() + end);
  return base_->make_batch(idx);
}

void BatchIterator::begin_epoch() {
  epoch_view_ = view_.shuffled(rng_);
  cursor_ = 0;
}

Batch BatchIterator::next() {
  if (!epoch_view_.valid()) begin_epoch();
  if (cursor_ >= epoch_view_.size()) return Batch{};
  Batch b = epoch_view_.batch(cursor_, batch_size_);
  cursor_ += batch_size_;
  return b;
}

}  // namespace edgetune
