#include "search/suggest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace edgetune {

void TpeSuggestor::observe(const Observation& obs) {
  // Retract the constant-liar placeholder this result fulfils, if any: the
  // lie was a stand-in for exactly this in-flight config.
  const auto lie = std::find_if(
      pending_.begin(), pending_.end(),
      [&](const Observation& p) { return p.config == obs.config; });
  if (lie != pending_.end()) pending_.erase(lie);
  history_.push_back(obs);
}

Observation TpeSuggestor::lie_for(const Config& config) const {
  Observation lie;
  lie.config = config;
  // CL-min: lie with the best objective seen so far, at the highest fidelity
  // observed, so the pending point joins the "good" pool and repels the next
  // draw in the batch. Values are irrelevant while history is below
  // min_observations (suggest() falls back to random sampling there).
  lie.objective = std::numeric_limits<double>::infinity();
  for (const Observation& obs : history_) {
    lie.objective = std::min(lie.objective, obs.objective);
    lie.resource = std::max(lie.resource, obs.resource);
  }
  if (history_.empty()) lie.objective = 0.0;
  return lie;
}

std::vector<Config> TpeSuggestor::suggest_batch(int n, Rng& rng) {
  std::vector<Config> out;
  out.reserve(static_cast<std::size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) {
    Config config = suggest(rng);
    // Every suggestion is an in-flight trial until its observe() arrives;
    // later draws in this batch see it as a pending (lied) observation.
    pending_.push_back(lie_for(config));
    out.push_back(std::move(config));
  }
  return out;
}

double TpeSuggestor::sample_kde(const ParamSpec& spec,
                                const std::vector<double>& values,
                                Rng& rng) const {
  if (values.empty()) return spec.sample(rng);
  if (spec.kind == ParamSpec::Kind::kCategorical) {
    // Categorical "KDE": smoothed empirical frequencies.
    std::vector<double> weights(spec.choices.size(), 0.5);
    for (double v : values) {
      for (std::size_t i = 0; i < spec.choices.size(); ++i) {
        if (std::abs(spec.choices[i] - v) < 1e-9) weights[i] += 1.0;
      }
    }
    double total = 0;
    for (double w : weights) total += w;
    double draw = rng.uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw <= 0) return spec.choices[i];
    }
    return spec.choices.back();
  }
  // Continuous: pick a kernel center, add Gaussian noise at the bandwidth.
  const double center = values[rng.bounded(values.size())];
  const double range = spec.hi - spec.lo;
  const double bandwidth =
      std::max(options_.bandwidth_floor * range,
               range / (1.0 + std::sqrt(static_cast<double>(values.size()))));
  return spec.clip(rng.gaussian(center, bandwidth));
}

double TpeSuggestor::log_density(const ParamSpec& spec,
                                 const std::vector<double>& values,
                                 double x) const {
  if (values.empty()) return 0.0;
  if (spec.kind == ParamSpec::Kind::kCategorical) {
    double count = 0.5;
    double total = 0.5 * static_cast<double>(spec.choices.size());
    for (double v : values) {
      total += 1.0;
      if (std::abs(v - x) < 1e-9) count += 1.0;
    }
    return std::log(count / total);
  }
  const double range = spec.hi - spec.lo;
  const double bandwidth =
      std::max(options_.bandwidth_floor * range,
               range / (1.0 + std::sqrt(static_cast<double>(values.size()))));
  double density = 0.0;
  for (double v : values) {
    const double z = (x - v) / bandwidth;
    density += std::exp(-0.5 * z * z);
  }
  density /= static_cast<double>(values.size()) * bandwidth *
             std::sqrt(2.0 * std::numbers::pi);
  return std::log(std::max(density, 1e-12));
}

Config TpeSuggestor::suggest(Rng& rng) {
  // Pending constant-liar placeholders count as observations: that is how a
  // batch's earlier (in-flight) proposals repel its later draws. With no
  // batch in flight this is exactly the seed's history-only path.
  std::vector<const Observation*> observations;
  observations.reserve(history_.size() + pending_.size());
  for (const auto& obs : history_) observations.push_back(&obs);
  for (const auto& obs : pending_) observations.push_back(&obs);

  if (observations.size() <
      static_cast<std::size_t>(options_.min_observations)) {
    return space_.sample(rng);
  }
  // Use observations from the highest budget that has enough data (BOHB's
  // rule: model the most informative fidelity).
  double best_resource = 0;
  std::size_t best_count = 0;
  for (const Observation* obs : observations) {
    std::size_t count = 0;
    for (const Observation* other : observations) {
      if (other->resource >= obs->resource) ++count;
    }
    if (count >= static_cast<std::size_t>(options_.min_observations) &&
        obs->resource > best_resource) {
      best_resource = obs->resource;
      best_count = count;
    }
  }
  std::vector<const Observation*> pool;
  for (const Observation* obs : observations) {
    if (best_count == 0 || obs->resource >= best_resource) {
      pool.push_back(obs);
    }
  }
  std::sort(pool.begin(), pool.end(),
            [](const Observation* a, const Observation* b) {
              return a->objective < b->objective;
            });
  const auto n_good = std::max<std::size_t>(
      2, static_cast<std::size_t>(options_.gamma *
                                  static_cast<double>(pool.size())));

  // The good/bad split per parameter depends only on the pool, not on the
  // candidate: computed once, outside the candidates loop. (The seed
  // rebuilt these vectors for every candidate — O(candidates x params x
  // pool) of identical work; the RNG draw order below is unchanged, so
  // results are bit-identical.)
  struct Split {
    const ParamSpec* spec;
    std::vector<double> good, bad;
  };
  std::vector<Split> splits;
  splits.reserve(space_.params().size());
  for (const auto& spec : space_.params()) {
    Split split{&spec, {}, {}};
    for (std::size_t i = 0; i < pool.size(); ++i) {
      auto it = pool[i]->config.find(spec.name);
      if (it == pool[i]->config.end()) continue;
      (i < n_good ? split.good : split.bad).push_back(it->second);
    }
    splits.push_back(std::move(split));
  }

  Config best_candidate;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < options_.candidates; ++c) {
    Config candidate;
    double score = 0.0;
    for (const Split& split : splits) {
      const double value = sample_kde(*split.spec, split.good, rng);
      candidate[split.spec->name] = value;
      score += log_density(*split.spec, split.good, value) -
               log_density(*split.spec, split.bad, value);
    }
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

}  // namespace edgetune
