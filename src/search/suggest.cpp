#include "search/suggest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace edgetune {

void TpeSuggestor::observe(const Observation& obs) {
  history_.push_back(obs);
}

double TpeSuggestor::sample_kde(const ParamSpec& spec,
                                const std::vector<double>& values,
                                Rng& rng) const {
  if (values.empty()) return spec.sample(rng);
  if (spec.kind == ParamSpec::Kind::kCategorical) {
    // Categorical "KDE": smoothed empirical frequencies.
    std::vector<double> weights(spec.choices.size(), 0.5);
    for (double v : values) {
      for (std::size_t i = 0; i < spec.choices.size(); ++i) {
        if (std::abs(spec.choices[i] - v) < 1e-9) weights[i] += 1.0;
      }
    }
    double total = 0;
    for (double w : weights) total += w;
    double draw = rng.uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw <= 0) return spec.choices[i];
    }
    return spec.choices.back();
  }
  // Continuous: pick a kernel center, add Gaussian noise at the bandwidth.
  const double center = values[rng.bounded(values.size())];
  const double range = spec.hi - spec.lo;
  const double bandwidth =
      std::max(options_.bandwidth_floor * range,
               range / (1.0 + std::sqrt(static_cast<double>(values.size()))));
  return spec.clip(rng.gaussian(center, bandwidth));
}

double TpeSuggestor::log_density(const ParamSpec& spec,
                                 const std::vector<double>& values,
                                 double x) const {
  if (values.empty()) return 0.0;
  if (spec.kind == ParamSpec::Kind::kCategorical) {
    double count = 0.5;
    double total = 0.5 * static_cast<double>(spec.choices.size());
    for (double v : values) {
      total += 1.0;
      if (std::abs(v - x) < 1e-9) count += 1.0;
    }
    return std::log(count / total);
  }
  const double range = spec.hi - spec.lo;
  const double bandwidth =
      std::max(options_.bandwidth_floor * range,
               range / (1.0 + std::sqrt(static_cast<double>(values.size()))));
  double density = 0.0;
  for (double v : values) {
    const double z = (x - v) / bandwidth;
    density += std::exp(-0.5 * z * z);
  }
  density /= static_cast<double>(values.size()) * bandwidth *
             std::sqrt(2.0 * std::numbers::pi);
  return std::log(std::max(density, 1e-12));
}

Config TpeSuggestor::suggest(Rng& rng) {
  if (history_.size() < static_cast<std::size_t>(options_.min_observations)) {
    return space_.sample(rng);
  }
  // Use observations from the highest budget that has enough data (BOHB's
  // rule: model the most informative fidelity).
  double best_resource = 0;
  std::size_t best_count = 0;
  for (const auto& obs : history_) {
    std::size_t count = 0;
    for (const auto& other : history_) {
      if (other.resource >= obs.resource) ++count;
    }
    if (count >= static_cast<std::size_t>(options_.min_observations) &&
        obs.resource > best_resource) {
      best_resource = obs.resource;
      best_count = count;
    }
  }
  std::vector<const Observation*> pool;
  for (const auto& obs : history_) {
    if (best_count == 0 || obs.resource >= best_resource) {
      pool.push_back(&obs);
    }
  }
  std::sort(pool.begin(), pool.end(),
            [](const Observation* a, const Observation* b) {
              return a->objective < b->objective;
            });
  const auto n_good = std::max<std::size_t>(
      2, static_cast<std::size_t>(options_.gamma *
                                  static_cast<double>(pool.size())));

  Config best_candidate;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < options_.candidates; ++c) {
    Config candidate;
    double score = 0.0;
    for (const auto& spec : space_.params()) {
      std::vector<double> good, bad;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        auto it = pool[i]->config.find(spec.name);
        if (it == pool[i]->config.end()) continue;
        (i < n_good ? good : bad).push_back(it->second);
      }
      const double value = sample_kde(spec, good, rng);
      candidate[spec.name] = value;
      score += log_density(spec, good, value) -
               log_density(spec, bad, value);
    }
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

}  // namespace edgetune
