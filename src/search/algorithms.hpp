// Search algorithms (§4.2): grid search, random search, HyperBand (Li et
// al., JMLR'17) and BOHB (= HyperBand brackets + TPE suggestions). All
// minimize; evaluation is a callback so the tuning servers can plug in real
// training trials with any budget policy.
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "search/suggest.hpp"

namespace edgetune {

class ThreadPool;

/// Evaluates a config at `resource` budget units; returns the objective
/// (lower is better). `resource` is in [min_resource, max_resource].
using EvalFn = std::function<double(const Config& config, double resource)>;

/// One evaluation request inside a batch. `trial_index` is the trial's
/// global submission index across the whole search, so evaluators can derive
/// per-trial deterministic state (RNG streams, log slots) that does not
/// depend on completion order.
struct EvalRequest {
  int trial_index = 0;
  Config config;
  double resource = 0;
};

/// Evaluates a request; must be thread-safe when handed to the parallel
/// adapter below.
using TrialEvalFn = std::function<double(const EvalRequest& request)>;

/// Evaluates a whole batch — one HyperBand rung, or a random/grid search's
/// full candidate set — and returns the objectives in request order.
/// Implementations may evaluate requests concurrently; requests within one
/// batch must not depend on each other's results.
using BatchEvalFn =
    std::function<std::vector<double>(const std::vector<EvalRequest>& batch)>;

/// Serial adapter: evaluates requests one at a time, in submission order.
/// This is what `SearchAlgorithm::optimize(EvalFn)` wraps, so legacy callers
/// keep byte-identical behavior.
BatchEvalFn serial_batch_eval(EvalFn eval);
BatchEvalFn serial_batch_eval(TrialEvalFn eval);

/// Parallel adapter: dispatches every request of a batch onto `pool` and
/// joins. `eval` must be thread-safe and deterministic per request for
/// parallel runs to reproduce serial results.
BatchEvalFn parallel_batch_eval(EvalFn eval, ThreadPool& pool);
BatchEvalFn parallel_batch_eval(TrialEvalFn eval, ThreadPool& pool);

struct TrialRecord {
  int id = 0;
  Config config;
  double resource = 0;
  double objective = 0;
};

struct SearchResult {
  Config best_config;
  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<TrialRecord> trials;

  void record(const Config& config, double resource, double objective) {
    trials.push_back(
        {static_cast<int>(trials.size()), config, resource, objective});
    if (objective < best_objective) {
      best_objective = objective;
      best_config = config;
    }
  }
};

class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;
  /// Serial entry point: wraps `eval` in the serial batch adapter. Evaluation
  /// order and results are identical to `optimize_batch` with that adapter.
  virtual SearchResult optimize(const EvalFn& eval, Rng& rng);
  /// Batched entry point: the algorithm hands independent trial sets (whole
  /// rungs / candidate sets) to `eval`, which may run them concurrently.
  virtual SearchResult optimize_batch(const BatchEvalFn& eval, Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exhaustive grid at full budget; the whole grid is one batch.
class GridSearch : public SearchAlgorithm {
 public:
  GridSearch(SearchSpace space, double max_resource,
             int max_points_per_param = 4)
      : space_(std::move(space)),
        max_resource_(max_resource),
        max_points_(max_points_per_param) {}

  SearchResult optimize_batch(const BatchEvalFn& eval, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "grid"; }

 private:
  SearchSpace space_;
  double max_resource_;
  int max_points_;
};

/// N i.i.d. samples at full budget; the whole candidate set is one batch.
class RandomSearch : public SearchAlgorithm {
 public:
  RandomSearch(SearchSpace space, double max_resource, int num_trials)
      : space_(std::move(space)),
        max_resource_(max_resource),
        num_trials_(num_trials) {}

  SearchResult optimize_batch(const BatchEvalFn& eval, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  SearchSpace space_;
  double max_resource_;
  int num_trials_;
};

struct HyperBandOptions {
  double min_resource = 1;
  double max_resource = 16;
  double eta = 2;  // the paper's reduction factor (§2.2, §4.3)
  int max_brackets = 0;  // 0 => all brackets (s_max+1)
};

/// HyperBand: successive-halving brackets over resource levels, configs
/// drawn from a pluggable Suggestor (random => HyperBand, TPE => BOHB).
/// Every rung is one batch: its survivors are evaluated concurrently when
/// the evaluator supports it.
class HyperBand : public SearchAlgorithm {
 public:
  HyperBand(SearchSpace space, HyperBandOptions options,
            std::unique_ptr<Suggestor> suggestor);

  SearchResult optimize_batch(const BatchEvalFn& eval, Rng& rng) override;
  [[nodiscard]] std::string name() const override {
    return "hyperband+" + suggestor_->name();
  }

 private:
  SearchSpace space_;
  HyperBandOptions options_;
  std::unique_ptr<Suggestor> suggestor_;
};

/// Bayesian optimization: N TPE-suggested trials at full budget (the
/// HyperPower baseline's search core). With `batch_size` 1 every suggestion
/// depends on all previous observations and the search is byte-identical to
/// the historical serial TPE. With `batch_size` > 1 each round proposes that
/// many configs via the suggestor's constant-liar batch strategy and submits
/// them as ONE batch, so a parallel evaluator keeps that many trial workers
/// busy (Ray Tune's batched-suggestion model).
class TpeSearch : public SearchAlgorithm {
 public:
  TpeSearch(SearchSpace space, double max_resource, int num_trials,
            TpeOptions tpe = {}, int batch_size = 1)
      : space_(space),
        max_resource_(max_resource),
        num_trials_(num_trials),
        batch_size_(batch_size),
        suggestor_(std::move(space), tpe) {}

  SearchResult optimize_batch(const BatchEvalFn& eval, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "tpe"; }

 private:
  SearchSpace space_;
  double max_resource_;
  int num_trials_;
  int batch_size_;
  TpeSuggestor suggestor_;
};

/// BOHB = HyperBand + TPE.
std::unique_ptr<SearchAlgorithm> make_bohb(SearchSpace space,
                                           HyperBandOptions options,
                                           TpeOptions tpe = {});
std::unique_ptr<SearchAlgorithm> make_hyperband(SearchSpace space,
                                                HyperBandOptions options);

/// Factory by name: "grid", "random", "hyperband", "bohb", "tpe" (§3.1: the
/// user picks the algorithm for each server independently). Validates
/// `options` resource bounds for the HyperBand-family algorithms (the
/// bracket count is log(max/min) — a non-positive min or inverted range
/// would silently yield an empty search). `batch_size` is the number of
/// configs model-based algorithms propose per evaluation batch (TPE's
/// constant-liar width; callers pass their trial-worker count).
Result<std::unique_ptr<SearchAlgorithm>> make_search_algorithm(
    const std::string& name, SearchSpace space, HyperBandOptions options,
    int random_trials = 16, int batch_size = 1);

}  // namespace edgetune
