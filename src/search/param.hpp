// Parameter-space definitions shared by every search algorithm (§4.2).
// All values are carried as doubles in a named Config; categorical domains
// enumerate their numeric choices (e.g. layers in {18, 34, 50}).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace edgetune {

/// One parameter assignment set: name -> value.
using Config = std::map<std::string, double>;

std::string config_to_string(const Config& config);

/// Stable identity for caching/deduplication.
std::uint64_t config_hash(const Config& config);

struct ParamSpec {
  enum class Kind { kCategorical, kInt, kFloat };

  std::string name;
  Kind kind = Kind::kFloat;
  std::vector<double> choices;  // kCategorical
  double lo = 0.0, hi = 1.0;    // kInt / kFloat (inclusive)
  bool log_scale = false;       // kInt / kFloat

  static ParamSpec categorical(std::string name, std::vector<double> choices);
  static ParamSpec integer(std::string name, double lo, double hi,
                           bool log_scale = false);
  static ParamSpec real(std::string name, double lo, double hi,
                        bool log_scale = false);

  /// Uniform draw from the domain.
  [[nodiscard]] double sample(Rng& rng) const;
  /// Snaps an arbitrary value onto the domain (round + clamp / nearest
  /// choice).
  [[nodiscard]] double clip(double value) const;
  /// Evenly spaced grid of at most `max_points` domain values.
  [[nodiscard]] std::vector<double> grid(int max_points) const;
  /// True if `value` lies in the domain (after rounding for ints).
  [[nodiscard]] bool contains(double value) const;
};

class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<ParamSpec> params)
      : params_(std::move(params)) {}

  SearchSpace& add(ParamSpec spec) {
    params_.push_back(std::move(spec));
    return *this;
  }

  [[nodiscard]] const std::vector<ParamSpec>& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return params_.size(); }
  [[nodiscard]] const ParamSpec* find(const std::string& name) const;

  [[nodiscard]] Config sample(Rng& rng) const;
  /// Cartesian product of per-parameter grids (each capped at
  /// `max_points_per_param`).
  [[nodiscard]] std::vector<Config> grid(int max_points_per_param) const;
  /// Error if the config misses a parameter or has out-of-domain values.
  [[nodiscard]] Status validate(const Config& config) const;

 private:
  std::vector<ParamSpec> params_;
};

}  // namespace edgetune
