#include "search/algorithms.hpp"

#include <algorithm>
#include <cmath>

namespace edgetune {

SearchResult GridSearch::optimize(const EvalFn& eval, Rng& /*rng*/) {
  SearchResult result;
  for (const Config& config : space_.grid(max_points_)) {
    result.record(config, max_resource_, eval(config, max_resource_));
  }
  return result;
}

SearchResult RandomSearch::optimize(const EvalFn& eval, Rng& rng) {
  SearchResult result;
  for (int i = 0; i < num_trials_; ++i) {
    Config config = space_.sample(rng);
    result.record(config, max_resource_, eval(config, max_resource_));
  }
  return result;
}

HyperBand::HyperBand(SearchSpace space, HyperBandOptions options,
                     std::unique_ptr<Suggestor> suggestor)
    : space_(std::move(space)),
      options_(options),
      suggestor_(std::move(suggestor)) {}

SearchResult HyperBand::optimize(const EvalFn& eval, Rng& rng) {
  SearchResult result;
  const double eta = std::max(2.0, options_.eta);
  const double r_ratio = options_.max_resource / options_.min_resource;
  const int s_max =
      static_cast<int>(std::floor(std::log(r_ratio) / std::log(eta)));
  int brackets = s_max + 1;
  if (options_.max_brackets > 0) {
    brackets = std::min(brackets, options_.max_brackets);
  }

  // Brackets from most aggressive (many configs, tiny budget) to least.
  for (int bracket = 0; bracket < brackets; ++bracket) {
    const int s = s_max - bracket;
    // Initial configs / budget for this bracket (HyperBand's n, r).
    const auto n0 = static_cast<int>(
        std::ceil(static_cast<double>(s_max + 1) / (s + 1) *
                  std::pow(eta, s)));
    const double r0 = options_.max_resource * std::pow(eta, -s);

    struct Rung {
      Config config;
      double objective;
    };
    std::vector<Rung> survivors;
    survivors.reserve(static_cast<std::size_t>(n0));
    for (int i = 0; i < n0; ++i) {
      survivors.push_back({suggestor_->suggest(rng), 0.0});
    }

    for (int rung = 0; rung <= s; ++rung) {
      const double resource =
          std::min(options_.max_resource, r0 * std::pow(eta, rung));
      for (auto& entry : survivors) {
        entry.objective = eval(entry.config, resource);
        result.record(entry.config, resource, entry.objective);
        suggestor_->observe({entry.config, resource, entry.objective});
      }
      if (rung == s) break;
      // Keep the top 1/eta.
      std::sort(survivors.begin(), survivors.end(),
                [](const Rung& a, const Rung& b) {
                  return a.objective < b.objective;
                });
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::floor(static_cast<double>(survivors.size()) / eta)));
      survivors.resize(keep);
    }
  }
  return result;
}

SearchResult TpeSearch::optimize(const EvalFn& eval, Rng& rng) {
  SearchResult result;
  for (int i = 0; i < num_trials_; ++i) {
    Config config = suggestor_.suggest(rng);
    const double objective = eval(config, max_resource_);
    result.record(config, max_resource_, objective);
    suggestor_.observe({config, max_resource_, objective});
  }
  return result;
}

std::unique_ptr<SearchAlgorithm> make_bohb(SearchSpace space,
                                           HyperBandOptions options,
                                           TpeOptions tpe) {
  auto suggestor = std::make_unique<TpeSuggestor>(space, tpe);
  return std::make_unique<HyperBand>(std::move(space), options,
                                     std::move(suggestor));
}

std::unique_ptr<SearchAlgorithm> make_hyperband(SearchSpace space,
                                                HyperBandOptions options) {
  auto suggestor = std::make_unique<RandomSuggestor>(space);
  return std::make_unique<HyperBand>(std::move(space), options,
                                     std::move(suggestor));
}

Result<std::unique_ptr<SearchAlgorithm>> make_search_algorithm(
    const std::string& name, SearchSpace space, HyperBandOptions options,
    int random_trials) {
  if (name == "grid") {
    return std::unique_ptr<SearchAlgorithm>(
        std::make_unique<GridSearch>(std::move(space), options.max_resource));
  }
  if (name == "random") {
    return std::unique_ptr<SearchAlgorithm>(std::make_unique<RandomSearch>(
        std::move(space), options.max_resource, random_trials));
  }
  if (name == "hyperband") {
    return make_hyperband(std::move(space), options);
  }
  if (name == "bohb") {
    return make_bohb(std::move(space), options);
  }
  if (name == "tpe") {
    return std::unique_ptr<SearchAlgorithm>(std::make_unique<TpeSearch>(
        std::move(space), options.max_resource, random_trials));
  }
  return Status::not_found("unknown search algorithm: " + name);
}

}  // namespace edgetune
