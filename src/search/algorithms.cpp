#include "search/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <string>

#include "common/thread_pool.hpp"

namespace edgetune {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Objective for request `i`, tolerating short evaluator replies.
double objective_at(const std::vector<double>& objectives, std::size_t i) {
  return i < objectives.size() ? objectives[i] : kInf;
}

}  // namespace

BatchEvalFn serial_batch_eval(EvalFn eval) {
  return serial_batch_eval(TrialEvalFn([eval = std::move(eval)](
                                           const EvalRequest& request) {
    return eval(request.config, request.resource);
  }));
}

BatchEvalFn serial_batch_eval(TrialEvalFn eval) {
  return [eval = std::move(eval)](const std::vector<EvalRequest>& batch) {
    std::vector<double> objectives;
    objectives.reserve(batch.size());
    for (const EvalRequest& request : batch) {
      objectives.push_back(eval(request));
    }
    return objectives;
  };
}

BatchEvalFn parallel_batch_eval(EvalFn eval, ThreadPool& pool) {
  return parallel_batch_eval(
      TrialEvalFn([eval = std::move(eval)](const EvalRequest& request) {
        return eval(request.config, request.resource);
      }),
      pool);
}

BatchEvalFn parallel_batch_eval(TrialEvalFn eval, ThreadPool& pool) {
  return [eval = std::move(eval),
          &pool](const std::vector<EvalRequest>& batch) {
    std::vector<std::future<double>> pending;
    pending.reserve(batch.size());
    for (const EvalRequest& request : batch) {
      pending.push_back(pool.submit([&eval, &request] {
        return eval(request);
      }));
    }
    std::vector<double> objectives;
    objectives.reserve(batch.size());
    for (std::future<double>& f : pending) {
      objectives.push_back(f.get());
    }
    return objectives;
  };
}

SearchResult SearchAlgorithm::optimize(const EvalFn& eval, Rng& rng) {
  return optimize_batch(serial_batch_eval(eval), rng);
}

SearchResult GridSearch::optimize_batch(const BatchEvalFn& eval,
                                        Rng& /*rng*/) {
  SearchResult result;
  std::vector<EvalRequest> batch;
  for (Config& config : space_.grid(max_points_)) {
    batch.push_back(
        {static_cast<int>(batch.size()), std::move(config), max_resource_});
  }
  const std::vector<double> objectives = eval(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    result.record(batch[i].config, max_resource_, objective_at(objectives, i));
  }
  return result;
}

SearchResult RandomSearch::optimize_batch(const BatchEvalFn& eval, Rng& rng) {
  SearchResult result;
  std::vector<EvalRequest> batch;
  batch.reserve(static_cast<std::size_t>(num_trials_));
  for (int i = 0; i < num_trials_; ++i) {
    batch.push_back({i, space_.sample(rng), max_resource_});
  }
  const std::vector<double> objectives = eval(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    result.record(batch[i].config, max_resource_, objective_at(objectives, i));
  }
  return result;
}

HyperBand::HyperBand(SearchSpace space, HyperBandOptions options,
                     std::unique_ptr<Suggestor> suggestor)
    : space_(std::move(space)),
      options_(options),
      suggestor_(std::move(suggestor)) {}

SearchResult HyperBand::optimize_batch(const BatchEvalFn& eval, Rng& rng) {
  SearchResult result;
  const double eta = std::max(2.0, options_.eta);
  const double r_ratio = options_.max_resource / options_.min_resource;
  const int s_max =
      static_cast<int>(std::floor(std::log(r_ratio) / std::log(eta)));
  int brackets = s_max + 1;
  if (options_.max_brackets > 0) {
    brackets = std::min(brackets, options_.max_brackets);
  }
  int next_trial = 0;  // global submission index across all brackets

  // Brackets from most aggressive (many configs, tiny budget) to least.
  for (int bracket = 0; bracket < brackets; ++bracket) {
    const int s = s_max - bracket;
    // Initial configs / budget for this bracket (HyperBand's n, r).
    const auto n0 = static_cast<int>(
        std::ceil(static_cast<double>(s_max + 1) / (s + 1) *
                  std::pow(eta, s)));
    const double r0 = options_.max_resource * std::pow(eta, -s);

    struct Rung {
      Config config;
      double objective;
    };
    std::vector<Rung> survivors;
    survivors.reserve(static_cast<std::size_t>(n0));
    for (int i = 0; i < n0; ++i) {
      survivors.push_back({suggestor_->suggest(rng), 0.0});
    }

    for (int rung = 0; rung <= s; ++rung) {
      const double resource =
          std::min(options_.max_resource, r0 * std::pow(eta, rung));
      // The whole rung is one batch: its members are independent, so the
      // evaluator may run them concurrently.
      std::vector<EvalRequest> batch;
      batch.reserve(survivors.size());
      for (const Rung& entry : survivors) {
        batch.push_back({next_trial++, entry.config, resource});
      }
      const std::vector<double> objectives = eval(batch);
      // Record + feed the suggestor in submission order, exactly as the
      // serial loop did: no suggest() happens mid-rung, so deferring the
      // observe() calls to rung end leaves the suggestor state identical.
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        survivors[i].objective = objective_at(objectives, i);
        result.record(survivors[i].config, resource, survivors[i].objective);
        suggestor_->observe(
            {survivors[i].config, resource, survivors[i].objective});
      }
      if (rung == s) break;
      // Keep the top 1/eta.
      std::sort(survivors.begin(), survivors.end(),
                [](const Rung& a, const Rung& b) {
                  return a.objective < b.objective;
                });
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::floor(static_cast<double>(survivors.size()) / eta)));
      survivors.resize(keep);
    }
  }
  return result;
}

SearchResult TpeSearch::optimize_batch(const BatchEvalFn& eval, Rng& rng) {
  SearchResult result;
  const int width = std::max(1, batch_size_);
  int next_trial = 0;  // global submission index across all rounds
  while (next_trial < num_trials_) {
    const int round = std::min(width, num_trials_ - next_trial);
    // Constant-liar round: the suggestor proposes `round` configs treating
    // its earlier proposals as pending observations, so the whole round is
    // one independent batch a parallel evaluator can spread over workers.
    // With width 1 this is suggest();eval();observe() — the serial TPE loop.
    std::vector<Config> configs = suggestor_.suggest_batch(round, rng);
    std::vector<EvalRequest> batch;
    batch.reserve(configs.size());
    for (Config& config : configs) {
      batch.push_back({next_trial++, std::move(config), max_resource_});
    }
    const std::vector<double> objectives = eval(batch);
    // Commit in submission order; each observe() retracts its pending lie.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double objective = objective_at(objectives, i);
      result.record(batch[i].config, max_resource_, objective);
      suggestor_.observe({batch[i].config, max_resource_, objective});
    }
  }
  return result;
}

std::unique_ptr<SearchAlgorithm> make_bohb(SearchSpace space,
                                           HyperBandOptions options,
                                           TpeOptions tpe) {
  auto suggestor = std::make_unique<TpeSuggestor>(space, tpe);
  return std::make_unique<HyperBand>(std::move(space), options,
                                     std::move(suggestor));
}

std::unique_ptr<SearchAlgorithm> make_hyperband(SearchSpace space,
                                                HyperBandOptions options) {
  auto suggestor = std::make_unique<RandomSuggestor>(space);
  return std::make_unique<HyperBand>(std::move(space), options,
                                     std::move(suggestor));
}

Result<std::unique_ptr<SearchAlgorithm>> make_search_algorithm(
    const std::string& name, SearchSpace space, HyperBandOptions options,
    int random_trials, int batch_size) {
  if (name == "hyperband" || name == "bohb") {
    // The bracket count is floor(log(max/min)/log(eta)): a non-positive min
    // or an inverted range makes that NaN/negative and the search silently
    // runs zero brackets. Reject here, where every entry point funnels.
    if (options.min_resource <= 0) {
      return Status::invalid_argument(
          "hyperband min_resource must be > 0, got " +
          std::to_string(options.min_resource));
    }
    if (options.max_resource < options.min_resource) {
      return Status::invalid_argument(
          "hyperband max_resource (" + std::to_string(options.max_resource) +
          ") must be >= min_resource (" +
          std::to_string(options.min_resource) + ")");
    }
  }
  if (name == "grid") {
    return std::unique_ptr<SearchAlgorithm>(
        std::make_unique<GridSearch>(std::move(space), options.max_resource));
  }
  if (name == "random") {
    return std::unique_ptr<SearchAlgorithm>(std::make_unique<RandomSearch>(
        std::move(space), options.max_resource, random_trials));
  }
  if (name == "hyperband") {
    return make_hyperband(std::move(space), options);
  }
  if (name == "bohb") {
    return make_bohb(std::move(space), options);
  }
  if (name == "tpe") {
    return std::unique_ptr<SearchAlgorithm>(std::make_unique<TpeSearch>(
        std::move(space), options.max_resource, random_trials, TpeOptions{},
        batch_size));
  }
  return Status::not_found("unknown search algorithm: " + name);
}

}  // namespace edgetune
