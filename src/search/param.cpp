#include "search/param.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace edgetune {

std::string config_to_string(const Config& config) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : config) {
    if (!first) out += ", ";
    first = false;
    out += name + "=" + format_double(value, 4);
  }
  out += "}";
  return out;
}

std::uint64_t config_hash(const Config& config) {
  std::string repr;
  for (const auto& [name, value] : config) {
    repr += name;
    repr += '=';
    repr += format_double(value, 9);
    repr += ';';
  }
  return stable_hash64(repr);
}

ParamSpec ParamSpec::categorical(std::string name,
                                 std::vector<double> choices) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kCategorical;
  spec.choices = std::move(choices);
  assert(!spec.choices.empty());
  return spec;
}

ParamSpec ParamSpec::integer(std::string name, double lo, double hi,
                             bool log_scale) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kInt;
  spec.lo = lo;
  spec.hi = hi;
  spec.log_scale = log_scale;
  assert(lo <= hi && (!log_scale || lo > 0));
  return spec;
}

ParamSpec ParamSpec::real(std::string name, double lo, double hi,
                          bool log_scale) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kFloat;
  spec.lo = lo;
  spec.hi = hi;
  spec.log_scale = log_scale;
  assert(lo <= hi && (!log_scale || lo > 0));
  return spec;
}

double ParamSpec::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kCategorical:
      return choices[rng.bounded(choices.size())];
    case Kind::kInt:
    case Kind::kFloat: {
      double value;
      if (log_scale) {
        value = std::exp(rng.uniform(std::log(lo), std::log(hi)));
      } else {
        value = rng.uniform(lo, hi);
      }
      return clip(value);
    }
  }
  return lo;
}

double ParamSpec::clip(double value) const {
  switch (kind) {
    case Kind::kCategorical: {
      double best = choices.front();
      for (double c : choices) {
        if (std::abs(c - value) < std::abs(best - value)) best = c;
      }
      return best;
    }
    case Kind::kInt:
      return std::clamp(std::round(value), lo, hi);
    case Kind::kFloat:
      return std::clamp(value, lo, hi);
  }
  return value;
}

std::vector<double> ParamSpec::grid(int max_points) const {
  max_points = std::max(max_points, 2);
  std::vector<double> out;
  switch (kind) {
    case Kind::kCategorical:
      return choices;
    case Kind::kInt: {
      const auto span = static_cast<std::int64_t>(hi - lo) + 1;
      if (span <= max_points) {
        for (std::int64_t i = 0; i < span; ++i) {
          out.push_back(lo + static_cast<double>(i));
        }
        return out;
      }
      [[fallthrough]];
    }
    case Kind::kFloat: {
      for (int i = 0; i < max_points; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(max_points - 1);
        double value;
        if (log_scale) {
          value = std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo)));
        } else {
          value = lo + t * (hi - lo);
        }
        value = clip(value);
        if (out.empty() || value != out.back()) out.push_back(value);
      }
      return out;
    }
  }
  return out;
}

bool ParamSpec::contains(double value) const {
  switch (kind) {
    case Kind::kCategorical:
      return std::any_of(choices.begin(), choices.end(), [&](double c) {
        return std::abs(c - value) < 1e-9;
      });
    case Kind::kInt:
      return value >= lo - 1e-9 && value <= hi + 1e-9 &&
             std::abs(value - std::round(value)) < 1e-9;
    case Kind::kFloat:
      return value >= lo - 1e-12 && value <= hi + 1e-12;
  }
  return false;
}

const ParamSpec* SearchSpace::find(const std::string& name) const {
  for (const auto& spec : params_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

Config SearchSpace::sample(Rng& rng) const {
  Config config;
  for (const auto& spec : params_) {
    config[spec.name] = spec.sample(rng);
  }
  return config;
}

std::vector<Config> SearchSpace::grid(int max_points_per_param) const {
  std::vector<Config> out = {Config{}};
  for (const auto& spec : params_) {
    const std::vector<double> values = spec.grid(max_points_per_param);
    std::vector<Config> next;
    next.reserve(out.size() * values.size());
    for (const auto& partial : out) {
      for (double v : values) {
        Config extended = partial;
        extended[spec.name] = v;
        next.push_back(std::move(extended));
      }
    }
    out = std::move(next);
  }
  return out;
}

Status SearchSpace::validate(const Config& config) const {
  for (const auto& spec : params_) {
    auto it = config.find(spec.name);
    if (it == config.end()) {
      return Status::invalid_argument("config missing parameter " + spec.name);
    }
    if (!spec.contains(it->second)) {
      return Status::out_of_range("parameter " + spec.name + "=" +
                                  format_double(it->second, 6) +
                                  " outside its domain");
    }
  }
  return Status::ok();
}

}  // namespace edgetune
