// Config suggestion strategies. TpeSuggestor is the Bayesian-optimization
// component of BOHB (Falkner et al., ICML'18): a Tree-structured Parzen
// Estimator that models good/bad config densities per budget level and
// proposes the candidate maximizing their ratio.
#pragma once

#include <algorithm>
#include <vector>

#include "search/param.hpp"

namespace edgetune {

struct Observation {
  Config config;
  double resource = 0;   // budget units the objective was measured at
  double objective = 0;  // lower is better
};

class Suggestor {
 public:
  virtual ~Suggestor() = default;
  virtual Config suggest(Rng& rng) = 0;
  /// Proposes `n` configs for concurrent evaluation. The base implementation
  /// draws `n` independent suggestions; model-based suggestors override it to
  /// decorrelate the batch (see TpeSuggestor's constant-liar strategy).
  /// Callers must eventually observe() one result per suggested config.
  virtual std::vector<Config> suggest_batch(int n, Rng& rng) {
    std::vector<Config> out;
    out.reserve(static_cast<std::size_t>(std::max(0, n)));
    for (int i = 0; i < n; ++i) out.push_back(suggest(rng));
    return out;
  }
  virtual void observe(const Observation& obs) { (void)obs; }
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform random sampling from the space.
class RandomSuggestor : public Suggestor {
 public:
  explicit RandomSuggestor(SearchSpace space) : space_(std::move(space)) {}
  Config suggest(Rng& rng) override { return space_.sample(rng); }
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  SearchSpace space_;
};

struct TpeOptions {
  int min_observations = 8;   // fall back to random below this
  double gamma = 0.25;        // good/bad split quantile
  int candidates = 24;        // EI candidates sampled from l(x)
  double bandwidth_floor = 0.08;  // KDE bandwidth as a fraction of the range
};

class TpeSuggestor : public Suggestor {
 public:
  TpeSuggestor(SearchSpace space, TpeOptions options = {})
      : space_(std::move(space)), options_(options) {}

  Config suggest(Rng& rng) override;
  /// Constant-liar batch proposal (Ginsbourger et al.'s CL-min, the strategy
  /// Ray Tune uses to keep trial workers busy under model-based search):
  /// after each draw a *pending* observation is registered at the current
  /// best objective, so the next draw in the batch models the proposed point
  /// as already evaluated and is pushed elsewhere. Pending lies never enter
  /// `history_`; observe() retracts the matching lie when the real result
  /// arrives. With n == 1 the RNG stream is identical to suggest().
  std::vector<Config> suggest_batch(int n, Rng& rng) override;
  void observe(const Observation& obs) override;
  [[nodiscard]] std::string name() const override { return "tpe"; }

  [[nodiscard]] std::size_t num_observations() const noexcept {
    return history_.size();
  }
  /// In-flight constant-liar placeholders awaiting their real observe().
  [[nodiscard]] std::size_t num_pending() const noexcept {
    return pending_.size();
  }

 private:
  /// Samples one value from the KDE over `values` for `spec`.
  double sample_kde(const ParamSpec& spec, const std::vector<double>& values,
                    Rng& rng) const;
  /// log-density of `x` under the KDE over `values` for `spec`.
  double log_density(const ParamSpec& spec, const std::vector<double>& values,
                     double x) const;
  /// The constant-liar placeholder for a just-proposed config: current best
  /// objective at the highest observed fidelity.
  [[nodiscard]] Observation lie_for(const Config& config) const;

  SearchSpace space_;
  TpeOptions options_;
  std::vector<Observation> history_;
  std::vector<Observation> pending_;  // constant-liar placeholders
};

}  // namespace edgetune
