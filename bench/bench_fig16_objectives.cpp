// Fig 16: runtime-based vs energy-based objective functions across the four
// workloads — tuning duration, tuning energy, inference throughput,
// inference energy. Paper shape: the runtime objective tunes slightly faster
// but burns more energy; its recommended deployments have both higher
// throughput AND higher energy than the energy objective's (differences
// bounded, since runtime and energy are strongly correlated, §5.4).
#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 16", "objective functions: runtime vs energy",
                "each objective pulls its own metric; gaps stay moderate");

  struct Row {
    double runtime_m, energy_kj, thpt, inf_energy;
  };
  std::map<std::string, std::map<std::string, Row>> grid;

  for (WorkloadKind workload : bench::workloads()) {
    for (MetricOfInterest metric :
         {MetricOfInterest::kRuntime, MetricOfInterest::kEnergy}) {
      EdgeTuneOptions options = bench::bench_options(workload);
      options.tuning_metric = metric;
      options.inference.objective = metric;  // both servers share the focus
      Result<TuningReport> result = EdgeTune(options).run();
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().to_string().c_str());
        return 1;
      }
      const TuningReport& r = result.value();
      grid[workload_kind_name(workload)][metric_name(metric)] = {
          r.tuning_runtime_s / 60.0, r.tuning_energy_j / 1000.0,
          r.inference.throughput_sps, r.inference.energy_per_sample_j};
    }
  }

  const char* panels[4] = {"(a) tuning duration [m]", "(b) tuning energy [kJ]",
                           "(c) inference throughput [samples/s]",
                           "(d) inference energy [J/sample]"};
  for (int panel = 0; panel < 4; ++panel) {
    std::printf("\n%s\n", panels[panel]);
    TextTable table({"workload", "obj1:runtime", "obj2:energy"});
    for (WorkloadKind workload : bench::workloads()) {
      const auto& row = grid[workload_kind_name(workload)];
      auto value = [&](const char* obj) {
        const Row& r = row.at(obj);
        return panel == 0   ? r.runtime_m
               : panel == 1 ? r.energy_kj
               : panel == 2 ? r.thpt
                            : r.inf_energy;
      };
      table.add_row({workload_kind_name(workload),
                     bench::fmt(value("runtime"), panel == 3 ? 3 : 1),
                     bench::fmt(value("energy"), panel == 3 ? 3 : 1)});
    }
    std::printf("%s", table.render().c_str());
  }

  int energy_obj_saves_energy = 0, thpt_higher_for_runtime_obj = 0;
  for (WorkloadKind workload : bench::workloads()) {
    const auto& row = grid[workload_kind_name(workload)];
    if (row.at("energy").inf_energy <=
        row.at("runtime").inf_energy * 1.001) {
      ++energy_obj_saves_energy;
    }
    if (row.at("runtime").thpt >= row.at("energy").thpt * 0.999) {
      ++thpt_higher_for_runtime_obj;
    }
  }
  bench::shape_check(
      "energy objective's deployment never burns more J/sample (4/4)",
      energy_obj_saves_energy == 4);
  bench::shape_check(
      "runtime objective's deployment throughput >= energy's (>=3/4)",
      thpt_higher_for_runtime_obj >= 3);
  return 0;
}
