// Fig 13: the three budget approaches across the four workloads — tuning
// duration (a), tuning energy (b), inference throughput (c), inference
// energy (d). Paper shape: multi-budget consistently shortest/most frugal
// tuning (≈50% savings on OD) while the recommended inference configs are
// comparable across budgets (all converge to near-optimal deployments).
#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 13", "budget approaches across workloads",
                "multi-budget cheapest tuning; inference results comparable");

  struct Cell {
    double runtime_m, energy_kj, thpt, inf_energy;
  };
  std::map<std::string, std::map<std::string, Cell>> grid;
  const std::vector<std::string> budgets = {"epochs", "dataset",
                                            "multi-budget"};

  for (WorkloadKind workload : bench::workloads()) {
    for (const std::string& budget : budgets) {
      EdgeTuneOptions options = bench::bench_options(workload);
      options.budget_policy = budget;
      options.target_accuracy = 0.70;
      Result<TuningReport> result = EdgeTune(options).run();
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n",
                     workload_kind_name(workload), budget.c_str(),
                     result.status().to_string().c_str());
        return 1;
      }
      const TuningReport& r = result.value();
      grid[workload_kind_name(workload)][budget] = {
          r.tuning_runtime_s / 60.0, r.tuning_energy_j / 1000.0,
          r.inference.throughput_sps, r.inference.energy_per_sample_j};
    }
  }

  const char* panels[4] = {"(a) tuning duration [m]", "(b) tuning energy [kJ]",
                           "(c) inference throughput [samples/s]",
                           "(d) inference energy [J/sample]"};
  for (int panel = 0; panel < 4; ++panel) {
    std::printf("\n%s\n", panels[panel]);
    TextTable table({"workload", "epochs", "dataset", "multi-budget"});
    for (WorkloadKind workload : bench::workloads()) {
      const char* id = workload_kind_name(workload);
      std::vector<std::string> row = {id};
      for (const std::string& budget : budgets) {
        const Cell& c = grid[id][budget];
        const double v = panel == 0   ? c.runtime_m
                         : panel == 1 ? c.energy_kj
                         : panel == 2 ? c.thpt
                                      : c.inf_energy;
        row.push_back(bench::fmt(v, panel == 3 ? 3 : 1));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
  }

  int multi_wins_runtime = 0, multi_wins_energy = 0, comparable_inference = 0;
  for (WorkloadKind workload : bench::workloads()) {
    const auto& row = grid[workload_kind_name(workload)];
    const Cell& multi = row.at("multi-budget");
    if (multi.runtime_m <= row.at("epochs").runtime_m * 1.02) {
      ++multi_wins_runtime;
    }
    if (multi.energy_kj <= row.at("epochs").energy_kj * 1.02) {
      ++multi_wins_energy;
    }
    // Inference recommendations land within 2x of the best budget's
    // throughput ("very similar ... different possible optimal solutions").
    double best_thpt = 0;
    for (const auto& [name, cell] : row) best_thpt = std::max(best_thpt, cell.thpt);
    if (multi.thpt > 0.5 * best_thpt) ++comparable_inference;
  }
  bench::shape_check("multi-budget tuning no slower than epochs (all 4)",
                     multi_wins_runtime == 4);
  bench::shape_check("multi-budget tuning energy <= epochs (all 4)",
                     multi_wins_energy == 4);
  bench::shape_check("inference results comparable across budgets",
                     comparable_inference == 4);
  const auto& od = grid["OD"];
  bench::shape_check(
      "OD: multi-budget saves substantially vs epochs (>=30%)",
      od.at("multi-budget").runtime_m < 0.7 * od.at("epochs").runtime_m);
  return 0;
}
