// Ablation: cross-device deployment recommendations (§1: "the tuned model
// might be deployed across different edge devices and having these
// configurations suggested can assist users"). One tuning job, one winning
// architecture, one recommendation per edge platform.
#include "bench/bench_util.hpp"
#include "tuning/model_server.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: multi-device recommendations",
                "one winner, per-device deployment configs",
                "faster devices get higher-throughput deployments");

  EdgeTuneOptions options =
      bench::bench_options(WorkloadKind::kImageClassification);
  options.edge_device = device_rpi3b();
  options.extra_edge_devices = {device_armv7(), device_i7_7567u()};
  Result<TuningReport> result = EdgeTune(options).run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }
  const TuningReport& report = result.value();

  TextTable table({"device", "recommended config", "thpt [samples/s]",
                   "energy [J/sample]"});
  auto add = [&](const std::string& device,
                 const InferenceRecommendation& rec) {
    table.add_row({device, config_to_string(rec.config),
                   bench::fmt(rec.throughput_sps, 1),
                   bench::fmt(rec.energy_per_sample_j, 4)});
  };
  add(options.edge_device.name, report.inference);
  for (const auto& [device, rec] : report.per_device) add(device, rec);
  std::printf("winning model: %s\n\n%s",
              config_to_string(report.best_config).c_str(),
              table.render().c_str());

  const auto& i7 = report.per_device.at("i7");
  const auto& armv7 = report.per_device.at("armv7");
  bench::shape_check("i7 deployment outruns both ARM boards",
                     i7.throughput_sps > armv7.throughput_sps &&
                         i7.throughput_sps > report.inference.throughput_sps);
  bench::shape_check("every device got a multi-sample recommendation",
                     report.inference.config.count("inf_batch") != 0 &&
                         i7.config.count("inf_batch") != 0 &&
                         armv7.config.count("inf_batch") != 0);
  bench::shape_check(
      "per-device configs differ (deployment is device-specific)",
      !(i7.config == report.inference.config) ||
          !(armv7.config == report.inference.config));
  return 0;
}
