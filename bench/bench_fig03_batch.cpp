// Fig 3: (a) training batch size {256, 512, 1024} vs training runtime and
// energy; (b) inference batch size {1, 10, 100} vs throughput and energy.
// Paper shapes: batch 1024 costs clearly more than 256/512, which have
// similar runtimes but different energies; inference throughput/energy
// improve from 1 -> 10 and saturate/decay at 100.
#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 3", "training & inference batch size effects",
                "multi-sample inference wins until saturation (~10 > 1, 100)");

  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  CostModel server(device_titan_server());
  CostModel edge(device_armv7());  // 4 GB board: the full 1..100 sweep fits
  const std::int64_t train_samples =
      workload_info(WorkloadKind::kImageClassification).train_samples;

  std::printf("(a) training batch size — 10 epochs, 1 GPU\n");
  TextTable train_table(
      {"train batch", "runtime [m]", "energy [kJ]"});
  std::vector<double> train_times, train_energies;
  for (std::int64_t batch : {256, 512, 1024}) {
    CostEstimate epoch =
        server
            .train_epoch_cost(arch, {.batch_size = batch, .num_gpus = 1},
                              train_samples)
            .value();
    train_times.push_back(epoch.latency_s * 10 / 60.0);
    train_energies.push_back(epoch.energy_j * 10 / 1000.0);
    train_table.add_row({std::to_string(batch),
                         bench::fmt(train_times.back(), 1),
                         bench::fmt(train_energies.back(), 1)});
  }
  std::printf("%s", train_table.render().c_str());

  std::printf("\n(b) inference batch size — armv7 edge device, 4 cores\n");
  TextTable inf_table({"inf batch", "thpt [imgs/s]", "energy [J/img]"});
  std::vector<double> thpts, inf_energies;
  for (std::int64_t batch : {1, 10, 100}) {
    CostEstimate est =
        edge.inference_cost(arch, {.batch_size = batch, .cores = 4}).value();
    thpts.push_back(est.throughput_sps);
    inf_energies.push_back(est.energy_per_sample_j(batch));
    inf_table.add_row({std::to_string(batch), bench::fmt(thpts.back(), 2),
                       bench::fmt(inf_energies.back(), 3)});
  }
  std::printf("%s", inf_table.render().c_str());

  bench::shape_check(
      "batch 256 and 512 similar runtime (within 35%)",
      std::abs(train_times[0] - train_times[1]) <
          0.35 * std::max(train_times[0], train_times[1]));
  bench::shape_check("batch 1024 is the most expensive in energy",
                     train_energies[2] > train_energies[0] &&
                         train_energies[2] > train_energies[1]);
  bench::shape_check("multi-inference (10) beats single (1) in throughput",
                     thpts[1] > thpts[0]);
  bench::shape_check("too-large batch (100) saturates/decays",
                     thpts[2] < thpts[1]);
  bench::shape_check("multi-inference (10) lowers energy per image",
                     inf_energies[1] < inf_energies[0]);
  return 0;
}
