// Fig 17: EdgeTune vs HyperPower across the four workloads — tuning
// duration, tuning energy, inference throughput, inference energy.
// Paper shape: HyperPower's tuning is up to 39%/33% cheaper (it explores no
// inference configuration space), but EdgeTune's recommended deployments are
// >=12% higher throughput and ~29% lower energy. Like the paper, the
// HyperPower winner is deployed at EdgeTune's recommended inference
// configuration (HyperPower emits none of its own).
#include "bench/bench_util.hpp"
#include "tuning/baselines.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 17", "EdgeTune vs HyperPower",
                "HyperPower tunes cheaper; EdgeTune deploys better");

  struct Row {
    double et_runtime_m, hp_runtime_m;
    double et_energy_kj, hp_energy_kj;
    double et_thpt, hp_thpt;
    double et_inf_energy, hp_inf_energy;
  };
  std::map<std::string, Row> rows;

  for (WorkloadKind workload : bench::workloads()) {
    EdgeTuneOptions options = bench::bench_options(workload);
    Result<TuningReport> edgetune = EdgeTune(options).run();
    if (!edgetune.ok()) return 1;

    EdgeTuneOptions hp_options = options;
    hp_options.random_trials = 8;  // BO at full budget
    // Power cap at roughly the single-GPU full-load server power: expensive
    // configurations get terminated early (HyperPower's mechanism).
    Result<TuningReport> hyperpower =
        run_hyperpower_baseline(hp_options, 800.0);
    if (!hyperpower.ok()) return 1;

    // Deploy HyperPower's winning model at EdgeTune's recommended inference
    // configuration (§5.5 fairness rule).
    Result<InferenceRecommendation> hp_inference = evaluate_inference_at(
        options, hyperpower.value().best_config,
        edgetune.value().inference.config);
    if (!hp_inference.ok()) return 1;

    rows[workload_kind_name(workload)] = {
        edgetune.value().tuning_runtime_s / 60.0,
        hyperpower.value().tuning_runtime_s / 60.0,
        edgetune.value().tuning_energy_j / 1000.0,
        hyperpower.value().tuning_energy_j / 1000.0,
        edgetune.value().inference.throughput_sps,
        hp_inference.value().throughput_sps,
        edgetune.value().inference.energy_per_sample_j,
        hp_inference.value().energy_per_sample_j};
  }

  const char* panels[4] = {"(a) tuning duration [m]", "(b) tuning energy [kJ]",
                           "(c) inference throughput [samples/s]",
                           "(d) inference energy [J/sample]"};
  for (int panel = 0; panel < 4; ++panel) {
    std::printf("\n%s\n", panels[panel]);
    TextTable table({"workload", "HyperPower", "EdgeTune"});
    for (WorkloadKind workload : bench::workloads()) {
      const Row& r = rows[workload_kind_name(workload)];
      const double hp = panel == 0   ? r.hp_runtime_m
                        : panel == 1 ? r.hp_energy_kj
                        : panel == 2 ? r.hp_thpt
                                     : r.hp_inf_energy;
      const double et = panel == 0   ? r.et_runtime_m
                        : panel == 1 ? r.et_energy_kj
                        : panel == 2 ? r.et_thpt
                                     : r.et_inf_energy;
      table.add_row({workload_kind_name(workload),
                     bench::fmt(hp, panel == 3 ? 3 : 1),
                     bench::fmt(et, panel == 3 ? 3 : 1)});
    }
    std::printf("%s", table.render().c_str());
  }

  int hp_cheaper = 0, et_better_thpt = 0, et_better_energy = 0;
  for (WorkloadKind workload : bench::workloads()) {
    const Row& r = rows[workload_kind_name(workload)];
    if (r.hp_runtime_m <= r.et_runtime_m) ++hp_cheaper;
    if (r.et_thpt >= r.hp_thpt * 0.999) ++et_better_thpt;
    if (r.et_inf_energy <= r.hp_inf_energy * 1.001) ++et_better_energy;
  }
  bench::shape_check("HyperPower tuning cheaper on >= 3/4 workloads",
                     hp_cheaper >= 3);
  bench::shape_check("EdgeTune inference throughput >= HyperPower (>=3/4)",
                     et_better_thpt >= 3);
  bench::shape_check("EdgeTune inference energy <= HyperPower (>=3/4)",
                     et_better_energy >= 3);
  return 0;
}
