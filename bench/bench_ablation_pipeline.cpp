// Ablation: pipelined vs stalled inference tuning (Fig 6). EdgeTune overlaps
// the Inference Tuning Server with training trials, charging only the excess
// beyond each trial's duration. A serial design would pay the full
// inference-tuning time on the critical path.
#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: async pipelining (Fig 6)",
                "pipelined (EdgeTune) vs hypothetical serial execution",
                "pipelining hides most inference-tuning time inside trials");

  TextTable table({"workload", "trials [m]", "inference tuning [m]",
                   "pipelined total [m]", "serial total [m]", "hidden %"});
  bool all_hidden_positive = true;
  double total_pipelined = 0, total_serial = 0;
  for (WorkloadKind workload : bench::workloads()) {
    EdgeTuneOptions options = bench::bench_options(workload);
    Result<TuningReport> result = EdgeTune(options).run();
    if (!result.ok()) return 1;
    double trial_s = 0, inference_s = 0, pipelined_s = 0;
    for (const TrialLog& t : result.value().trials) {
      trial_s += t.duration_s;
      inference_s += t.inference_tuning_s;
      pipelined_s += t.duration_s + t.inference_stall_s;
    }
    const double serial_s = trial_s + inference_s;
    const double hidden =
        inference_s > 0
            ? 100.0 * (serial_s - pipelined_s) / inference_s
            : 0.0;
    if (hidden < 0) all_hidden_positive = false;
    total_pipelined += pipelined_s;
    total_serial += serial_s;
    table.add_row({workload_kind_name(workload), bench::fmt(trial_s / 60, 2),
                   bench::fmt(inference_s / 60, 2),
                   bench::fmt(pipelined_s / 60, 2),
                   bench::fmt(serial_s / 60, 2), bench::fmt(hidden, 1)});
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check("pipelined total <= serial total on every workload",
                     all_hidden_positive);
  bench::shape_check("pipelining saves time overall",
                     total_pipelined < total_serial);
  return 0;
}
