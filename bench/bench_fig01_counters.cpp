// Fig 1: performance-counter events during the forward phase of training vs
// inference (AlexNet-class CNN on the image workload). The paper's point:
// CPU-bound events match across phases, memory-bound events do not — so the
// training forward pass is a poor predictor of inference behaviour and a
// dedicated inference emulation is warranted (§2.1).
#include "bench/bench_util.hpp"
#include "device/perf_counters.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 1",
                "perf counters: train-forward vs inference (AlexNet, armv7)",
                "cpu.* rates match; cache/LLC/L1 rates diverge");

  Rng rng(1);
  ArchSpec arch = build_alexnet({.num_classes = 10}, rng).value().arch;
  const DeviceProfile device = device_armv7();

  auto train = collect_perf_counters(arch, device,
                                     ExecutionPhase::kTrainForward, 32);
  auto inf =
      collect_perf_counters(arch, device, ExecutionPhase::kInference, 32);

  TextTable table({"event", "train-forward [ev/s]", "inference [ev/s]",
                   "train bin", "inference bin", "consistent?"});
  int divergent_memory = 0, consistent_cpu = 0;
  for (const std::string& event : perf_counter_events()) {
    const double t = train.at(event);
    const double i = inf.at(event);
    const bool same_bin = perf_rate_bin(t) == perf_rate_bin(i);
    table.add_row({event, human_count(t), human_count(i), perf_rate_bin(t),
                   perf_rate_bin(i), same_bin ? "yes" : "NO"});
    const bool is_cpu_event = starts_with(event, "cpu.") ||
                              starts_with(event, "bus.") ||
                              event == "context.switches";
    const double ratio = t / i;
    if (is_cpu_event && ratio > 0.8 && ratio < 1.25) ++consistent_cpu;
    if (!is_cpu_event && (ratio > 1.5 || ratio < 0.67)) ++divergent_memory;
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check("CPU-bound events consistent across phases",
                     consistent_cpu >= 4);
  bench::shape_check("several memory-bound events diverge (>1.5x)",
                     divergent_memory >= 6);
  return 0;
}
