// Parallel rung execution — wall-clock speedup and determinism.
//
// HyperBand evaluates every trial of a rung independently, so a rung is an
// embarrassingly parallel batch. This harness measures the real wall-clock
// speedup of parallel_batch_eval over the serial adapter on a HyperBand
// search whose evaluation cost is dominated by per-trial latency, then runs
// every end-to-end system (edgetune, tpe, hyperpower, hierarchical) at 1 and
// 4 trial workers and compares simulated tuning makespans. All end-to-end
// numbers are *simulated* time (DESIGN.md "Virtual time"), so the table is
// deterministic per seed and host-independent; only the rung microbench
// measures real wall clock.
//
// Usage: bench_parallel_search [--json <path>]  (tools/run_parallel_bench
// wraps this and writes BENCH_parallel.json into the repo root).
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <thread>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "search/algorithms.hpp"
#include "tuning/baselines.hpp"

using namespace edgetune;
using namespace edgetune::bench;

namespace {

/// Pure deterministic objective that costs ~4 ms per call, standing in for
/// a proxy-training trial. Thread-safe: no shared state.
double slow_objective(const Config& config, double resource) {
  std::this_thread::sleep_for(std::chrono::milliseconds(4));
  const double x = config.at("x");
  const double n = config.at("n");
  return ((x - 0.3) * (x - 0.3) + std::abs(n - 20.0) / 64.0) / resource;
}

SearchSpace space() {
  SearchSpace s;
  s.add(ParamSpec::real("x", 0, 1));
  s.add(ParamSpec::integer("n", 1, 64, /*log_scale=*/true));
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct TimedRun {
  SearchResult result;
  double wall_s = 0;
};

TimedRun run_hyperband(const BatchEvalFn& eval) {
  auto algorithm = make_hyperband(space(), {1, 16, 2, 0});
  Rng rng(99);
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = algorithm->optimize_batch(eval, rng);
  run.wall_s = seconds_since(start);
  return run;
}

// --- End-to-end systems at 1 vs 4 trial workers ----------------------------

using SystemFn = std::function<Result<TuningReport>(EdgeTuneOptions)>;

struct SystemRow {
  std::string name;
  bool ok = false;
  TuningReport serial, parallel;
  double serial_wall_s = 0, parallel_wall_s = 0;
  [[nodiscard]] double speedup() const {
    return parallel.tuning_runtime_s > 0
               ? serial.tuning_runtime_s / parallel.tuning_runtime_s
               : 0;
  }
  [[nodiscard]] bool same_best() const {
    return serial.best_config == parallel.best_config;
  }
};

SystemRow run_system(std::string name, const EdgeTuneOptions& options,
                     const SystemFn& run) {
  SystemRow row;
  row.name = std::move(name);
  EdgeTuneOptions serial_options = options;
  serial_options.trial_workers = 1;
  auto start = std::chrono::steady_clock::now();
  Result<TuningReport> serial = run(serial_options);
  row.serial_wall_s = seconds_since(start);
  EdgeTuneOptions parallel_options = options;
  parallel_options.trial_workers = 4;
  start = std::chrono::steady_clock::now();
  Result<TuningReport> parallel = run(parallel_options);
  row.parallel_wall_s = seconds_since(start);
  if (!serial.ok() || !parallel.ok()) return row;
  row.ok = true;
  row.serial = std::move(serial).value();
  row.parallel = std::move(parallel).value();
  return row;
}

Json row_to_json(const SystemRow& row) {
  JsonObject obj;
  obj.emplace("system", row.name);
  obj.emplace("ok", row.ok);
  obj.emplace("serial_sim_s", row.serial.tuning_runtime_s);
  obj.emplace("parallel_sim_s", row.parallel.tuning_runtime_s);
  obj.emplace("speedup", row.speedup());
  obj.emplace("same_best_config", row.same_best());
  obj.emplace("trials", row.serial.trials.size());
  obj.emplace("serial_wall_s", row.serial_wall_s);
  obj.emplace("parallel_wall_s", row.parallel_wall_s);
  return Json(std::move(obj));
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  header("parallel-search",
         "rung execution and end-to-end systems: 4 workers vs serial",
         "rung >= 2x real wall clock; hyperpower/hierarchical >= 2x "
         "simulated makespan");

  const TimedRun serial = run_hyperband(serial_batch_eval(EvalFn(slow_objective)));
  ThreadPool pool(4);
  const TimedRun parallel =
      run_hyperband(parallel_batch_eval(EvalFn(slow_objective), pool));
  const double rung_speedup = serial.wall_s / parallel.wall_s;

  TextTable table({"mode", "workers", "trials", "wall [s]", "best objective"});
  table.add_row({"serial", "1", std::to_string(serial.result.trials.size()),
                 fmt(serial.wall_s, 3), fmt(serial.result.best_objective, 5)});
  table.add_row({"parallel", "4",
                 std::to_string(parallel.result.trials.size()),
                 fmt(parallel.wall_s, 3),
                 fmt(parallel.result.best_objective, 5)});
  std::printf("%s", table.render().c_str());
  std::printf("speedup: %.2fx\n", rung_speedup);
  std::printf("serial   best: %s\n",
              config_to_string(serial.result.best_config).c_str());
  std::printf("parallel best: %s\n",
              config_to_string(parallel.result.best_config).c_str());

  std::printf("\n");
  shape_check("4 workers give >= 2x rung wall-clock speedup",
              rung_speedup >= 2.0);
  shape_check("same seed: identical best config",
              config_to_string(serial.result.best_config) ==
                  config_to_string(parallel.result.best_config));
  shape_check("same seed: identical best objective",
              serial.result.best_objective == parallel.result.best_objective);
  shape_check("same seed: identical trial count",
              serial.result.trials.size() == parallel.result.trials.size());

  // --- End-to-end: each system at --trial-workers 1 vs 4. HyperBand/BOHB
  // rungs, the TPE constant-liar batch, and the hierarchical tier-2 grid all
  // route through the same batch engine, so every system must benefit.
  // edgetune keeps its byte-identical-trajectory contract (rungs are
  // proposed before evaluation); tpe/hyperpower trade trajectory for width
  // (constant-liar lies stand in for unfinished trials), so their best
  // config may legitimately differ across widths.
  EdgeTuneOptions edgetune_options = bench_options(WorkloadKind::kNlp);
  edgetune_options.hyperband = {1, 4, 2, 1};
  edgetune_options.runner.proxy_samples = 240;

  EdgeTuneOptions tpe_options = bench_options(WorkloadKind::kNlp);
  tpe_options.search_algorithm = "tpe";

  // Hierarchical: detection has the widest spread of per-trial costs, which
  // is exactly where FIFO list scheduling of the tier-2 grid pays off.
  EdgeTuneOptions hier_options = bench_options(WorkloadKind::kDetection);
  hier_options.hyperband = {1, 8, 2, 0};
  hier_options.runner.proxy_samples = 300;

  const std::vector<SystemRow> rows = {
      run_system("edgetune", edgetune_options,
                 [](EdgeTuneOptions o) { return EdgeTune(std::move(o)).run(); }),
      run_system("tpe", tpe_options,
                 [](EdgeTuneOptions o) { return EdgeTune(std::move(o)).run(); }),
      run_system("hyperpower", bench_options(WorkloadKind::kNlp),
                 [](EdgeTuneOptions o) {
                   return run_hyperpower_baseline(std::move(o), 800.0);
                 }),
      run_system("hierarchical", hier_options,
                 [](EdgeTuneOptions o) { return run_hierarchical(std::move(o)); }),
  };

  std::printf("\n");
  TextTable systems({"system", "trials", "serial sim [s]", "4-worker sim [s]",
                     "speedup", "same best"});
  for (const SystemRow& row : rows) {
    systems.add_row({row.name, std::to_string(row.serial.trials.size()),
                     fmt(row.serial.tuning_runtime_s),
                     fmt(row.parallel.tuning_runtime_s),
                     fmt(row.speedup()) + "x", row.same_best() ? "yes" : "no"});
  }
  std::printf("%s\n", systems.render().c_str());

  for (const SystemRow& row : rows) {
    shape_check(row.name + ": both runs completed", row.ok);
  }
  const auto find_row = [&](const char* name) -> const SystemRow& {
    for (const SystemRow& row : rows) {
      if (row.name == name) return row;
    }
    std::abort();
  };
  shape_check("edgetune: same best config at 1 and 4 trial workers",
              find_row("edgetune").same_best());
  shape_check("edgetune: 4 workers shrink the simulated makespan",
              find_row("edgetune").speedup() > 1.0);
  shape_check("tpe: 4 workers shrink the simulated makespan",
              find_row("tpe").speedup() > 1.0);
  shape_check("hyperpower: >= 2x simulated makespan speedup",
              find_row("hyperpower").speedup() >= 2.0);
  shape_check("hierarchical: same best config at 1 and 4 trial workers",
              find_row("hierarchical").same_best());
  shape_check("hierarchical: >= 2x simulated makespan speedup",
              find_row("hierarchical").speedup() >= 2.0);

  if (!json_path.empty()) {
    JsonObject root;
    root.emplace("bench", "parallel-search");
    {
      JsonObject rung;
      rung.emplace("serial_wall_s", serial.wall_s);
      rung.emplace("parallel_wall_s", parallel.wall_s);
      rung.emplace("speedup", rung_speedup);
      root.emplace("rung", Json(std::move(rung)));
    }
    JsonArray systems_json;
    for (const SystemRow& row : rows) systems_json.push_back(row_to_json(row));
    root.emplace("systems", Json(std::move(systems_json)));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << Json(std::move(root)).dump_pretty() << "\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
