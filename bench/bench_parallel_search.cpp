// Parallel rung execution — wall-clock speedup and determinism.
//
// HyperBand evaluates every trial of a rung independently, so a rung is an
// embarrassingly parallel batch. This harness measures the real wall-clock
// speedup of parallel_batch_eval over the serial adapter on a HyperBand
// search whose evaluation cost is dominated by per-trial latency, then
// verifies the engine's core contract: a parallel run with the same seed
// reports the identical best config and objective as the serial run.
#include <chrono>
#include <cmath>
#include <thread>

#include "bench/bench_util.hpp"
#include "common/thread_pool.hpp"
#include "search/algorithms.hpp"

using namespace edgetune;
using namespace edgetune::bench;

namespace {

/// Pure deterministic objective that costs ~4 ms per call, standing in for
/// a proxy-training trial. Thread-safe: no shared state.
double slow_objective(const Config& config, double resource) {
  std::this_thread::sleep_for(std::chrono::milliseconds(4));
  const double x = config.at("x");
  const double n = config.at("n");
  return ((x - 0.3) * (x - 0.3) + std::abs(n - 20.0) / 64.0) / resource;
}

SearchSpace space() {
  SearchSpace s;
  s.add(ParamSpec::real("x", 0, 1));
  s.add(ParamSpec::integer("n", 1, 64, /*log_scale=*/true));
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct TimedRun {
  SearchResult result;
  double wall_s = 0;
};

TimedRun run_hyperband(const BatchEvalFn& eval) {
  auto algorithm = make_hyperband(space(), {1, 16, 2, 0});
  Rng rng(99);
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = algorithm->optimize_batch(eval, rng);
  run.wall_s = seconds_since(start);
  return run;
}

}  // namespace

int main() {
  header("parallel-search", "HyperBand rung execution: 4 workers vs serial",
         "parallel >= 2x faster; identical best config and objective");

  const TimedRun serial = run_hyperband(serial_batch_eval(EvalFn(slow_objective)));
  ThreadPool pool(4);
  const TimedRun parallel =
      run_hyperband(parallel_batch_eval(EvalFn(slow_objective), pool));
  const double speedup = serial.wall_s / parallel.wall_s;

  TextTable table({"mode", "workers", "trials", "wall [s]", "best objective"});
  table.add_row({"serial", "1", std::to_string(serial.result.trials.size()),
                 fmt(serial.wall_s, 3), fmt(serial.result.best_objective, 5)});
  table.add_row({"parallel", "4",
                 std::to_string(parallel.result.trials.size()),
                 fmt(parallel.wall_s, 3),
                 fmt(parallel.result.best_objective, 5)});
  std::printf("%s", table.render().c_str());
  std::printf("speedup: %.2fx\n", speedup);
  std::printf("serial   best: %s\n",
              config_to_string(serial.result.best_config).c_str());
  std::printf("parallel best: %s\n",
              config_to_string(parallel.result.best_config).c_str());

  std::printf("\n");
  shape_check("4 workers give >= 2x rung wall-clock speedup", speedup >= 2.0);
  shape_check("same seed: identical best config",
              config_to_string(serial.result.best_config) ==
                  config_to_string(parallel.result.best_config));
  shape_check("same seed: identical best objective",
              serial.result.best_objective == parallel.result.best_objective);
  shape_check("same seed: identical trial count",
              serial.result.trials.size() == parallel.result.trials.size());

  // End-to-end: the full tuning server with trial_workers=4 must agree
  // with the serial run and report a smaller simulated makespan.
  EdgeTuneOptions options = bench_options(WorkloadKind::kNlp);
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 240;
  Result<TuningReport> tune_serial = EdgeTune(options).run();
  options.trial_workers = 4;
  Result<TuningReport> tune_parallel = EdgeTune(options).run();
  if (tune_serial.ok() && tune_parallel.ok()) {
    std::printf("\nEdgeTune simulated runtime: serial %s min, 4 workers %s min\n",
                fmt(tune_serial.value().tuning_runtime_s / 60.0).c_str(),
                fmt(tune_parallel.value().tuning_runtime_s / 60.0).c_str());
    shape_check("EdgeTune: same best config at 1 and 4 trial workers",
                config_to_string(tune_serial.value().best_config) ==
                    config_to_string(tune_parallel.value().best_config));
    shape_check("EdgeTune: 4 workers shrink the simulated makespan",
                tune_parallel.value().tuning_runtime_s <
                    tune_serial.value().tuning_runtime_s);
  } else {
    shape_check("EdgeTune runs completed", false);
  }
  return 0;
}
