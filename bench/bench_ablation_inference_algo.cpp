// Ablation: the Inference Tuning Server's search algorithm (§3.1: the user
// picks the algorithm per server; "trying all the parameters for inference
// would give more accurate results without necessarily affecting the
// overall tuning duration"). Compares grid, random, and BOHB on the same
// architectures.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "models/models.hpp"
#include "tuning/inference_server.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: inference-server search algorithm",
                "grid vs random vs BOHB on the inference space (§3.1)",
                "all three agree closely; adaptive search is cheaper");

  Rng rng(1);
  std::vector<ArchSpec> archs;
  for (int depth : {18, 34, 50}) {
    archs.push_back(build_resnet({.depth = depth}, rng).value().arch);
  }

  std::map<std::string, std::vector<double>> energies;  // per-arch J/sample
  std::map<std::string, double> tuning_time;
  for (const char* algorithm : {"grid", "random", "bohb"}) {
    InferenceServerOptions options;
    options.algorithm = algorithm;
    options.objective = MetricOfInterest::kEnergy;
    InferenceTuningServer server(device_armv7(), options);
    for (const ArchSpec& arch : archs) {
      Result<InferenceRecommendation> rec = server.tune(arch);
      if (!rec.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", algorithm,
                     arch.id.c_str(), rec.status().to_string().c_str());
        return 1;
      }
      energies[algorithm].push_back(rec.value().energy_per_sample_j);
      tuning_time[algorithm] += rec.value().tuning_time_s;
    }
  }

  TextTable table({"algorithm", "resnet18 [J]", "resnet34 [J]",
                   "resnet50 [J]", "emulator time [s]"});
  for (const char* algorithm : {"grid", "random", "bohb"}) {
    table.add_row({algorithm, bench::fmt(energies[algorithm][0], 4),
                   bench::fmt(energies[algorithm][1], 4),
                   bench::fmt(energies[algorithm][2], 4),
                   bench::fmt(tuning_time[algorithm], 1)});
  }
  std::printf("%s", table.render().c_str());

  // Grid is exhaustive over its lattice but the batch dimension is
  // continuous (1..100): adaptive algorithms can land marginally better.
  // The observable §3.1 claims: all three agree closely, and the adaptive
  // algorithms need fewer emulator evaluations.
  int all_close = 0;
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const double best = std::min({energies["grid"][i], energies["random"][i],
                                  energies["bohb"][i]});
    if (energies["grid"][i] <= best * 1.15 &&
        energies["random"][i] <= best * 1.15 &&
        energies["bohb"][i] <= best * 1.15) {
      ++all_close;
    }
  }
  bench::shape_check("all algorithms agree within 15% on every arch",
                     all_close == 3);
  bench::shape_check("BOHB spends less emulator time than grid",
                     tuning_time["bohb"] < tuning_time["grid"]);
  return 0;
}
