// Ablation: DVFS frequency levels — the third inference system parameter
// the Inference Tuning Server tunes (§3.4: "number of cores, memory,
// frequency"). Sweeps each edge device's frequency ladder at a fixed
// batch/core configuration.
#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: DVFS levels",
                "inference throughput & energy across frequency steps",
                "higher f: more thpt, more power; J/sample has a sweet spot");

  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;

  bool thpt_monotone = true;
  int devices_with_interior_or_low_optimum = 0;
  for (const DeviceProfile& device : all_edge_devices()) {
    CostModel model(device);
    std::printf("\n%s — batch 8, %d cores\n", device.name.c_str(),
                device.max_cores);
    TextTable table({"freq [GHz]", "thpt [samples/s]", "power [W]",
                     "energy [J/sample]"});
    double prev_thpt = 0;
    double best_energy = 1e18;
    std::size_t best_energy_idx = 0;
    for (std::size_t i = 0; i < device.freq_levels_ghz.size(); ++i) {
      const double freq = device.freq_levels_ghz[i];
      CostEstimate est =
          model
              .inference_cost(arch, {.batch_size = 8,
                                     .cores = device.max_cores,
                                     .freq_ghz = freq})
              .value();
      if (est.throughput_sps < prev_thpt) thpt_monotone = false;
      prev_thpt = est.throughput_sps;
      const double energy = est.energy_per_sample_j(8);
      if (energy < best_energy) {
        best_energy = energy;
        best_energy_idx = i;
      }
      table.add_row({bench::fmt(freq, 2), bench::fmt(est.throughput_sps, 2),
                     bench::fmt(est.power_w, 2), bench::fmt(energy, 4)});
    }
    if (best_energy_idx + 1 < device.freq_levels_ghz.size()) {
      ++devices_with_interior_or_low_optimum;
    }
    std::printf("%s", table.render().c_str());
  }

  bench::shape_check("throughput is monotone in frequency", thpt_monotone);
  bench::shape_check(
      "on >= 2 devices the energy-optimal frequency is below the maximum",
      devices_with_interior_or_low_optimum >= 2);
  return 0;
}
