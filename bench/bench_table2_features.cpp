// Table 2: feature matrix of related systems. The EdgeTune row is verified
// against this repo's actual capabilities (the features are exercised, not
// just asserted).
#include "bench/bench_util.hpp"
#include "tuning/baselines.hpp"

using namespace edgetune;

int main() {
  bench::header("Table 2", "State-of-the-art systems: supported features",
                "EdgeTune is the only row with every column checked");

  TextTable table({"System", "CPU", "GPU", "Hyper", "System", "Arch",
                   "Tuning", "Training", "Inference", "Multi-sample"});
  auto row = [&](const char* name, std::initializer_list<bool> flags) {
    std::vector<std::string> cells = {name};
    for (bool f : flags) cells.emplace_back(f ? "yes" : "-");
    table.add_row(std::move(cells));
  };
  // Columns: cpu, gpu, hyper, system, architecture params; tuning, training,
  // inference objectives; multi-sample inference. (Paper Table 2.)
  row("ChamNet", {true, true, false, false, true, false, true, true, false});
  row("DPP-Net", {true, true, false, false, true, false, true, true, false});
  row("FBNet", {true, true, false, false, true, false, true, true, false});
  row("HyperPower", {false, true, true, false, true, true, true, false, false});
  row("MnasNet", {true, false, false, false, true, false, true, true, false});
  row("NeuralPower", {false, true, false, false, true, true, true, false, false});
  row("ProxylessNAS", {true, true, false, false, true, false, true, true, false});
  row("EdgeTune", {true, true, true, true, true, true, true, true, true});
  std::printf("%s", table.render().c_str());

  // Verify the EdgeTune column claims against the implementation.
  EdgeTuneOptions options = bench::bench_options(WorkloadKind::kNlp);
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 240;
  EdgeTune tuner(options);
  SearchSpace space = tuner.model_search_space();
  bench::shape_check("hyperparameters tuned (train_batch, lr)",
                     space.find("train_batch") != nullptr &&
                         space.find("lr") != nullptr);
  bench::shape_check("system parameters tuned (num_gpus)",
                     space.find("num_gpus") != nullptr);
  bench::shape_check("architecture parameters tuned (model_hparam)",
                     space.find("model_hparam") != nullptr);
  Result<TuningReport> report = tuner.run();
  bench::shape_check("inference objective produced a recommendation",
                     report.ok() && report.value().inference.throughput_sps > 0);
  bench::shape_check(
      "multi-sample inference supported (recommended batch >= 1)",
      report.ok() && report.value().inference.config.count("inf_batch") > 0);
  return 0;
}
