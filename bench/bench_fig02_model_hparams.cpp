// Fig 2: model hyperparameter (ResNet layers 18/34/50) vs training
// runtime+energy (a) and inference throughput+energy (b).
// Paper shape: training cost grows with depth; inference throughput is
// inversely proportional to layers while energy/image is proportional.
#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 2", "ResNet depth vs training & inference cost",
                "thpt falls with layers; energy/img and train cost rise");

  CostModel server(device_titan_server());
  CostModel edge(device_rpi3b());
  const std::int64_t train_samples =
      workload_info(WorkloadKind::kImageClassification).train_samples;

  TextTable table({"layers", "train runtime [m]", "train energy [kJ]",
                   "inf thpt [imgs/s]", "inf energy [J/img]"});
  std::vector<double> runtimes, energies, thpts, inf_energies;
  for (int depth : {18, 34, 50}) {
    Rng rng(1);
    ArchSpec arch = build_resnet({.depth = depth}, rng).value().arch;
    // Training: 10 epochs at the paper-typical batch 128 on 1 GPU.
    CostEstimate epoch =
        server
            .train_epoch_cost(arch, {.batch_size = 128, .num_gpus = 1},
                              train_samples)
            .value();
    const double runtime_m = epoch.latency_s * 10 / 60.0;
    const double energy_kj = epoch.energy_j * 10 / 1000.0;
    // Inference: single image on the edge device, all cores.
    CostEstimate inf =
        edge.inference_cost(arch, {.batch_size = 1, .cores = 4}).value();
    runtimes.push_back(runtime_m);
    energies.push_back(energy_kj);
    thpts.push_back(inf.throughput_sps);
    inf_energies.push_back(inf.energy_per_sample_j(1));
    table.add_row({std::to_string(depth), bench::fmt(runtime_m, 1),
                   bench::fmt(energy_kj, 1), bench::fmt(inf.throughput_sps, 2),
                   bench::fmt(inf.energy_per_sample_j(1), 3)});
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check("training runtime grows with layers",
                     runtimes[0] < runtimes[1] && runtimes[1] < runtimes[2]);
  bench::shape_check("training energy grows with layers",
                     energies[0] < energies[1] && energies[1] < energies[2]);
  bench::shape_check("inference throughput inversely proportional to layers",
                     thpts[0] > thpts[1] && thpts[1] > thpts[2]);
  bench::shape_check(
      "inference energy per image proportional to layers",
      inf_energies[0] < inf_energies[1] && inf_energies[1] < inf_energies[2]);
  return 0;
}
