// Ablation: the historical-results cache (§3.4). With the cache on, each
// architecture's inference configuration is tuned once and reused; off, the
// Inference Tuning Server re-tunes every trial. The paper claims the cache
// "avoids retuning architectures and parameters twice, with the cost of a
// small storage overhead".
#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: historical cache", "cache on vs off (§3.4)",
                "cache removes repeated inference-tuning time and energy");

  struct Row {
    double runtime_m, energy_kj, inference_s;
    std::size_t hits, misses;
  };
  std::map<bool, Row> rows;
  for (bool use_cache : {true, false}) {
    EdgeTuneOptions options =
        bench::bench_options(WorkloadKind::kImageClassification);
    options.inference.use_cache = use_cache;
    Result<TuningReport> result = EdgeTune(options).run();
    if (!result.ok()) return 1;
    double inference_s = 0;
    for (const TrialLog& t : result.value().trials) {
      inference_s += t.inference_tuning_s;
    }
    rows[use_cache] = {result.value().tuning_runtime_s / 60.0,
                       result.value().tuning_energy_j / 1000.0, inference_s,
                       result.value().cache_hits,
                       result.value().cache_misses};
  }

  TextTable table({"cache", "tuning [m]", "energy [kJ]",
                   "inference-server time [s]", "hits", "misses"});
  for (bool use_cache : {true, false}) {
    const Row& r = rows[use_cache];
    table.add_row({use_cache ? "on" : "off", bench::fmt(r.runtime_m, 2),
                   bench::fmt(r.energy_kj, 1), bench::fmt(r.inference_s, 1),
                   std::to_string(r.hits), std::to_string(r.misses)});
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check("cache cuts total inference-server time",
                     rows[true].inference_s < rows[false].inference_s);
  bench::shape_check("cache does not increase tuning energy",
                     rows[true].energy_kj <= rows[false].energy_kj * 1.001);
  bench::shape_check("cache-on run observed hits", rows[true].hits > 0);
  return 0;
}
