// Distributed fleet overhead (DESIGN §5.5).
//
// The fleet's promise is "same bytes, more machines": sharding trial
// measurement across worker processes must not change the report, and its
// wire overhead must be negligible next to a trial measurement. This
// harness measures the two layers separately:
//   1. microbench: length-prefixed frame round-trips over loopback, and
//      EvalRequest/TrialMeasurement JSON marshal round-trips — the full
//      per-trial wire cost;
//   2. end-to-end: one EdgeTune search run serially vs. on an in-process
//      coordinator with two worker threads, checking byte parity of the
//      reports and reporting the real wall-clock ratio.
// All report numbers stay simulated time; only the overhead measurements
// here are real wall clock (and therefore host-dependent).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/socket.hpp"
#include "tuning/fleet.hpp"
#include "tuning/report_io.hpp"

using namespace edgetune;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct LoopbackPair {
  TcpListener listener;
  TcpStream client;
  TcpStream server;
  bool ok = false;
};

LoopbackPair make_pair_or_die() {
  LoopbackPair pair;
  Result<TcpListener> listener = TcpListener::listen(0);
  if (!listener.ok()) return pair;
  pair.listener = std::move(listener).value();
  Result<TcpStream> client =
      TcpStream::connect("127.0.0.1", pair.listener.port());
  if (!client.ok()) return pair;
  pair.client = std::move(client).value();
  Result<TcpStream> server = pair.listener.accept();
  if (!server.ok()) return pair;
  pair.server = std::move(server).value();
  pair.ok = true;
  return pair;
}

/// Frames/s for `iters` alternating write/read round-trips of `payload`.
/// Alternating keeps this single-threaded: each frame fits the socket
/// buffer, so the write never blocks on the unread read side.
double frame_round_trips_per_s(int iters, const std::string& payload) {
  LoopbackPair pair = make_pair_or_die();
  if (!pair.ok) return 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!write_frame(pair.client, 5, payload).is_ok()) return 0;
    Result<Frame> frame = read_frame(pair.server);
    if (!frame.ok() || frame.value().payload.size() != payload.size()) {
      return 0;
    }
  }
  return iters / seconds_since(start);
}

}  // namespace

int main() {
  bench::header("fleet", "distributed tuning fleet overhead (DESIGN §5.5)",
                "wire cost per trial << measurement cost; "
                "fleet report byte-identical to serial");

  // --- 1. Wire microbenches ------------------------------------------------
  EdgeTuneOptions options = bench::bench_options(WorkloadKind::kNlp);
  EdgeTune tuner(options);
  Rng rng(7);
  EvalRequest request;
  request.trial_index = 0;
  request.config = tuner.model_search_space().sample(rng);
  request.resource = options.hyperband.max_resource;
  const TrialMeasurement measurement = tuner.measure_one(request);
  const std::string result_payload =
      trial_measurement_to_json(measurement).dump();

  constexpr int kFrameIters = 20000;
  const double small_fps =
      frame_round_trips_per_s(kFrameIters, std::string(64, 'x'));
  const double result_fps = frame_round_trips_per_s(kFrameIters,
                                                    result_payload);

  constexpr int kMarshalIters = 20000;
  const auto marshal_start = std::chrono::steady_clock::now();
  bool marshal_ok = true;
  for (int i = 0; i < kMarshalIters; ++i) {
    Result<TrialMeasurement> back = trial_measurement_from_json(
        trial_measurement_to_json(measurement));
    marshal_ok = marshal_ok && back.ok() &&
                 back.value().outcome.accuracy == measurement.outcome.accuracy;
  }
  const double marshal_per_s = kMarshalIters / seconds_since(marshal_start);

  TextTable wire({"operation", "per second", "us each"});
  const auto row = [&](const char* op, double per_s) {
    wire.add_row({op, bench::fmt(per_s, 0),
                  bench::fmt(per_s > 0 ? 1e6 / per_s : 0, 2)});
  };
  row("64 B frame round-trip", small_fps);
  row("RESULT frame round-trip", result_fps);
  row("measurement marshal round-trip", marshal_per_s);
  std::printf("%s", wire.render().c_str());
  std::printf("RESULT payload size: %zu bytes\n\n", result_payload.size());

  // --- 2. End-to-end: serial vs. 2-worker fleet ----------------------------
  const auto serial_start = std::chrono::steady_clock::now();
  Result<TuningReport> serial = EdgeTune(options).run();
  const double serial_wall_s = seconds_since(serial_start);
  if (!serial.ok()) {
    std::printf("serial run failed: %s\n", serial.status().to_string().c_str());
    return 1;
  }

  constexpr int kWorkers = 2;
  FleetOptions fleet_options;
  auto fleet = std::make_shared<FleetCoordinator>(
      fleet_options, measurement_fingerprint(options));
  if (!fleet->start().is_ok()) {
    std::printf("fleet coordinator failed to start\n");
    return 1;
  }
  std::vector<std::thread> crew;  // NOLINT(thread-outside-pool)
  for (int i = 0; i < kWorkers; ++i) {
    crew.emplace_back([&options, port = fleet->port()] {
      (void)run_fleet_worker("127.0.0.1", port, options);
    });
  }
  (void)fleet->wait_for_workers(kWorkers, 30);
  const auto fleet_start = std::chrono::steady_clock::now();
  EdgeTuneOptions fleet_run = options;
  fleet_run.fleet = fleet;
  Result<TuningReport> distributed = EdgeTune(std::move(fleet_run)).run();
  const double fleet_wall_s = seconds_since(fleet_start);
  fleet->shutdown();
  for (std::thread& worker : crew) worker.join();  // NOLINT(thread-outside-pool)
  if (!distributed.ok()) {
    std::printf("fleet run failed: %s\n",
                distributed.status().to_string().c_str());
    return 1;
  }

  TextTable e2e({"mode", "wall [s]", "trials", "simulated tuning [m]"});
  e2e.add_row({"serial", bench::fmt(serial_wall_s, 2),
               std::to_string(serial.value().trials.size()),
               bench::fmt(serial.value().tuning_runtime_s / 60.0, 2)});
  e2e.add_row({"fleet x" + std::to_string(kWorkers),
               bench::fmt(fleet_wall_s, 2),
               std::to_string(distributed.value().trials.size()),
               bench::fmt(distributed.value().tuning_runtime_s / 60.0, 2)});
  std::printf("%s", e2e.render().c_str());

  const std::string serial_dump = report_to_json(serial.value()).dump();
  const std::string fleet_dump = report_to_json(distributed.value()).dump();
  bench::shape_check("wire ops are cheap (>10k frame round-trips/s)",
                     small_fps > 10000 && marshal_ok);
  bench::shape_check("fleet report byte-identical to serial",
                     fleet_dump == serial_dump);
  return fleet_dump == serial_dump ? 0 : 1;
}
