// Ablation: the successive-halving reduction factor eta (§2.2/§4.3). Larger
// eta discards configurations more aggressively: fewer total trials and
// cheaper tuning, at the risk of dropping late-blooming configurations.
#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: reduction factor eta",
                "multi-budget + BOHB with eta in {2, 3, 4} (IC)",
                "fewer trials at similar cost; aggressive eta risks quality");

  struct Row {
    std::size_t trials;
    double runtime_m, energy_kj, best_acc;
  };
  std::map<int, Row> rows;
  for (int eta : {2, 3, 4}) {
    EdgeTuneOptions options =
        bench::bench_options(WorkloadKind::kImageClassification);
    options.hyperband.eta = eta;
    Result<TuningReport> result = EdgeTune(options).run();
    if (!result.ok()) return 1;
    rows[eta] = {result.value().trials.size(),
                 result.value().tuning_runtime_s / 60.0,
                 result.value().tuning_energy_j / 1000.0,
                 result.value().best_accuracy};
  }

  TextTable table(
      {"eta", "trials", "tuning [m]", "energy [kJ]", "best acc [%]"});
  for (int eta : {2, 3, 4}) {
    const Row& r = rows[eta];
    table.add_row({std::to_string(eta), std::to_string(r.trials),
                   bench::fmt(r.runtime_m, 2), bench::fmt(r.energy_kj, 1),
                   bench::fmt(100 * r.best_acc, 1)});
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check("eta=4 runs fewer trials than eta=2",
                     rows[4].trials < rows[2].trials);
  // Larger eta promotes straight to bigger rungs: fewer trials, each
  // heavier. Totals stay in the same range rather than shrinking.
  bench::shape_check("eta=4 total cost within 40% of eta=2",
                     rows[4].runtime_m <= rows[2].runtime_m * 1.4);
  bench::shape_check("moderate eta (2, 3) trains usable models (acc > 40%)",
                     rows[2].best_acc > 0.4 && rows[3].best_acc > 0.4);
  // The documented risk: the most aggressive eta can discard late bloomers
  // and lose final quality — it must never *win* on accuracy.
  bench::shape_check("eta=4 accuracy does not exceed eta=2's",
                     rows[4].best_acc <= rows[2].best_acc + 1e-9);
  return 0;
}
