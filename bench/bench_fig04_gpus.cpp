// Fig 4: number of GPUs {1, 4, 8} vs training runtime and energy, for batch
// 32 (a) and batch 1024 (b). Paper shapes: small batches get NO faster (up
// to 120% slower) with more GPUs; large batches speed up sublinearly while
// energy still grows.
#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 4", "multi-GPU training scaling (ResNet18)",
                "batch 32: no speedup, worse energy; batch 1024: sublinear");

  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  CostModel server(device_titan_server());
  const std::int64_t train_samples =
      workload_info(WorkloadKind::kImageClassification).train_samples;

  std::map<std::int64_t, std::vector<double>> times, energies;
  for (std::int64_t batch : {32, 1024}) {
    std::printf("(%s) training batch = %lld — 10 epochs\n",
                batch == 32 ? "a" : "b", static_cast<long long>(batch));
    TextTable table({"GPUs", "runtime [m]", "energy [kJ]"});
    for (int gpus : {1, 4, 8}) {
      CostEstimate epoch =
          server
              .train_epoch_cost(arch, {.batch_size = batch, .num_gpus = gpus},
                                train_samples)
              .value();
      times[batch].push_back(epoch.latency_s * 10 / 60.0);
      energies[batch].push_back(epoch.energy_j * 10 / 1000.0);
      table.add_row({std::to_string(gpus),
                     bench::fmt(times[batch].back(), 1),
                     bench::fmt(energies[batch].back(), 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  bench::shape_check("batch 32: more GPUs do not improve runtime",
                     times[32][1] >= times[32][0] * 0.98 &&
                         times[32][2] >= times[32][0] * 0.98);
  bench::shape_check("batch 32: more GPUs increase energy",
                     energies[32][2] > energies[32][0]);
  bench::shape_check("batch 1024: runtime improves with GPUs",
                     times[1024][2] < times[1024][0]);
  bench::shape_check(
      "batch 1024: speedup is sublinear (8 GPUs < 8x)",
      times[1024][0] / times[1024][2] < 8.0);
  bench::shape_check("batch 1024: energy grows despite lower runtime",
                     energies[1024][2] > energies[1024][0]);
  return 0;
}
