// Fig 10: placement of 9 training trials under grid search, random search,
// and BOHB on a 2-D parameter space. Paper shape: BOHB's trials concentrate
// in the most promising region; grid/random do not adapt.
#include "bench/bench_util.hpp"
#include "search/algorithms.hpp"

using namespace edgetune;

namespace {

// Smooth objective over [0,1]^2 with optimum at (0.7, 0.3) — "warmer colors"
// of the paper's heatmap.
double landscape(const Config& config, double /*resource*/) {
  const double x = config.at("x"), y = config.at("y");
  const double dx = x - 0.7, dy = y - 0.3;
  return dx * dx + dy * dy;
}

double distance_to_opt(const Config& config) {
  const double dx = config.at("x") - 0.7, dy = config.at("y") - 0.3;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

int main() {
  bench::header("Fig 10", "trial placement: grid vs random vs BOHB(TPE)",
                "adaptive search concentrates trials near the optimum");

  SearchSpace space;
  space.add(ParamSpec::real("x", 0, 1));
  space.add(ParamSpec::real("y", 0, 1));

  struct Algo {
    std::string name;
    std::unique_ptr<SearchAlgorithm> impl;
  };
  std::vector<Algo> algos;
  algos.push_back({"grid", std::make_unique<GridSearch>(space, 1.0, 3)});
  algos.push_back({"random", std::make_unique<RandomSearch>(space, 1.0, 9)});
  algos.push_back(
      {"bohb(tpe)", std::make_unique<TpeSearch>(
                        space, 1.0, 9, TpeOptions{.min_observations = 4})});

  std::map<std::string, SearchResult> results;
  for (auto& algo : algos) {
    Rng rng(42);
    results[algo.name] = algo.impl->optimize(landscape, rng);
    std::printf("\n%s — 9 trials (objective: lower/warmer is better)\n",
                algo.name.c_str());
    TextTable table({"trial", "x", "y", "objective", "dist to optimum"});
    for (const TrialRecord& t : results[algo.name].trials) {
      table.add_row({std::to_string(t.id + 1),
                     bench::fmt(t.config.at("x"), 3),
                     bench::fmt(t.config.at("y"), 3),
                     bench::fmt(t.objective, 4),
                     bench::fmt(distance_to_opt(t.config), 3)});
    }
    std::printf("%s", table.render().c_str());
  }

  auto mean_dist = [&](const std::string& name, std::size_t from,
                       std::size_t to) {
    double sum = 0;
    for (std::size_t i = from; i < to; ++i) {
      sum += distance_to_opt(results[name].trials[i].config);
    }
    return sum / static_cast<double>(to - from);
  };
  // BOHB's later trials (post model warm-up) sit closer to the optimum than
  // its early random ones; grid stays uniformly spread.
  bench::shape_check(
      "BOHB trials 6-9 concentrate nearer the optimum than trials 1-4",
      mean_dist("bohb(tpe)", 5, 9) < mean_dist("bohb(tpe)", 0, 4));
  bench::shape_check("BOHB best <= grid best",
                     results["bohb(tpe)"].best_objective <=
                         results["grid"].best_objective + 1e-9);
  return 0;
}
