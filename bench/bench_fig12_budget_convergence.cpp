// Fig 12: per-trial training time (a) and model accuracy (b) over the trial
// sequence for the three budget approaches, on the image-classification
// workload (paper: ResNet on CIFAR10, target accuracy 80%).
// Paper shape: epoch budget reaches the target in few trials but each trial
// is very expensive; dataset budget has cheap trials but accuracy plateaus
// far below the target; multi-budget balances both.
//
// Note on scale: accuracies are proxy-model accuracies; the target on the
// proxy task is 70% (see EXPERIMENTS.md for the calibration).
#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  const double kTarget = 0.70;
  bench::header("Fig 12", "budget policies: trial duration & accuracy",
                "epochs: slow+accurate; dataset: fast+capped; multi: both");

  struct Series {
    std::vector<double> durations_m;
    std::vector<double> accuracies;
    double total_runtime_m = 0;
    double best_accuracy = 0;
    int trials_to_target = -1;
  };
  std::map<std::string, Series> series;

  for (const char* policy : {"epochs", "dataset", "multi-budget", "time"}) {
    EdgeTuneOptions options =
        bench::bench_options(WorkloadKind::kImageClassification);
    options.budget_policy = policy;
    options.hyperband = {1, 10, 2, 2};  // two brackets: ~25 scheduled trials
    options.runner.proxy_samples = 1000;
    options.target_accuracy = kTarget;
    Result<TuningReport> result = EdgeTune(options).run();
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", policy,
                   result.status().to_string().c_str());
      return 1;
    }
    Series s;
    for (const TrialLog& t : result.value().trials) {
      s.durations_m.push_back(t.duration_s / 60.0);
      s.accuracies.push_back(t.accuracy);
      if (s.trials_to_target < 0 && t.accuracy >= kTarget) {
        s.trials_to_target = t.id + 1;
      }
    }
    s.total_runtime_m = result.value().tuning_runtime_s / 60.0;
    s.best_accuracy = result.value().best_accuracy;
    series[policy] = std::move(s);
  }

  std::printf("per-trial series (duration [m] / accuracy [%%]):\n");
  TextTable table({"trial", "epochs", "dataset", "multi-budget", "time"});
  std::size_t max_len = 0;
  for (auto& [name, s] : series) max_len = std::max(max_len, s.durations_m.size());
  for (std::size_t i = 0; i < max_len; ++i) {
    auto cell = [&](const char* name) -> std::string {
      const Series& s = series[name];
      if (i >= s.durations_m.size()) return "-";
      return bench::fmt(s.durations_m[i], 1) + " / " +
             bench::fmt(100 * s.accuracies[i], 1);
    };
    table.add_row({std::to_string(i + 1), cell("epochs"), cell("dataset"),
                   cell("multi-budget"), cell("time")});
  }
  std::printf("%s", table.render().c_str());

  TextTable summary({"budget", "trials run", "reached target at", "best acc [%]",
                     "total tuning [m]"});
  for (const char* name : {"epochs", "dataset", "multi-budget", "time"}) {
    const Series& s = series[name];
    summary.add_row({name, std::to_string(s.durations_m.size()),
                     s.trials_to_target > 0
                         ? std::to_string(s.trials_to_target)
                         : std::string("never"),
                     bench::fmt(100 * s.best_accuracy, 1),
                     bench::fmt(s.total_runtime_m, 1)});
  }
  std::printf("\n%s", summary.render().c_str());

  auto mean_duration = [&](const char* name) {
    const Series& s = series[name];
    double sum = 0;
    for (double d : s.durations_m) sum += d;
    return sum / static_cast<double>(s.durations_m.size());
  };
  bench::shape_check("epoch budget reaches the target accuracy",
                     series["epochs"].best_accuracy >= kTarget);
  bench::shape_check("multi-budget reaches the target accuracy",
                     series["multi-budget"].best_accuracy >= kTarget);
  bench::shape_check("dataset budget plateaus below the target",
                     series["dataset"].best_accuracy < kTarget);
  bench::shape_check("dataset trials are the cheapest on average",
                     mean_duration("dataset") < mean_duration("epochs") &&
                         mean_duration("dataset") <
                             mean_duration("multi-budget"));
  bench::shape_check("multi-budget trials cheaper than epoch trials",
                     mean_duration("multi-budget") < mean_duration("epochs"));
  bench::shape_check(
      "multi-budget total tuning time beats the epoch budget",
      series["multi-budget"].total_runtime_m < series["epochs"].total_runtime_m);
  // The paper's third budget dimension (§2.2): duration caps behave like a
  // sane middle ground — trials bounded, learning still possible.
  bench::shape_check("time budget trains usable models (acc > 40%)",
                     series["time"].best_accuracy > 0.4);
  return 0;
}
