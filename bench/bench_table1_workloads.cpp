// Table 1: the evaluation workloads, paper originals vs. this repo's
// synthetic substitutes (DESIGN.md §2).
#include "bench/bench_util.hpp"
#include "data/synthetic.hpp"

using namespace edgetune;

int main() {
  bench::header("Table 1", "Workloads used for experiments",
                "four workloads spanning IC / SR / NLP / OD");

  TextTable table({"ID", "Type", "Model", "Paper dataset", "Datasize",
                   "Train", "Test", "Synthetic substitute"});
  for (WorkloadKind kind : bench::workloads()) {
    const WorkloadDataInfo& info = workload_info(kind);
    table.add_row({info.id, info.type, info.model, info.paper_dataset,
                   info.datasize, std::to_string(info.train_samples),
                   std::to_string(info.test_samples), info.synthetic});
  }
  std::printf("%s", table.render().c_str());

  // Sanity: the generators actually produce each workload's modality.
  bool all_ok = true;
  for (WorkloadKind kind : bench::workloads()) {
    auto ds = make_workload_data(kind, 64, 1);
    all_ok = all_ok && ds != nullptr && ds->size() == 64 &&
             ds->num_classes() == workload_num_classes(kind);
  }
  bench::shape_check("all four synthetic datasets generate", all_ok);
  return 0;
}
