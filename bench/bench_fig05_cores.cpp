// Fig 5: number of CPU cores {1, 2, 4} vs inference throughput and energy
// for batch 1 (a) and batch 10 (b). Paper shapes: single-image inference
// gains no throughput from cores but burns more energy; multi-image scales
// with cores but sublinearly, with energy growing faster than throughput.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 5", "CPU cores vs inference performance (ResNet18)",
                "batch 1: flat thpt, rising energy; batch 10: sublinear");

  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  CostModel edge(device_rpi3b());

  std::map<std::int64_t, std::vector<double>> thpts, energies;
  for (std::int64_t batch : {1, 10}) {
    std::printf("(%s) inference batch = %lld\n", batch == 1 ? "a" : "b",
                static_cast<long long>(batch));
    TextTable table({"cores", "thpt [imgs/s]", "energy [J/img]"});
    for (int cores : {1, 2, 4}) {
      CostEstimate est =
          edge.inference_cost(arch, {.batch_size = batch, .cores = cores})
              .value();
      thpts[batch].push_back(est.throughput_sps);
      energies[batch].push_back(est.energy_per_sample_j(batch));
      table.add_row({std::to_string(cores),
                     bench::fmt(thpts[batch].back(), 2),
                     bench::fmt(energies[batch].back(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  bench::shape_check("batch 1: 4 cores < 2x the 1-core throughput",
                     thpts[1][2] < 2.0 * thpts[1][0]);
  bench::shape_check("batch 1: energy rises with cores",
                     energies[1][2] > energies[1][0]);
  bench::shape_check("batch 10: throughput grows with cores",
                     thpts[10][2] > thpts[10][0]);
  bench::shape_check("batch 10: scaling is sublinear (< 4x at 4 cores)",
                     thpts[10][2] < 4.0 * thpts[10][0]);
  // Footnote 1 of the paper: "the most energy-saving solution requires 2 CPU
  // cores, which is however not the one with highest throughput" — the sweet
  // spot differs per objective.
  const std::size_t best_energy_cores =
      std::min_element(energies[1].begin(), energies[1].end()) -
      energies[1].begin();
  const std::size_t best_thpt_cores =
      std::max_element(thpts[1].begin(), thpts[1].end()) - thpts[1].begin();
  bench::shape_check(
      "batch 1: energy-optimal core count != throughput-optimal one",
      best_energy_cores != best_thpt_cores);
  return 0;
}
