// Shared helpers for the experiment harnesses. Each bench binary regenerates
// one table or figure of the paper (DESIGN.md §4) and prints:
//   1. the experiment header (paper location + expected shape),
//   2. the measured rows/series as an aligned table,
//   3. a SHAPE-CHECK section that tests the paper's qualitative claim
//      against the measured numbers and prints ok/VIOLATION.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "tuning/model_server.hpp"

namespace edgetune::bench {

inline void header(const std::string& id, const std::string& what,
                   const std::string& expected_shape) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("expected shape: %s\n", expected_shape.c_str());
  std::printf("================================================================\n");
}

inline void shape_check(const std::string& claim, bool holds) {
  std::printf("[shape-check] %-58s %s\n", claim.c_str(),
              holds ? "ok" : "VIOLATION");
}

inline std::string fmt(double v, int decimals = 2) {
  return format_double(v, decimals);
}

/// Canonical workload list in the paper's Table 1 order.
inline const std::vector<WorkloadKind>& workloads() {
  static const std::vector<WorkloadKind> kAll = {
      WorkloadKind::kImageClassification, WorkloadKind::kSpeech,
      WorkloadKind::kNlp, WorkloadKind::kDetection};
  return kAll;
}

/// Tuning options sized so a full multi-workload sweep finishes in minutes
/// of wall time while exercising the real pipeline (see DESIGN.md §5,
/// "Virtual time": all reported runtimes/energies are simulated).
inline EdgeTuneOptions bench_options(WorkloadKind workload,
                                     std::uint64_t seed = 7) {
  EdgeTuneOptions options;
  options.workload = workload;
  options.search_algorithm = "bohb";
  options.budget_policy = "multi-budget";
  options.hyperband = {1, 8, 2, 2};
  options.runner.proxy_samples = 500;
  options.inference.algorithm = "grid";
  options.edge_device = device_rpi3b();
  options.seed = seed;
  return options;
}

}  // namespace edgetune::bench
