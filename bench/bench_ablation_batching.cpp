// Ablation / Fig 8 scenarios: the Batching subcomponent in the two
// deployments the paper motivates — a server receiving N-sample queries at a
// fixed frequency, and a multi-stream system with Poisson single-sample
// arrivals. Sweeps the batching knob and shows an interior optimum.
#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"
#include "sim/batching_sim.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 8 scenarios: batching",
                "server (fixed-frequency N-sample queries) & Poisson streams",
                "tuned batch beats both no-batching and max-batching");

  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  CostModel edge(device_i7_7567u());
  const InferenceLatencyFn latency = [&](std::int64_t batch) {
    return edge
        .inference_cost(arch, {.batch_size = batch, .cores = 4})
        .value()
        .latency_s;
  };

  std::printf("(a) server scenario: 64-sample queries every 2.5 s\n");
  TextTable server_table({"split batch", "mean response [s]",
                          "p95 [s]", "engine util [%]"});
  std::map<std::int64_t, double> server_response;
  for (std::int64_t split : {1, 4, 16, 64}) {
    ServerScenarioConfig config;
    config.samples_per_query = 64;
    config.query_period_s = 2.5;
    config.split_batch = split;
    config.horizon_s = 120;
    QueueingStats stats = simulate_server_scenario(config, latency).value();
    server_response[split] = stats.mean_response_s;
    server_table.add_row({std::to_string(split),
                          bench::fmt(stats.mean_response_s, 3),
                          bench::fmt(stats.p95_response_s, 3),
                          bench::fmt(100 * stats.utilization, 1)});
  }
  std::printf("%s", server_table.render().c_str());

  std::printf("\n(b) multi-stream: Poisson arrivals at 150 samples/s\n");
  TextTable stream_table({"max batch", "mean response [s]", "p95 [s]",
                          "mean batch", "util [%]"});
  std::map<std::int64_t, double> stream_response;
  for (std::int64_t max_batch : {1, 4, 16, 64}) {
    MultiStreamScenarioConfig config;
    config.arrival_rate_per_s = 150.0;  // above batch-1 service capacity
    config.max_batch = max_batch;
    config.max_wait_s = 0.05;
    config.horizon_s = 120;
    QueueingStats stats =
        simulate_multistream_scenario(config, latency).value();
    stream_response[max_batch] = stats.mean_response_s;
    stream_table.add_row({std::to_string(max_batch),
                          bench::fmt(stats.mean_response_s, 3),
                          bench::fmt(stats.p95_response_s, 3),
                          bench::fmt(stats.mean_batch_size, 1),
                          bench::fmt(100 * stats.utilization, 1)});
  }
  std::printf("%s", stream_table.render().c_str());

  bench::shape_check(
      "server: splitting into batches beats single-sample service",
      server_response[16] < server_response[1]);
  bench::shape_check(
      "multi-stream: aggregation beats single-sample service",
      stream_response[16] < stream_response[1]);
  bench::shape_check(
      "multi-stream: a moderate batch beats the largest one",
      stream_response[16] <= stream_response[64] * 1.25);
  return 0;
}
