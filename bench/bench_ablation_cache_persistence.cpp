// Ablation: cross-job cache persistence (§3.4). The historical database is
// file-backed: a SECOND tuning job over the same workload starts with every
// architecture's inference configuration already known — all hits, zero
// inference-server time.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: persistent historical database (§3.4)",
                "second tuning job reuses the first job's inference results",
                "run 2: all cache hits, zero inference-server time");

  const std::string cache_path = "/tmp/edgetune_bench_cache.json";
  std::remove(cache_path.c_str());

  struct Run {
    std::size_t hits, misses;
    double inference_s;
  };
  Run runs[2];
  for (int i = 0; i < 2; ++i) {
    EdgeTuneOptions options =
        bench::bench_options(WorkloadKind::kImageClassification);
    options.inference.cache_path = cache_path;
    Result<TuningReport> result = EdgeTune(options).run();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
      return 1;
    }
    double inference_s = 0;
    for (const TrialLog& t : result.value().trials) {
      inference_s += t.inference_tuning_s;
    }
    runs[i] = {result.value().cache_hits, result.value().cache_misses,
               inference_s};
  }
  std::remove(cache_path.c_str());

  TextTable table({"run", "cache hits", "cache misses",
                   "inference-server time [s]"});
  for (int i = 0; i < 2; ++i) {
    table.add_row({std::to_string(i + 1), std::to_string(runs[i].hits),
                   std::to_string(runs[i].misses),
                   bench::fmt(runs[i].inference_s, 2)});
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check("first run pays misses", runs[0].misses > 0);
  bench::shape_check("second run re-tunes nothing", runs[1].misses == 0);
  bench::shape_check("second run's inference-server time is zero",
                     runs[1].inference_s == 0.0);
  return 0;
}
