// Fig 15: percent error of the Inference Tuning Server's emulated throughput
// and energy against measurements on the "physical" edge device. The
// physical device is a perturbed twin of the nominal profile (DESIGN.md §2)
// plus per-measurement noise — exactly what separates a datasheet-calibrated
// emulator from silicon. Paper shape: errors mostly below ~20% with a tail
// of outliers (their whiskers reach ~140%).
#include "bench/bench_util.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 15", "emulation error vs physical edge devices",
                "median percent error <= ~20% for throughput and energy");

  Rng rng(2024);
  std::vector<double> thpt_errors, energy_errors;

  for (const DeviceProfile& nominal : all_edge_devices()) {
    CostModel emulator(nominal);
    // The physical twin: same device, parameters off by calibration error.
    CostModel physical(
        perturb_profile(nominal, stable_hash64(nominal.name) ^ 77, 0.35));
    for (int depth : {18, 34, 50}) {
      Rng model_rng(depth);
      ArchSpec arch =
          build_resnet({.depth = depth}, model_rng).value().arch;
      for (int trial = 0; trial < 12; ++trial) {
        InferenceConfig config;
        config.batch_size = rng.uniform_int(1, 64);
        config.cores = static_cast<int>(rng.uniform_int(1, nominal.max_cores));
        config.freq_ghz = nominal.freq_levels_ghz[rng.bounded(
            nominal.freq_levels_ghz.size())];
        Result<CostEstimate> est_result =
            emulator.inference_cost(arch, config);
        Result<CostEstimate> truth_result =
            physical.inference_cost(arch, config);
        if (!est_result.ok() || !truth_result.ok()) {
          continue;  // undeployable configuration (exceeds device RAM)
        }
        CostEstimate est = est_result.value();
        CostEstimate truth = truth_result.value();
        // Per-measurement noise on the physical reading (power meter, OS
        // jitter): ~8%.
        const double noise_t = 1.0 + rng.gaussian(0.0, 0.08);
        const double noise_e = 1.0 + rng.gaussian(0.0, 0.08);
        const double emp_thpt = truth.throughput_sps * noise_t;
        const double emp_energy =
            truth.energy_per_sample_j(config.batch_size) * noise_e;
        thpt_errors.push_back(
            100.0 * std::abs(emp_thpt - est.throughput_sps) / emp_thpt);
        energy_errors.push_back(
            100.0 *
            std::abs(emp_energy - est.energy_per_sample_j(config.batch_size)) /
            emp_energy);
      }
    }
  }

  BoxStats thpt = box_stats(thpt_errors);
  BoxStats energy = box_stats(energy_errors);
  TextTable table({"metric", "min", "q1", "median", "q3", "max", "mean"});
  table.add_row({"throughput PE [%]", bench::fmt(thpt.min, 1),
                 bench::fmt(thpt.q1, 1), bench::fmt(thpt.median, 1),
                 bench::fmt(thpt.q3, 1), bench::fmt(thpt.max, 1),
                 bench::fmt(thpt.mean, 1)});
  table.add_row({"energy PE [%]", bench::fmt(energy.min, 1),
                 bench::fmt(energy.q1, 1), bench::fmt(energy.median, 1),
                 bench::fmt(energy.q3, 1), bench::fmt(energy.max, 1),
                 bench::fmt(energy.mean, 1)});
  std::printf("%s", table.render().c_str());
  std::printf("samples: %zu configurations across %zu devices x 3 depths\n",
              thpt_errors.size(), all_edge_devices().size());

  bench::shape_check("median throughput error <= 20%", thpt.median <= 20.0);
  bench::shape_check("median energy error <= 20%", energy.median <= 20.0);
  bench::shape_check("q3 (bulk of the box) <= 35%",
                     thpt.q3 <= 35.0 && energy.q3 <= 35.0);
  return 0;
}
