// Always-on service benchmark (DESIGN.md §5.7): admission latency, retention
// bounds, and deterministic quota enforcement of the TuningJobServer.
//
// Three claims, each the fix for a service-killing bug:
//   1. submit() admission latency is FLAT in queue depth — p99 at ~1000
//      queued jobs within 2x of p99 at ~100 (the old jobs() / unfinished()
//      paths were O(n) scans, so pollers+submitters degraded together).
//   2. Memory is bounded by the retention policy: after draining thousands
//      of jobs the server retains at most max_retained terminal results
//      (bounded by the *retained-job count*, which is what the policy
//      controls — not RSS, which the allocator owns). No admitted job is
//      lost: completed == admitted, reaped + evicted == completed.
//   3. Per-tenant quotas and the bounded queue reject deterministically:
//      two identical submission streams produce identical rejection counts.
//
// kProbe jobs (no-op through the full admission/dispatch/retention
// machinery) keep the benchmark about the service, not the tuner. pause()
// holds dispatch so queue depth equals submissions — exact, reproducible
// depths. p99s are min-of-reps to shed scheduler noise on small hosts.
//
// Usage: bench_job_server [--smoke] [--json <path>]
// (tools/run_service_bench wraps this and writes BENCH_service.json.)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "tuning/job_server.hpp"

using namespace edgetune;
using namespace edgetune::bench;

namespace {

/// Deterministic two-tenant, three-priority submission stream. The tenant
/// split is 2:1 so tenant-a hits a per-tenant quota while the queue still
/// has room — exercising both rejection paths in the quota phase.
JobRequest probe(int i) {
  JobRequest request;
  request.system = JobSystem::kProbe;
  request.tenant = (i % 3 == 0) ? "tenant-b" : "tenant-a";
  request.priority = i % 3;
  return request;
}

double p99_us(std::vector<double> window) {
  std::sort(window.begin(), window.end());
  return window[static_cast<std::size_t>(
      0.99 * static_cast<double>(window.size() - 1))];
}

void drain(const TuningJobServer& server) {
  while (server.unfinished() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

struct LatencyRep {
  double shallow_p99_us = 0;
  double deep_p99_us = 0;
  std::size_t admitted = 0;
  TuningServiceStats stats;  // after drain
};

/// Fills a paused server past `deep + window` jobs, timing every submit();
/// p99 windows are taken at queue depths [shallow, shallow+window) and
/// [deep, deep+window). Then resumes, drains, and snapshots the stats the
/// retention/no-job-lost checks run against.
LatencyRep measure_admission(int shallow, int deep, int window,
                             std::size_t max_retained) {
  TuningServiceOptions options;
  options.workers = 4;
  options.max_retained = max_retained;
  TuningJobServer server(options);
  server.pause();
  LatencyRep rep;
  std::vector<double> shallow_window;
  std::vector<double> deep_window;
  shallow_window.reserve(static_cast<std::size_t>(window));
  deep_window.reserve(static_cast<std::size_t>(window));
  const int total = deep + window;
  for (int i = 0; i < total; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const Result<JobId> id = server.submit(probe(i));
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (id.ok()) ++rep.admitted;  // unbounded queue here: always admitted
    if (i >= shallow && i < shallow + window) shallow_window.push_back(us);
    if (i >= deep) deep_window.push_back(us);
  }
  rep.shallow_p99_us = p99_us(std::move(shallow_window));
  rep.deep_p99_us = p99_us(std::move(deep_window));
  server.resume();
  drain(server);
  rep.stats = server.stats();
  return rep;
}

struct QuotaPass {
  std::size_t admitted = 0;
  TuningServiceStats stats;  // after drain

  [[nodiscard]] bool operator==(const QuotaPass& other) const {
    return admitted == other.admitted &&
           stats.rejected_queue_full == other.stats.rejected_queue_full &&
           stats.rejected_tenant_quota == other.stats.rejected_tenant_quota &&
           stats.completed == other.stats.completed;
  }
};

/// One deterministic admission-control pass: a paused server with a bounded
/// queue AND per-tenant quotas takes `submissions` submits from the probe()
/// stream. Single-threaded against a paused server, so the rejection
/// pattern is a pure function of the stream — two passes must agree.
QuotaPass quota_pass(int submissions) {
  TuningServiceOptions options;
  options.workers = 2;
  options.max_queued = 90;
  options.per_tenant_quota = 50;
  TuningJobServer server(options);
  server.pause();
  QuotaPass pass;
  for (int i = 0; i < submissions; ++i) {
    if (server.submit(probe(i)).ok()) ++pass.admitted;
  }
  server.resume();
  drain(server);
  pass.stats = server.stats();
  return pass;
}

Json rep_to_json(const LatencyRep& rep) {
  JsonObject obj;
  obj.emplace("shallow_p99_us", rep.shallow_p99_us);
  obj.emplace("deep_p99_us", rep.deep_p99_us);
  obj.emplace("admitted", rep.admitted);
  obj.emplace("completed", rep.stats.completed);
  obj.emplace("reaped", rep.stats.reaped);
  obj.emplace("evicted", rep.stats.evicted);
  obj.emplace("retained_terminal", rep.stats.retained_terminal);
  return Json(std::move(obj));
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const int shallow = 100;
  const int deep = smoke ? 300 : 1000;
  const int window = smoke ? 100 : 200;
  const int reps = smoke ? 3 : 5;
  const std::size_t max_retained = 64;
  const int quota_submissions = smoke ? 300 : 400;

  header("service",
         "always-on tuning service: admission latency, retention, quotas",
         "p99 submit() flat (<= 2x) from depth " + std::to_string(shallow) +
             " to " + std::to_string(deep) +
             "; no job lost; deterministic rejections");

  // --- 1. Admission latency vs queue depth ---------------------------------
  std::vector<LatencyRep> latency_reps;
  latency_reps.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    latency_reps.push_back(
        measure_admission(shallow, deep, window, max_retained));
  }
  double shallow_p99 = latency_reps[0].shallow_p99_us;
  double deep_p99 = latency_reps[0].deep_p99_us;
  TextTable table({"rep", "p99 @" + std::to_string(shallow) + " [us]",
                   "p99 @" + std::to_string(deep) + " [us]", "admitted",
                   "completed", "reaped", "evicted", "retained"});
  bool none_lost = true;
  bool retention_bounded = true;
  for (int r = 0; r < reps; ++r) {
    const LatencyRep& rep = latency_reps[static_cast<std::size_t>(r)];
    shallow_p99 = std::min(shallow_p99, rep.shallow_p99_us);
    deep_p99 = std::min(deep_p99, rep.deep_p99_us);
    none_lost = none_lost && rep.stats.completed == rep.admitted &&
                rep.stats.failed == 0 &&
                rep.stats.reaped + rep.stats.evicted +
                        rep.stats.retained_terminal ==
                    rep.stats.completed;
    retention_bounded =
        retention_bounded && rep.stats.retained_terminal <= max_retained;
    table.add_row({std::to_string(r), fmt(rep.shallow_p99_us, 3),
                   fmt(rep.deep_p99_us, 3), std::to_string(rep.admitted),
                   std::to_string(rep.stats.completed),
                   std::to_string(rep.stats.reaped),
                   std::to_string(rep.stats.evicted),
                   std::to_string(rep.stats.retained_terminal)});
  }
  std::printf("%s", table.render().c_str());
  const double ratio = deep_p99 / std::max(shallow_p99, 1e-3);
  std::printf("min-of-reps p99: %.3f us @%d -> %.3f us @%d (%.2fx)\n",
              shallow_p99, shallow, deep_p99, deep, ratio);

  std::printf("\n");
  // A sub-20us deep p99 passes outright: at that scale the "ratio" is timer
  // and allocator noise on an already-flat O(log n) insert.
  const bool flat = ratio <= 2.0 || deep_p99 < 20.0;
  shape_check("p99 admission latency flat (<= 2x) at 10x queue depth", flat);
  shape_check("no admitted job lost (completed == admitted, all accounted)",
              none_lost);
  shape_check("terminal retention bounded by max_retained=" +
                  std::to_string(max_retained),
              retention_bounded);

  // --- 2. Deterministic admission control ----------------------------------
  const QuotaPass pass1 = quota_pass(quota_submissions);
  const QuotaPass pass2 = quota_pass(quota_submissions);
  std::printf("\nquota pass: %zu submitted, %zu admitted, "
              "%zu queue-full, %zu tenant-quota rejections\n",
              pass1.stats.submitted, pass1.admitted,
              pass1.stats.rejected_queue_full,
              pass1.stats.rejected_tenant_quota);
  const bool both_paths = pass1.stats.rejected_queue_full > 0 &&
                          pass1.stats.rejected_tenant_quota > 0;
  shape_check("both rejection paths exercised (queue full + tenant quota)",
              both_paths);
  shape_check("identical streams -> identical rejections", pass1 == pass2);
  shape_check("every admitted job completed",
              pass1.stats.completed == pass1.admitted);

  const bool ok =
      flat && none_lost && retention_bounded && both_paths && pass1 == pass2 &&
      pass1.stats.completed == pass1.admitted;

  if (!json_path.empty()) {
    JsonObject root;
    root.emplace("bench", "service");
    root.emplace("smoke", smoke);
    root.emplace("shallow_depth", shallow);
    root.emplace("deep_depth", deep);
    root.emplace("window", window);
    root.emplace("shallow_p99_us", shallow_p99);
    root.emplace("deep_p99_us", deep_p99);
    root.emplace("p99_ratio", ratio);
    root.emplace("max_retained", max_retained);
    JsonArray reps_json;
    for (const LatencyRep& rep : latency_reps) {
      reps_json.push_back(rep_to_json(rep));
    }
    root.emplace("reps", Json(std::move(reps_json)));
    {
      JsonObject quota;
      quota.emplace("submissions", quota_submissions);
      quota.emplace("admitted", pass1.admitted);
      quota.emplace("rejected_queue_full", pass1.stats.rejected_queue_full);
      quota.emplace("rejected_tenant_quota",
                    pass1.stats.rejected_tenant_quota);
      quota.emplace("deterministic", pass1 == pass2);
      root.emplace("quota", Json(std::move(quota)));
    }
    root.emplace("ok", ok);
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << Json(std::move(root)).dump_pretty() << "\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
