// Ablation: onefold vs hierarchical tuning (§4.1, Fig 9). The paper: "We
// implement a prototype for each strategy, and compared the results to
// support our assumption" — hierarchical tuning treats hyper- and system
// parameters independently and misses their interaction; onefold explores
// the joint space.
#include "bench/bench_util.hpp"
#include "tuning/baselines.hpp"

using namespace edgetune;

int main() {
  bench::header("Ablation: onefold vs hierarchical (§4.1 / Fig 9)",
                "joint space vs tier-1 hyper + tier-2 system tuning",
                "onefold's final objective is never worse; costs comparable");

  struct Row {
    double onefold_obj, hier_obj;
    double onefold_runtime_m, hier_runtime_m;
    double onefold_thpt, hier_thpt;
  };
  std::map<std::string, Row> rows;
  int onefold_wins = 0;

  for (WorkloadKind workload :
       {WorkloadKind::kImageClassification, WorkloadKind::kSpeech,
        WorkloadKind::kNlp}) {
    EdgeTuneOptions options = bench::bench_options(workload, 19);
    Result<TuningReport> onefold = EdgeTune(options).run();
    Result<TuningReport> hier = run_hierarchical(options);
    if (!onefold.ok() || !hier.ok()) {
      std::fprintf(stderr, "run failed for %s\n",
                   workload_kind_name(workload));
      return 1;
    }
    rows[workload_kind_name(workload)] = {
        onefold.value().best_objective,   hier.value().best_objective,
        onefold.value().tuning_runtime_s / 60.0,
        hier.value().tuning_runtime_s / 60.0,
        onefold.value().inference.throughput_sps,
        hier.value().inference.throughput_sps};
    if (onefold.value().best_objective <=
        hier.value().best_objective * 1.05) {
      ++onefold_wins;
    }
  }

  TextTable table({"workload", "onefold obj", "hier obj", "onefold [m]",
                   "hier [m]", "onefold thpt", "hier thpt"});
  for (const auto& [workload, r] : rows) {
    table.add_row({workload, bench::fmt(r.onefold_obj, 3),
                   bench::fmt(r.hier_obj, 3),
                   bench::fmt(r.onefold_runtime_m, 2),
                   bench::fmt(r.hier_runtime_m, 2),
                   bench::fmt(r.onefold_thpt, 1),
                   bench::fmt(r.hier_thpt, 1)});
  }
  std::printf("%s", table.render().c_str());

  bench::shape_check(
      "onefold's final objective <= hierarchical's (within 5%) on >= 2/3",
      onefold_wins >= 2);
  bench::shape_check("hierarchical pays a second tuning tier",
                     rows.at("IC").hier_runtime_m >
                         rows.at("IC").onefold_runtime_m * 0.5);
  return 0;
}
