// Microbenchmarks (google-benchmark) for the hot substrate kernels: GEMM,
// convolution lowering, proxy-model forward/backward, cost-model queries,
// JSON round-trip, RNG. These are regression guards for the wall-clock cost
// of tuning runs (the experiment harnesses execute thousands of these).
#include <benchmark/benchmark.h>

#include "common/json.hpp"
#include "data/synthetic.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tuning/routine_tuner.hpp"

namespace edgetune {
namespace {

// The pre-substrate ikj matmul (with its zero-skip branch), kept verbatim as
// the baseline the tiled/packed kernel is measured against.
Tensor matmul_naive_ikj(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::zeros({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void BM_MatmulNaiveIkj(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul_naive_ikj(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNaiveIkj)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulThreads4(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  set_intra_op_threads(4);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  set_intra_op_threads(1);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulThreads4)->Arg(128)->Arg(256);

// GEMM shapes as conv lowering actually produces them ([rows = N*oh*ow,
// k = in_c*kh*kw] x [out_c, k]^T): the substrate's real working set.
// Args: rows, out_c, patch.
void BM_ConvLoweredGemm(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t out_c = state.range(1);
  const std::int64_t patch = state.range(2);
  Rng rng(2);
  Tensor cols = Tensor::randn({rows, patch}, rng);
  Tensor w = Tensor::randn({out_c, patch}, rng);
  Tensor out({rows, out_c});
  for (auto _ : state) {
    gemm(GemmLayout::kNT, rows, out_c, patch, cols.data(), w.data(),
         out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * out_c * patch);
}
BENCHMARK(BM_ConvLoweredGemm)
    ->Args({1024, 16, 27})    // stem: 16 filters over 3x3x3 patches
    ->Args({256, 32, 144})    // mid block, stride 2
    ->Args({1024, 64, 576})   // deep block: 64 filters over 3x3x64
    ->Args({512, 10, 256});   // classifier-style tall-skinny

// Every registered GEMM routine over the conv-lowered shape set: the raw
// material behind the routine tuner's per-shape-class choices (DESIGN §5.6).
// Rows are named BM_GemmRoutine<name>/rows/out_c/patch so the tuned
// assignment can be checked against the fixed default per shape class.
void RoutineShapeBench(benchmark::State& state, GemmRoutineId id) {
  const std::int64_t rows = state.range(0);
  const std::int64_t out_c = state.range(1);
  const std::int64_t patch = state.range(2);
  Rng rng(2);
  Tensor cols = Tensor::randn({rows, patch}, rng);
  Tensor w = Tensor::randn({out_c, patch}, rng);
  Tensor out({rows, out_c});
  for (auto _ : state) {
    gemm_with_routine(id, GemmLayout::kNT, rows, out_c, patch, cols.data(),
                      w.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * out_c * patch);
}

const bool kRoutineBenchesRegistered = [] {
  for (const GemmRoutineInfo& info : gemm_routine_registry()) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("BM_GemmRoutine<") + info.name + ">").c_str(),
        RoutineShapeBench, info.id);
    bench->Args({1024, 16, 27})
        ->Args({256, 32, 144})
        ->Args({1024, 64, 576})
        ->Args({512, 10, 256});
  }
  return true;
}();

// The whole-network assignment question: DP with layout-conversion edge
// costs vs per-op greedy vs the fixed blocked default, on the M5 speech
// fixture (5 GEMM shape classes) over the Raspberry Pi profile. Counters
// carry the predicted latencies; the recorded row documents
// dp_ms < greedy_ms < fixed_blocked_ms on this arch.
void BM_RoutineAssignment(benchmark::State& state) {
  Rng rng(3);
  ArchSpec arch = build_m5({}, rng).value().arch;
  AnalyticRoutineTimer timer(device_rpi3b());
  RoutineAssignment assignment;
  for (auto _ : state) {
    RoutineTuner tuner(timer, nullptr);
    assignment = tuner.assign(routine_ops_for_arch(arch, 16));
    benchmark::DoNotOptimize(assignment.ops.data());
  }
  state.counters["dp_ms"] = assignment.total_s * 1e3;
  state.counters["greedy_ms"] = assignment.greedy_s * 1e3;
  state.counters["fixed_blocked_ms"] = assignment.fixed_blocked_s * 1e3;
}
BENCHMARK(BM_RoutineAssignment);

void BM_Conv2dForwardFused(benchmark::State& state) {
  Rng rng(3);
  Conv2D conv(16, 32, 3, 1, 1, rng);
  Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  conv.forward(x, false);  // warm the workspace arena
  for (auto _ : state) {
    Tensor out = conv.forward(x, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * (8 * 16 * 16) * 32 *
                          (16 * 3 * 3));
}
BENCHMARK(BM_Conv2dForwardFused);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(2);
  Tensor input = Tensor::randn({8, 16, 16, 16}, rng);
  Conv2dGeometry geo{16, 16, 16, 3, 1, 1};
  for (auto _ : state) {
    Tensor cols = im2col(input, geo);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ResNetProxyForward(benchmark::State& state) {
  Rng rng(3);
  BuiltModel model =
      build_resnet({.depth = static_cast<int>(state.range(0))}, rng).value();
  Tensor x = Tensor::randn({16, 3, 8, 8}, rng);
  for (auto _ : state) {
    Tensor out = model.net->forward(x, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ResNetProxyForward)->Arg(18)->Arg(50);

void BM_ResNetProxyTrainStep(benchmark::State& state) {
  Rng rng(4);
  BuiltModel model = build_resnet({.depth = 18}, rng).value();
  SgdOptimizer opt(model.net->params(), {.learning_rate = 0.05});
  Tensor x = Tensor::randn({16, 3, 8, 8}, rng);
  std::vector<std::int64_t> labels(16);
  for (int i = 0; i < 16; ++i) labels[static_cast<std::size_t>(i)] = i % 10;
  for (auto _ : state) {
    Tensor logits = model.net->forward(x, true);
    LossResult loss = softmax_cross_entropy(logits, labels);
    model.net->backward(loss.grad);
    opt.step();
    benchmark::DoNotOptimize(loss.loss);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ResNetProxyTrainStep);

void BM_CostModelInference(benchmark::State& state) {
  Rng rng(5);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  CostModel model(device_rpi3b());
  for (auto _ : state) {
    auto est = model.inference_cost(arch, {.batch_size = 10, .cores = 4});
    benchmark::DoNotOptimize(est.value().latency_s);
  }
}
BENCHMARK(BM_CostModelInference);

void BM_JsonRoundTrip(benchmark::State& state) {
  JsonObject obj;
  for (int i = 0; i < 32; ++i) {
    obj.emplace("key_" + std::to_string(i),
                JsonArray{Json(i), Json(i * 0.5), Json("value")});
  }
  const std::string text = Json(obj).dump();
  for (auto _ : state) {
    auto parsed = Json::parse(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gaussian());
  }
}
BENCHMARK(BM_RngGaussian);

void BM_SyntheticImages(benchmark::State& state) {
  for (auto _ : state) {
    auto ds = make_workload_data(WorkloadKind::kImageClassification, 256, 1);
    benchmark::DoNotOptimize(ds->size());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SyntheticImages);

}  // namespace
}  // namespace edgetune

BENCHMARK_MAIN();
