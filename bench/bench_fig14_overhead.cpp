// Fig 14: tuning duration and energy of EdgeTune relative to the Tune
// baseline (no inference tuning server, accuracy-only objective).
// Paper shape: despite carrying the Inference Tuning Server, EdgeTune's
// multi-objective function steers the search toward cheaper trials and ends
// up ~18% faster and ~53% more frugal (IC and OD headline numbers).
#include "bench/bench_util.hpp"
#include "tuning/baselines.hpp"

using namespace edgetune;

int main() {
  bench::header("Fig 14", "EdgeTune vs Tune: tuning duration & energy",
                "EdgeTune lower on both despite the inference server");

  struct Row {
    double et_runtime_m, tune_runtime_m, et_energy_kj, tune_energy_kj;
  };
  std::map<std::string, Row> rows;

  // Average over several seeds: single BOHB runs are noisy (which configs
  // the early random phase draws changes the totals substantially).
  const std::vector<std::uint64_t> seeds = {7, 21, 42};
  for (WorkloadKind workload : bench::workloads()) {
    Row sum{};
    for (std::uint64_t seed : seeds) {
      EdgeTuneOptions options = bench::bench_options(workload, seed);
      // The paper's headline comparison optimizes for energy (53%
      // reduction); the ratio objective then also shortens tuning (18-20%).
      options.tuning_metric = MetricOfInterest::kEnergy;
      Result<TuningReport> edgetune = EdgeTune(options).run();
      Result<TuningReport> tune = run_tune_baseline(options);
      if (!edgetune.ok() || !tune.ok()) {
        std::fprintf(stderr, "run failed for %s\n",
                     workload_kind_name(workload));
        return 1;
      }
      sum.et_runtime_m += edgetune.value().tuning_runtime_s / 60.0;
      sum.tune_runtime_m += tune.value().tuning_runtime_s / 60.0;
      sum.et_energy_kj += edgetune.value().tuning_energy_j / 1000.0;
      sum.tune_energy_kj += tune.value().tuning_energy_j / 1000.0;
    }
    const auto n = static_cast<double>(seeds.size());
    rows[workload_kind_name(workload)] = {sum.et_runtime_m / n,
                                          sum.tune_runtime_m / n,
                                          sum.et_energy_kj / n,
                                          sum.tune_energy_kj / n};
  }

  TextTable table({"workload", "EdgeTune [m]", "Tune [m]", "diff %",
                   "EdgeTune [kJ]", "Tune [kJ]", "diff %"});
  int runtime_wins = 0, energy_wins = 0;
  double worst_runtime_diff = 0, worst_energy_diff = 0;
  for (WorkloadKind workload : bench::workloads()) {
    const Row& r = rows[workload_kind_name(workload)];
    const double rt_diff = 100.0 * (r.et_runtime_m - r.tune_runtime_m) /
                           r.tune_runtime_m;
    const double en_diff =
        100.0 * (r.et_energy_kj - r.tune_energy_kj) / r.tune_energy_kj;
    if (rt_diff < 0) ++runtime_wins;
    if (en_diff < 0) ++energy_wins;
    worst_runtime_diff = std::max(worst_runtime_diff, rt_diff);
    worst_energy_diff = std::max(worst_energy_diff, en_diff);
    table.add_row({workload_kind_name(workload),
                   bench::fmt(r.et_runtime_m, 1),
                   bench::fmt(r.tune_runtime_m, 1), bench::fmt(rt_diff, 1),
                   bench::fmt(r.et_energy_kj, 1),
                   bench::fmt(r.tune_energy_kj, 1), bench::fmt(en_diff, 1)});
  }
  std::printf("%s", table.render().c_str());

  (void)worst_runtime_diff;
  (void)worst_energy_diff;
  bench::shape_check("EdgeTune tuning runtime below Tune on >= 3/4 workloads",
                     runtime_wins >= 3);
  bench::shape_check("EdgeTune tuning energy below Tune on >= 3/4 workloads",
                     energy_wins >= 3);
  // The paper's §5.3 headline: "for both the workload IC and OD, the tuning
  // duration and energy are reduced by 18% and 53%".
  const Row& ic = rows["IC"];
  const Row& od = rows["OD"];
  bench::shape_check(
      "IC: duration reduced by >= 15%",
      ic.et_runtime_m <= 0.85 * ic.tune_runtime_m);
  bench::shape_check("OD: duration reduced by >= 15%",
                     od.et_runtime_m <= 0.85 * od.tune_runtime_m);
  bench::shape_check("IC and OD: energy reduced by >= 20%",
                     ic.et_energy_kj <= 0.8 * ic.tune_energy_kj &&
                         od.et_energy_kj <= 0.8 * od.tune_energy_kj);
  return 0;
}
