// Tests for the tensor substrate: shapes, GEMM (vs naive reference),
// im2col/col2im adjointness, pooling, softmax invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace edgetune {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a.at2(i, kk) * b.at2(kk, j);
      }
      c.at2(i, j) = acc;
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

TEST(TensorTest, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(shape_to_string(t.shape()), "[2, 3, 4]");
}

TEST(TensorTest, ScalarShapeHasOneElement) {
  EXPECT_EQ(shape_numel({}), 1);
}

TEST(TensorTest, FactoryFills) {
  EXPECT_FLOAT_EQ(Tensor::ones({3}).sum(), 3.0f);
  EXPECT_FLOAT_EQ(Tensor::zeros({3}).sum(), 0.0f);
  EXPECT_FLOAT_EQ(Tensor::full({2, 2}, 2.5f).sum(), 10.0f);
  Tensor ar = Tensor::arange(4);
  EXPECT_FLOAT_EQ(ar[3], 3.0f);
}

TEST(TensorTest, RandnStats) {
  Rng rng(3);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::arange(6);
  Result<Tensor> r = t.reshaped({2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r.value().at2(1, 2), 5.0f);
}

TEST(TensorTest, ReshapeRejectsMismatch) {
  Tensor t = Tensor::arange(6);
  EXPECT_FALSE(t.reshaped({4, 2}).ok());
}

TEST(TensorTest, InplaceOps) {
  Tensor a = Tensor::ones({4});
  Tensor b = Tensor::full({4}, 2.0f);
  a.add_inplace(b);
  EXPECT_FLOAT_EQ(a.sum(), 12.0f);
  a.scale_inplace(0.5f);
  EXPECT_FLOAT_EQ(a.sum(), 6.0f);
  a.axpy_inplace(2.0f, b, -1.0f);  // a = 2a - b = 3-2=1 each
  EXPECT_FLOAT_EQ(a.sum(), 4.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 2, 0.5f, -3});
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_NEAR(t.norm(), std::sqrt(1 + 4 + 0.25 + 9), 1e-5);
}

TEST(MatmulTest, MatchesNaive) {
  Rng rng(11);
  Tensor a = Tensor::randn({7, 5}, rng);
  Tensor b = Tensor::randn({5, 9}, rng);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST(MatmulTest, TransposedVariantsConsistent) {
  Rng rng(12);
  Tensor a = Tensor::randn({6, 4}, rng);   // [m,k]
  Tensor b = Tensor::randn({4, 5}, rng);   // [k,n]
  Tensor c = matmul(a, b);

  // matmul_tn(a^T stored as [k,m], b) should equal c.
  Tensor a_t({4, 6});
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t k = 0; k < 4; ++k) a_t.at2(k, i) = a.at2(i, k);
  }
  expect_close(matmul_tn(a_t, b), c);

  // matmul_nt(a, b^T stored as [n,k]) should equal c.
  Tensor b_t({5, 4});
  for (std::int64_t k = 0; k < 4; ++k) {
    for (std::int64_t j = 0; j < 5; ++j) b_t.at2(j, k) = b.at2(k, j);
  }
  expect_close(matmul_nt(a, b_t), c);
}

TEST(MatmulTest, IdentityIsNeutral) {
  Rng rng(13);
  Tensor a = Tensor::randn({3, 3}, rng);
  Tensor eye = Tensor::zeros({3, 3});
  for (int i = 0; i < 3; ++i) eye.at2(i, i) = 1.0f;
  expect_close(matmul(a, eye), a);
}

TEST(Im2ColTest, KnownSmallCase) {
  // 1x1x3x3 input, kernel 2, stride 1, no padding -> 4 patches of 4.
  Tensor input({1, 1, 3, 3},
               std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Conv2dGeometry geo{1, 3, 3, 2, 1, 0};
  Tensor cols = im2col(input, geo);
  ASSERT_EQ(cols.dim(0), 4);
  ASSERT_EQ(cols.dim(1), 4);
  const float expected0[] = {1, 2, 4, 5};
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(cols.at2(0, i), expected0[i]);
  const float expected3[] = {5, 6, 8, 9};
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(cols.at2(3, i), expected3[i]);
}

TEST(Im2ColTest, PaddingZeroFills) {
  Tensor input({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Conv2dGeometry geo{1, 2, 2, 3, 1, 1};
  Tensor cols = im2col(input, geo);
  ASSERT_EQ(cols.dim(0), 4);  // 2x2 output positions
  // First patch (centered at -1,-1 .. 1,1): corners are zero padding.
  EXPECT_FLOAT_EQ(cols.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at2(0, 4), 1.0f);  // center hits input(0,0)
}

// Adjointness: <im2col(x), y> == <x, col2im(y)> for all x, y — the property
// conv backward relies on.
TEST(Im2ColTest, Col2ImIsAdjoint) {
  Rng rng(21);
  Conv2dGeometry geo{2, 5, 5, 3, 2, 1};
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor cols = im2col(x, geo);
  Tensor y = Tensor::randn(cols.shape(), rng);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  Tensor back = col2im(y, 2, geo);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Im2Col1dTest, Adjoint) {
  Rng rng(22);
  Conv1dGeometry geo{3, 9, 4, 2, 1};
  Tensor x = Tensor::randn({2, 3, 9}, rng);
  Tensor cols = im2col_1d(x, geo);
  Tensor y = Tensor::randn(cols.shape(), rng);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols[i] * y[i];
  Tensor back = col2im_1d(y, 2, geo);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(PoolTest, MaxPool2dPicksMaxima) {
  Tensor input({1, 1, 4, 4},
               std::vector<float>{1, 2, 5, 6,    //
                                  3, 4, 7, 8,    //
                                  -1, -2, 0, 1,  //
                                  -3, 9, 2, 3});
  PoolResult result = maxpool2d(input, 2, 2);
  ASSERT_EQ(result.output.numel(), 4);
  EXPECT_FLOAT_EQ(result.output[0], 4);
  EXPECT_FLOAT_EQ(result.output[1], 8);
  EXPECT_FLOAT_EQ(result.output[2], 9);
  EXPECT_FLOAT_EQ(result.output[3], 3);
}

TEST(PoolTest, MaxPool2dBackwardRoutesToArgmax) {
  Tensor input({1, 1, 2, 2}, std::vector<float>{1, 5, 2, 3});
  PoolResult result = maxpool2d(input, 2, 2);
  Tensor grad_out({1, 1, 1, 1}, std::vector<float>{10});
  Tensor grad_in =
      maxpool2d_backward(grad_out, result.argmax, input.shape());
  EXPECT_FLOAT_EQ(grad_in[0], 0);
  EXPECT_FLOAT_EQ(grad_in[1], 10);  // position of the 5
}

TEST(PoolTest, GlobalAvgPool) {
  Tensor input({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  Tensor out = global_avg_pool(input);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 25.0f);
  Tensor grad = global_avg_pool_backward(Tensor({1, 2}, {4.0f, 8.0f}),
                                         input.shape());
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
  EXPECT_FLOAT_EQ(grad[4], 2.0f);
}

TEST(PoolTest, MaxPool1d) {
  Tensor input({1, 1, 6}, std::vector<float>{1, 3, 2, 7, 0, 5});
  PoolResult result = maxpool1d(input, 2, 2);
  EXPECT_FLOAT_EQ(result.output[0], 3);
  EXPECT_FLOAT_EQ(result.output[1], 7);
  EXPECT_FLOAT_EQ(result.output[2], 5);
  Tensor grad_in = maxpool1d_backward(
      Tensor({1, 1, 3}, {1.0f, 2.0f, 3.0f}), result.argmax, input.shape());
  EXPECT_FLOAT_EQ(grad_in[1], 1);
  EXPECT_FLOAT_EQ(grad_in[3], 2);
  EXPECT_FLOAT_EQ(grad_in[5], 3);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(31);
  Tensor logits = Tensor::randn({5, 7}, rng, 0.0f, 3.0f);
  Tensor probs = softmax_rows(logits);
  for (std::int64_t r = 0; r < 5; ++r) {
    float sum = 0;
    for (std::int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(probs.at2(r, c), 0.0f);
      sum += probs.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Tensor logits({1, 3}, std::vector<float>{1000, 1001, 1002});
  Tensor probs = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_GT(probs[2], probs[0]);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(32);
  Tensor logits = Tensor::randn({3, 4}, rng);
  Tensor p = softmax_rows(logits);
  Tensor lp = log_softmax_rows(logits);
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-4f);
  }
}

TEST(SoftmaxTest, ShiftInvariance) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{11, 12, 13});
  expect_close(softmax_rows(a), softmax_rows(b), 1e-6f);
}

}  // namespace
}  // namespace edgetune
