// Tests for the discrete-event core and the Fig 8 batching scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/batching_sim.hpp"
#include "sim/batching_tuner.hpp"
#include "sim/event_queue.hpp"

namespace edgetune {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  SimClock clock;
  std::vector<int> order;
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.run(clock, 10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(EventQueueTest, SimultaneousEventsAreFifo) {
  EventQueue queue;
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run(clock, 2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, StopsAtHorizon) {
  EventQueue queue;
  SimClock clock;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  queue.run(clock, 2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, RunMovesHandlersInsteadOfCopying) {
  // A handler that counts how often its state is copied. The queue must
  // move handlers end to end — schedule, heap sift, and dequeue in run() —
  // or every event pays a std::function allocation on the hot path.
  struct CountingHandler {
    std::shared_ptr<int> copies;
    std::shared_ptr<int> fired;
    CountingHandler(std::shared_ptr<int> c, std::shared_ptr<int> f)
        : copies(std::move(c)), fired(std::move(f)) {}
    CountingHandler(const CountingHandler& other)
        : copies(other.copies), fired(other.fired) {
      ++*copies;
    }
    CountingHandler(CountingHandler&&) noexcept = default;
    void operator()() const { ++*fired; }
  };
  auto copies = std::make_shared<int>(0);
  auto fired = std::make_shared<int>(0);
  EventQueue queue;
  SimClock clock;
  for (int i = 0; i < 8; ++i) {
    queue.schedule_at(static_cast<double>(8 - i),
                      CountingHandler(copies, fired));
  }
  queue.run(clock, 10.0);
  EXPECT_EQ(*fired, 8);
  EXPECT_EQ(*copies, 0);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  SimClock clock;
  int chain = 0;
  std::function<void()> tick = [&] {
    ++chain;
    if (chain < 4) queue.schedule_in(clock, 1.0, tick);
  };
  queue.schedule_at(0.0, tick);
  queue.run(clock, 10.0);
  EXPECT_EQ(chain, 4);
}

// --- Server scenario (fixed-frequency N-sample queries) ------------------------

TEST(ServerScenarioTest, RejectsInvalidConfigs) {
  auto latency = [](std::int64_t) { return 0.01; };
  ServerScenarioConfig bad;
  bad.split_batch = 0;
  EXPECT_FALSE(simulate_server_scenario(bad, latency).ok());
  bad = {};
  bad.query_period_s = 0;
  EXPECT_FALSE(simulate_server_scenario(bad, latency).ok());
}

TEST(ServerScenarioTest, UnderloadedResponseEqualsServiceTime) {
  // One query per second, each of 8 samples, served in 4-sample batches of
  // 0.05 s each -> response = 2 * 0.05 = 0.1 s, no queueing.
  ServerScenarioConfig config;
  config.samples_per_query = 8;
  config.query_period_s = 1.0;
  config.split_batch = 4;
  config.horizon_s = 20.0;
  auto latency = [](std::int64_t) { return 0.05; };
  QueueingStats stats = simulate_server_scenario(config, latency).value();
  EXPECT_NEAR(stats.mean_response_s, 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 4.0);
  EXPECT_EQ(stats.completed_samples, 8 * 20);
}

TEST(ServerScenarioTest, OverloadGrowsQueue) {
  ServerScenarioConfig config;
  config.samples_per_query = 8;
  config.query_period_s = 0.05;  // arrivals faster than service
  config.split_batch = 8;
  config.horizon_s = 10.0;
  auto latency = [](std::int64_t) { return 0.2; };
  QueueingStats stats = simulate_server_scenario(config, latency).value();
  EXPECT_GT(stats.mean_response_s, 1.0);  // queueing delay dominates
  EXPECT_NEAR(stats.utilization, 1.0, 0.05);
}

TEST(ServerScenarioTest, BatchSplitTradesOff) {
  // With a sublinear latency function, splitting into bigger sub-batches is
  // more efficient (fewer per-call overheads).
  auto latency = [](std::int64_t b) {
    return 0.02 + 0.002 * static_cast<double>(b);
  };
  ServerScenarioConfig config;
  config.samples_per_query = 64;
  config.query_period_s = 0.8;
  config.horizon_s = 30.0;
  config.split_batch = 1;
  const double r1 =
      simulate_server_scenario(config, latency).value().mean_response_s;
  config.split_batch = 32;
  const double r32 =
      simulate_server_scenario(config, latency).value().mean_response_s;
  EXPECT_LT(r32, r1);
}

// --- Multi-stream scenario (Poisson arrivals) ----------------------------------

TEST(MultiStreamTest, RejectsInvalidConfigs) {
  auto latency = [](std::int64_t) { return 0.01; };
  MultiStreamScenarioConfig bad;
  bad.max_batch = 0;
  EXPECT_FALSE(simulate_multistream_scenario(bad, latency).ok());
  bad = {};
  bad.arrival_rate_per_s = -1;
  EXPECT_FALSE(simulate_multistream_scenario(bad, latency).ok());
}

TEST(MultiStreamTest, ArrivalVolumeMatchesRate) {
  MultiStreamScenarioConfig config;
  config.arrival_rate_per_s = 100.0;
  config.horizon_s = 60.0;
  config.max_batch = 4;
  config.max_wait_s = 0.01;
  auto latency = [](std::int64_t) { return 0.001; };
  QueueingStats stats =
      simulate_multistream_scenario(config, latency).value();
  EXPECT_NEAR(static_cast<double>(stats.completed_samples), 6000.0, 400.0);
}

TEST(MultiStreamTest, DeterministicForSeed) {
  MultiStreamScenarioConfig config;
  config.seed = 99;
  auto latency = [](std::int64_t b) {
    return 0.01 + 0.001 * static_cast<double>(b);
  };
  QueueingStats a = simulate_multistream_scenario(config, latency).value();
  QueueingStats b = simulate_multistream_scenario(config, latency).value();
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_EQ(a.completed_samples, b.completed_samples);
}

// The paper's §3.4 claim: under load, aggregating single-sample queries into
// batches improves mean response time when the engine has sublinear batch
// latency.
TEST(MultiStreamTest, BatchingImprovesMeanResponseUnderLoad) {
  auto latency = [](std::int64_t b) {
    return 0.02 + 0.002 * static_cast<double>(b);  // strongly sublinear
  };
  MultiStreamScenarioConfig config;
  config.arrival_rate_per_s = 80.0;  // overload for batch=1 (service 0.022s)
  config.horizon_s = 30.0;
  config.max_wait_s = 0.05;
  config.max_batch = 1;
  const double single =
      simulate_multistream_scenario(config, latency).value().mean_response_s;
  config.max_batch = 16;
  const double batched =
      simulate_multistream_scenario(config, latency).value().mean_response_s;
  EXPECT_LT(batched, single * 0.5);
}

TEST(MultiStreamTest, ResponsesIncludeWaitTime) {
  // A tiny arrival rate with a long timeout: samples wait ~max_wait before
  // the (solo) batch fires.
  MultiStreamScenarioConfig config;
  config.arrival_rate_per_s = 1.0;
  config.max_batch = 8;
  config.max_wait_s = 0.5;
  config.horizon_s = 120.0;
  auto latency = [](std::int64_t) { return 0.01; };
  QueueingStats stats =
      simulate_multistream_scenario(config, latency).value();
  EXPECT_GT(stats.mean_response_s, 0.4);
  EXPECT_LT(stats.mean_batch_size, 2.0);
}

TEST(MultiStreamTest, UtilizationBounded) {
  MultiStreamScenarioConfig config;
  config.arrival_rate_per_s = 500.0;
  config.max_batch = 4;
  config.horizon_s = 10.0;
  auto latency = [](std::int64_t) { return 0.05; };
  QueueingStats stats =
      simulate_multistream_scenario(config, latency).value();
  EXPECT_LE(stats.utilization, 1.0);
  EXPECT_GT(stats.utilization, 0.9);
}

// --- Batching recommender --------------------------------------------------------

TEST(BatchingTunerTest, ServerRecommendationBeatsSingleSample) {
  // Sublinear engine: splitting into bigger sub-batches amortizes overhead.
  auto latency = [](std::int64_t b) {
    return 0.02 + 0.002 * static_cast<double>(b);
  };
  ServerScenarioConfig scenario;
  scenario.samples_per_query = 64;
  scenario.query_period_s = 0.8;
  scenario.horizon_s = 30;
  Result<ServerBatchingRecommendation> rec =
      recommend_server_batching(scenario, latency);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.value().split_batch, 1);
  EXPECT_GE(rec.value().speedup(), 1.0);
  EXPECT_LE(rec.value().stats.mean_response_s,
            rec.value().single_sample_stats.mean_response_s);
}

TEST(BatchingTunerTest, ServerLinearEngineKeepsSmallBatches) {
  // Perfectly linear engine with no per-call overhead: splitting gains
  // nothing, and the recommendation must not be worse than split=1.
  auto latency = [](std::int64_t b) { return 0.001 * static_cast<double>(b); };
  ServerScenarioConfig scenario;
  scenario.samples_per_query = 32;
  scenario.query_period_s = 1.0;
  scenario.horizon_s = 20;
  Result<ServerBatchingRecommendation> rec =
      recommend_server_batching(scenario, latency);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec.value().stats.mean_response_s,
            rec.value().single_sample_stats.mean_response_s + 1e-12);
}

TEST(BatchingTunerTest, StreamRecommendationUnderLoad) {
  auto latency = [](std::int64_t b) {
    return 0.02 + 0.002 * static_cast<double>(b);
  };
  MultiStreamScenarioConfig scenario;
  scenario.arrival_rate_per_s = 80.0;  // overload for batch-1 service
  scenario.max_wait_s = 0.05;
  scenario.horizon_s = 30;
  Result<StreamBatchingRecommendation> rec =
      recommend_stream_batching(scenario, latency);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.value().max_batch, 1);
  EXPECT_GT(rec.value().speedup(), 2.0);
}

TEST(BatchingTunerTest, StreamLightLoadPrefersNoAggregation) {
  auto latency = [](std::int64_t b) {
    return 0.005 + 0.001 * static_cast<double>(b);
  };
  MultiStreamScenarioConfig scenario;
  scenario.arrival_rate_per_s = 5.0;  // far below capacity
  scenario.max_wait_s = 0.2;
  scenario.horizon_s = 60;
  Result<StreamBatchingRecommendation> rec =
      recommend_stream_batching(scenario, latency);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().max_batch, 1);  // waiting only adds latency
}

TEST(BatchingTunerTest, InvalidInputsRejected) {
  auto latency = [](std::int64_t) { return 0.01; };
  ServerScenarioConfig bad_server;
  bad_server.samples_per_query = 0;
  EXPECT_FALSE(recommend_server_batching(bad_server, latency).ok());
  MultiStreamScenarioConfig stream;
  EXPECT_FALSE(recommend_stream_batching(stream, latency, 0).ok());
}

}  // namespace
}  // namespace edgetune
