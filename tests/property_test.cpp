// Property-based sweeps (parameterized gtest): invariants that must hold
// across the whole configuration space, not just hand-picked points.
#include <gtest/gtest.h>

#include <tuple>

#include "data/synthetic.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"
#include "sim/batching_sim.hpp"
#include "tensor/ops.hpp"

namespace edgetune {
namespace {

// --- Cost-model invariants across (device x depth x cores x batch) ------------

using CostSweepParam = std::tuple<const char*, int, int, std::int64_t>;

class CostModelSweep : public ::testing::TestWithParam<CostSweepParam> {};

TEST_P(CostModelSweep, EstimatesInternallyConsistent) {
  const auto& [device_name, depth, cores, batch] = GetParam();
  CostModel model(device_by_name(device_name).value());
  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = depth}, rng).value().arch;
  Result<CostEstimate> result =
      model.inference_cost(arch, {.batch_size = batch, .cores = cores});
  if (!result.ok()) {
    // Only RAM infeasibility may reject an in-domain configuration.
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    return;
  }
  const CostEstimate& est = result.value();
  EXPECT_GT(est.latency_s, 0);
  EXPECT_GT(est.power_w, 0);
  EXPECT_NEAR(est.energy_j, est.power_w * est.latency_s,
              1e-9 * est.energy_j + 1e-12);
  EXPECT_NEAR(est.throughput_sps * est.latency_s, static_cast<double>(batch),
              1e-6 * static_cast<double>(batch));
  // Physical floor: power never below idle.
  EXPECT_GE(est.power_w, model.profile().idle_power_w * 0.999);
}

TEST_P(CostModelSweep, MoreCoresNeverSlower) {
  const auto& [device_name, depth, cores, batch] = GetParam();
  if (cores <= 1) return;
  CostModel model(device_by_name(device_name).value());
  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = depth}, rng).value().arch;
  Result<CostEstimate> more =
      model.inference_cost(arch, {.batch_size = batch, .cores = cores});
  Result<CostEstimate> fewer =
      model.inference_cost(arch, {.batch_size = batch, .cores = cores - 1});
  if (!more.ok() || !fewer.ok()) return;
  EXPECT_LE(more.value().latency_s, fewer.value().latency_s * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesDepthsCoresBatches, CostModelSweep,
    ::testing::Combine(::testing::Values("armv7", "rpi3b", "i7"),
                       ::testing::Values(18, 50),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values<std::int64_t>(1, 8, 64)),
    [](const ::testing::TestParamInfo<CostSweepParam>& info) {
      return std::string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_b" +
             std::to_string(std::get<3>(info.param));
    });

// --- Training-cost invariants across GPU counts --------------------------------

class GpuSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuSweep, BatchingNeverHurtsTrainingThroughput) {
  // Step *time* is non-monotone in batch when GPUs are undersaturated
  // (Fig 4a); throughput in samples/s, however, must not degrade when the
  // batch grows in the pre-spill regime.
  const int gpus = GetParam();
  CostModel model(device_titan_server());
  Rng rng(1);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  const CostEstimate small =
      model.train_step_cost(arch, {.batch_size = 64, .num_gpus = gpus})
          .value();
  const CostEstimate large =
      model.train_step_cost(arch, {.batch_size = 512, .num_gpus = gpus})
          .value();
  EXPECT_GE(large.throughput_sps, small.throughput_sps * 0.999);
  EXPECT_GT(small.latency_s, 0);
  EXPECT_GT(large.latency_s, 0);
}

TEST_P(GpuSweep, EnergyIsPositiveAndFinite) {
  const int gpus = GetParam();
  CostModel model(device_titan_server());
  Rng rng(1);
  ArchSpec arch = build_m5({.embed_dim = 64}, rng).value().arch;
  CostEstimate est =
      model.train_step_cost(arch, {.batch_size = 128, .num_gpus = gpus})
          .value();
  EXPECT_GT(est.energy_j, 0);
  EXPECT_TRUE(std::isfinite(est.energy_j));
}

INSTANTIATE_TEST_SUITE_P(Gpus, GpuSweep, ::testing::Values(1, 2, 4, 8));

// --- Model-family invariants ----------------------------------------------------

class WorkloadSweep : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadSweep, ForwardBackwardShapesAgree) {
  const WorkloadKind kind = GetParam();
  Rng rng(3);
  const double hparam = kind == WorkloadKind::kImageClassification ? 18
                        : kind == WorkloadKind::kSpeech            ? 32
                        : kind == WorkloadKind::kNlp               ? 3
                                                                   : 0.2;
  BuiltModel model = build_workload_model(kind, hparam, rng).value();
  auto data = make_workload_data(kind, 8, 3);
  Batch batch = DatasetView::all(*data).batch(0, 4);
  Tensor out = model.net->forward(batch.inputs, true);
  EXPECT_EQ(out.dim(0), 4);
  EXPECT_EQ(out.dim(1), model.num_classes);
  Tensor grad = model.net->backward(Tensor::ones(out.shape()));
  EXPECT_EQ(grad.shape(), batch.inputs.shape());
}

TEST_P(WorkloadSweep, DescribeMatchesForwardShape) {
  const WorkloadKind kind = GetParam();
  Rng rng(4);
  const double hparam = kind == WorkloadKind::kImageClassification ? 34
                        : kind == WorkloadKind::kSpeech            ? 64
                        : kind == WorkloadKind::kNlp               ? 5
                                                                   : 0.4;
  BuiltModel model = build_workload_model(kind, hparam, rng).value();
  Shape input = {2};
  for (auto d : model.proxy_sample_shape) input.push_back(d);
  auto data = make_workload_data(kind, 4, 4);
  Batch batch = DatasetView::all(*data).batch(0, 2);
  Tensor out = model.net->forward(batch.inputs, false);
  EXPECT_EQ(model.net->describe(input).output_shape, out.shape());
}

TEST_P(WorkloadSweep, ArchSpecIsPositive) {
  const WorkloadKind kind = GetParam();
  Rng rng(5);
  const double hparam = kind == WorkloadKind::kImageClassification ? 50
                        : kind == WorkloadKind::kSpeech            ? 128
                        : kind == WorkloadKind::kNlp               ? 16
                                                                   : 0.5;
  BuiltModel model = build_workload_model(kind, hparam, rng).value();
  EXPECT_GT(model.arch.flops_per_sample, 0);
  EXPECT_GT(model.arch.params, 0);
  EXPECT_GT(model.arch.activation_elems, 0);
  EXPECT_GE(model.arch.kernel_launches,
            static_cast<double>(model.arch.layers.size()));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweep,
    ::testing::Values(WorkloadKind::kImageClassification,
                      WorkloadKind::kSpeech, WorkloadKind::kNlp,
                      WorkloadKind::kDetection),
    [](const ::testing::TestParamInfo<WorkloadKind>& info) {
      return workload_kind_name(info.param);
    });

// --- GEMM adjoint property across shapes ---------------------------------------

using GemmShape = std::tuple<int, int, int>;
class GemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmSweep, TransposeVariantsAgree) {
  const auto& [m, k, n] = GetParam();
  Rng rng(stable_hash64(std::to_string(m) + "x" + std::to_string(k)));
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c = matmul(a, b);
  Tensor a_t({k, m});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) a_t.at2(j, i) = a.at2(i, j);
  }
  Tensor b_t({n, k});
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b_t.at2(j, i) = b.at2(i, j);
  }
  Tensor via_tn = matmul_tn(a_t, b);
  Tensor via_nt = matmul_nt(a, b_t);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(via_tn[i], c[i], 1e-3f);
    EXPECT_NEAR(via_nt[i], c[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{1, 7, 3},
                                           GemmShape{5, 1, 5},
                                           GemmShape{8, 16, 4},
                                           GemmShape{17, 5, 13}));

// --- Queueing: Little's law sanity ----------------------------------------------

TEST(QueueingPropertyTest, LittlesLawHolsApproximately) {
  // L = lambda * W for a stable system: mean concurrency equals arrival rate
  // times mean response. Estimate L from utilization + queue behaviour by
  // checking the throughput-response product stays near the arrival volume.
  MultiStreamScenarioConfig config;
  config.arrival_rate_per_s = 30.0;
  config.max_batch = 8;
  config.max_wait_s = 0.05;
  config.horizon_s = 200;
  auto latency = [](std::int64_t b) {
    return 0.01 + 0.004 * static_cast<double>(b);
  };
  QueueingStats stats =
      simulate_multistream_scenario(config, latency).value();
  // Stable: throughput ~ arrival rate.
  EXPECT_NEAR(stats.throughput_sps, 30.0, 3.0);
  EXPECT_LT(stats.mean_response_s, 1.0);
}

}  // namespace
}  // namespace edgetune
